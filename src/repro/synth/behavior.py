"""Runtime behaviour models for synthetic control flow.

Every conditional branch, indirect jump, and indirect call in a generated
program carries a :class:`ChoiceBehavior` that decides, at execution time,
which successor arc is followed. The behaviours are the knobs that make the
synthetic workloads *predictable in the same ways real programs are*:

* :class:`LoopBehavior` — deterministic trip counts (loops end predictably);
  trip counts may vary with calling context, which path history can see but
  per-task history cannot.
* :class:`PeriodicChoice` — per-site cyclic outcome patterns; exactly the
  behaviour per-task (PER / PAp-style) history captures best.
* :class:`HistoryParityChoice` — outcome correlated with recent global
  control flow; what GLOBAL/PATH history captures.
* :class:`ContextChoice` — outcome determined by the calling context (the
  call stack), which only *path* history approximates; this is what makes a
  correlated target buffer beat a plain one for indirect jumps (§5.3).
* :class:`BiasedChoice` — data-dependent noise: the irreducible miss floor.
* :class:`PhaseChoice` — slowly drifting program phases.
* :class:`DepthGuardChoice` — bounded recursion (xlisp-style call trees).

All behaviours read and update only the shared :class:`BehaviorContext`,
which the executor owns.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.utils.hashing import stable_hash
from repro.utils.rng import DeterministicRng

#: Width of the global outcome-history window behaviours may correlate with.
HISTORY_BITS = 16
_HISTORY_MASK = (1 << HISTORY_BITS) - 1


@dataclass
class BehaviorContext:
    """Mutable runtime state shared by all behaviours of one execution.

    The executor creates one context per run and threads it through every
    behaviour decision.

    Attributes:
        rng: Deterministic random stream for noisy behaviours.
        steps: Count of behaviour decisions made so far.
        phase: Program phase counter; advances every ``phase_period`` steps.
        phase_period: Steps per phase.
        recent_outcomes: Bit history of recent conditional-branch outcomes.
        context_hash: Hash of the current call stack, maintained
            incrementally by the executor (push/pop).
        call_depth: Current call-stack depth.
        loop_counters: Per-activation loop state; the executor swaps in the
            current frame's dict on call/return. Maps behaviour key ->
            [iterations_done, trips_this_activation].
        site_counters: Global per-site counters for periodic behaviours.
        task_window: Start addresses of the most recently retired tasks,
            oldest first; maintained by the executor at every task boundary.
            Behaviours correlated with this window are the synthetic
            analogue of real code whose outcome depends on *how control got
            here* — the structure path-based predictors exploit.
    """

    rng: DeterministicRng
    phase_period: int = 20_000
    steps: int = 0
    phase: int = 0
    recent_outcomes: int = 0
    context_hash: int = 0
    call_depth: int = 0
    loop_counters: dict = field(default_factory=dict)
    site_counters: dict = field(default_factory=dict)
    task_window: deque = field(default_factory=lambda: deque(maxlen=8))

    def note_task(self, task_addr: int) -> None:
        """Record a retired task's start address in the path window."""
        self.task_window.append(task_addr)

    def window_hash(self, k: int) -> int:
        """Deterministic hash of the last ``k`` window entries."""
        value = 0x9E3779B9
        window = self.task_window
        n = len(window)
        for i in range(max(0, n - k), n):
            value = ((value * 31) ^ window[i]) & 0xFFFFFFFF
        return value

    def note_decision(self) -> None:
        """Advance the step/phase clocks; called once per behaviour decision."""
        self.steps += 1
        if self.steps % self.phase_period == 0:
            self.phase += 1

    def note_branch_outcome(self, taken: bool) -> None:
        """Shift a conditional-branch outcome into the global history."""
        self.recent_outcomes = (
            (self.recent_outcomes << 1) | (1 if taken else 0)
        ) & _HISTORY_MASK


class ChoiceBehavior(abc.ABC):
    """Decides which successor arc a control transfer follows at run time."""

    @abc.abstractmethod
    def choose(self, ctx: BehaviorContext, key: str) -> int:
        """Return the successor index taken for this execution.

        ``key`` is the deciding block's (globally unique) label, so
        behaviours can keep per-site state in the context.
        """


class FixedChoice(ChoiceBehavior):
    """Always takes the same successor. Useful for tests and dead arms."""

    def __init__(self, index: int = 0) -> None:
        if index < 0:
            raise WorkloadError("choice index must be >= 0")
        self._index = index

    def choose(self, ctx: BehaviorContext, key: str) -> int:
        ctx.note_decision()
        return self._index


class BiasedChoice(ChoiceBehavior):
    """Random outcome with a fixed bias: irreducible data-dependent noise.

    ``p_first`` is the probability of taking successor 0. With ``n_choices``
    greater than two the remaining probability spreads uniformly.
    """

    def __init__(self, p_first: float, n_choices: int = 2) -> None:
        if not 0.0 <= p_first <= 1.0:
            raise WorkloadError(f"bias must be in [0, 1], got {p_first}")
        if n_choices < 2:
            raise WorkloadError("a biased choice needs >= 2 successors")
        self._p_first = p_first
        self._n_choices = n_choices

    def choose(self, ctx: BehaviorContext, key: str) -> int:
        ctx.note_decision()
        if ctx.rng.uniform() < self._p_first:
            return 0
        if self._n_choices == 2:
            return 1
        return 1 + ctx.rng.randint(0, self._n_choices - 2)


class LoopBehavior(ChoiceBehavior):
    """A loop-header branch: successor 0 repeats the body, 1 exits.

    The trip count for each activation is drawn from ``trip_counts`` by the
    calling-context hash, so the *same* loop iterates, say, 3 times when
    reached down one call path and 7 down another — information visible to
    path history.
    """

    def __init__(self, trip_counts: tuple[int, ...]) -> None:
        if not trip_counts or any(t < 1 for t in trip_counts):
            raise WorkloadError("trip counts must be positive")
        self._trip_counts = trip_counts

    def choose(self, ctx: BehaviorContext, key: str) -> int:
        ctx.note_decision()
        state = ctx.loop_counters.get(key)
        if state is None:
            trips = self._trip_counts[
                (ctx.context_hash ^ len(self._trip_counts))
                % len(self._trip_counts)
            ]
            state = [0, trips]
            ctx.loop_counters[key] = state
        state[0] += 1
        if state[0] < state[1]:
            return 0
        del ctx.loop_counters[key]  # activation over; rearm for the next one
        return 1


class PeriodicChoice(ChoiceBehavior):
    """Cycles a fixed outcome pattern per site: pure per-task cyclic behaviour.

    This is what a per-task (PAp-style) history predictor captures best,
    because the pattern's phase is local to the site and invisible to global
    path history.
    """

    def __init__(self, pattern: tuple[int, ...]) -> None:
        if not pattern or any(i < 0 for i in pattern):
            raise WorkloadError("pattern must be non-empty, indices >= 0")
        self._pattern = pattern

    def choose(self, ctx: BehaviorContext, key: str) -> int:
        ctx.note_decision()
        position = ctx.site_counters.get(key, 0)
        ctx.site_counters[key] = position + 1
        return self._pattern[position % len(self._pattern)]


class HistoryParityChoice(ChoiceBehavior):
    """Outcome = parity of selected recent-branch-history bits, plus noise.

    Directly rewards predictors that retain deep global history: with enough
    depth the outcome is a deterministic function of what the predictor saw.
    """

    def __init__(self, mask: int, noise: float = 0.0) -> None:
        if mask <= 0 or mask > _HISTORY_MASK:
            raise WorkloadError(
                f"mask must select bits within {HISTORY_BITS}-bit history"
            )
        if not 0.0 <= noise <= 1.0:
            raise WorkloadError("noise must be in [0, 1]")
        self._mask = mask
        self._noise = noise

    def choose(self, ctx: BehaviorContext, key: str) -> int:
        ctx.note_decision()
        parity = bin(ctx.recent_outcomes & self._mask).count("1") & 1
        if self._noise and ctx.rng.uniform() < self._noise:
            parity ^= 1
        return parity


class PhaseChoice(ChoiceBehavior):
    """Selects a successor by program phase: slowly drifting targets.

    Between phase changes the choice is constant per site, so any adaptive
    predictor learns it; at phase boundaries every site retrains — this
    produces the transient mispredicts real phase changes cause.
    """

    def __init__(self, n_choices: int, noise: float = 0.0) -> None:
        if n_choices < 2:
            raise WorkloadError("a phase choice needs >= 2 successors")
        if not 0.0 <= noise <= 1.0:
            raise WorkloadError("noise must be in [0, 1]")
        self._n_choices = n_choices
        self._noise = noise
        self._salts: dict[str, int] = {}

    def choose(self, ctx: BehaviorContext, key: str) -> int:
        ctx.note_decision()
        if self._noise and ctx.rng.uniform() < self._noise:
            return ctx.rng.randint(0, self._n_choices - 1)
        return (ctx.phase * 2654435761 + self._salt(key)) % self._n_choices

    def _salt(self, key: str) -> int:
        salt = self._salts.get(key)
        if salt is None:
            salt = self._salts[key] = stable_hash(key)
        return salt


class ContextChoice(ChoiceBehavior):
    """Selects a successor from the calling context: switch-on-argument.

    Models C idioms like dispatching on an operation code passed by the
    caller: the target is a deterministic function of *how the program got
    here*. Path-based history (and hence a correlated target buffer)
    captures this; a plain task-address-indexed buffer cannot (§5.3).
    """

    def __init__(self, n_choices: int, noise: float = 0.0) -> None:
        if n_choices < 2:
            raise WorkloadError("a context choice needs >= 2 successors")
        if not 0.0 <= noise <= 1.0:
            raise WorkloadError("noise must be in [0, 1]")
        self._n_choices = n_choices
        self._noise = noise
        self._salts: dict[str, int] = {}

    def choose(self, ctx: BehaviorContext, key: str) -> int:
        ctx.note_decision()
        if self._noise and ctx.rng.uniform() < self._noise:
            return ctx.rng.randint(0, self._n_choices - 1)
        salt = self._salts.get(key)
        if salt is None:
            salt = self._salts[key] = stable_hash(key)
        return ((ctx.context_hash * 40503) ^ salt) % self._n_choices


class PathCorrelatedChoice(ChoiceBehavior):
    """Branch outcome determined by the recent *task path*, plus noise.

    The outcome is a deterministic function of the addresses of the last
    ``window`` tasks — the synthetic analogue of a branch whose direction
    depends on which code path reached it. A path-history predictor with
    depth >= ``window`` can learn it exactly; exit-based global history can
    only approximate it (different predecessor tasks may share an exit
    pattern), and per-task history cannot see it at all. This is the
    behaviour class that separates PATH from GLOBAL and PER (paper §5.2).
    """

    def __init__(self, window: int, noise: float = 0.0) -> None:
        if window < 1:
            raise WorkloadError("window must be >= 1")
        if not 0.0 <= noise <= 1.0:
            raise WorkloadError("noise must be in [0, 1]")
        self._window = window
        self._noise = noise
        self._salts: dict[str, int] = {}

    def choose(self, ctx: BehaviorContext, key: str) -> int:
        ctx.note_decision()
        salt = self._salts.get(key)
        if salt is None:
            salt = self._salts[key] = stable_hash(key)
        outcome = (ctx.window_hash(self._window) ^ salt) >> 7 & 1
        if self._noise and ctx.rng.uniform() < self._noise:
            outcome ^= 1
        return outcome


class TaskWindowChoice(ChoiceBehavior):
    """Indirect target determined by the recent task path, plus noise.

    Same correlation structure as :class:`PathCorrelatedChoice` but over
    ``n_choices`` successors: the model for switch statements whose case
    depends on how control arrived. A path-indexed CTTB learns these
    targets; a task-address-indexed TTB sees one hot entry thrash between
    targets (paper §5.3).
    """

    def __init__(self, n_choices: int, window: int, noise: float = 0.0) -> None:
        if n_choices < 2:
            raise WorkloadError("a window choice needs >= 2 successors")
        if window < 1:
            raise WorkloadError("window must be >= 1")
        if not 0.0 <= noise <= 1.0:
            raise WorkloadError("noise must be in [0, 1]")
        self._n_choices = n_choices
        self._window = window
        self._noise = noise
        self._salts: dict[str, int] = {}

    def choose(self, ctx: BehaviorContext, key: str) -> int:
        ctx.note_decision()
        if self._noise and ctx.rng.uniform() < self._noise:
            return ctx.rng.randint(0, self._n_choices - 1)
        salt = self._salts.get(key)
        if salt is None:
            salt = self._salts[key] = stable_hash(key)
        return ((ctx.window_hash(self._window) ^ salt) >> 5) % self._n_choices


class DepthGuardChoice(ChoiceBehavior):
    """Guards a recursive call: successor 0 recurses while depth allows.

    Below ``max_depth`` the decision is a deterministic function of the
    recent task path (recursion over a data structure follows from how the
    structure was reached), randomised with probability ``noise``; at or
    beyond the bound the guard always takes successor 1, so recursion
    terminates no matter what the random stream does. ``p_continue`` biases
    the path-correlated decision toward recursing.
    """

    def __init__(
        self,
        max_depth: int,
        p_continue: float = 0.7,
        noise: float = 0.1,
    ) -> None:
        if max_depth < 1:
            raise WorkloadError("max recursion depth must be >= 1")
        if not 0.0 <= p_continue <= 1.0:
            raise WorkloadError("p_continue must be in [0, 1]")
        if not 0.0 <= noise <= 1.0:
            raise WorkloadError("noise must be in [0, 1]")
        self._max_depth = max_depth
        self._p_continue = p_continue
        self._noise = noise
        self._salts: dict[str, int] = {}

    def choose(self, ctx: BehaviorContext, key: str) -> int:
        ctx.note_decision()
        if ctx.call_depth >= self._max_depth:
            return 1
        if self._noise and ctx.rng.uniform() < self._noise:
            return 0 if ctx.rng.uniform() < self._p_continue else 1
        salt = self._salts.get(key)
        if salt is None:
            salt = self._salts[key] = stable_hash(key)
        # Map a path-window hash onto [0, 1) and compare with the bias, so
        # the recurse decision is deterministic per path but still biased.
        draw = ((ctx.window_hash(3) ^ salt) & 0xFFFF) / 65536.0
        return 0 if draw < self._p_continue else 1
