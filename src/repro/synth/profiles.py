"""Per-benchmark generator profiles.

Each profile tunes the synthetic program generator so the resulting workload
reproduces the statistical fingerprint the paper reports for its SPEC92
namesake (Table 2, Figures 3 and 4) and — more importantly — the *kind* of
control behaviour that drives each benchmark's prediction results:

* ``gcc``      — huge task working set (3164 distinct tasks in the paper),
  context-dependent behaviour, a few percent indirect exits; the benchmark
  where real tables run out of capacity (Figures 10, 11).
* ``compress`` — tiny working set (39 tasks), tight loops over
  data-dependent branches; high irreducible miss rate (~19–26% in Figure 7).
* ``espresso`` — regular, loop-dominated, highly predictable (sub-3% miss).
* ``sc``       — strong per-site cyclic behaviour; the one benchmark where
  per-task (PER) history beats path history in the paper.
* ``xlisp``    — recursion-heavy interpreter: many calls/returns, ~8%
  indirect exits, strong path correlation (GLOBAL is 50% worse than PATH).

The paper's own numbers are kept in :class:`PaperStats` so experiments can
print paper-vs-measured columns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError


@dataclass(frozen=True)
class PaperStats:
    """Table 2 of the paper, for side-by-side reporting."""

    input_name: str
    static_tasks: int
    dynamic_tasks: int
    distinct_tasks_seen: int


@dataclass(frozen=True)
class BenchmarkProfile:
    """Knobs for :class:`repro.synth.generator.SyntheticProgramGenerator`.

    Program shape:
        n_hot_functions: Functions reachable at run time (excluding main).
        n_cold_functions: Functions emitted but never called — static-only
            tasks, reproducing the paper's static vs. seen gap.
        call_levels: Depth of the layered call DAG.
        constructs_per_function: (min, max) structural constructs per body.
        block_instructions: (min, max) instructions per basic block.
        max_blocks_per_task: Partitioner cap on task size.

    Construct mix (relative weights):
        w_if / w_ifelse / w_loop / w_call / w_switch / w_icall / w_straight.

    Conditional-branch behaviour mix (relative weights):
        w_biased / w_periodic / w_history, plus their parameters.

    Control parameters:
        bias_choices: Candidate taken-probabilities for biased branches.
        periodic_patterns: Candidate outcome patterns for periodic branches.
        history_masks: Candidate history masks for correlated branches.
        history_noise: Flip probability for correlated branches.
        trip_count_choices: Candidate per-context trip-count sets for loops.
        switch_arity: (min, max) case count of switches / indirect calls.
        switch_noise: Probability an indirect target is random.
        recursion_depth: Max recursion depth (0 disables recursion).
        recursion_p: Probability a recursion guard recurses when allowed.
        default_dynamic_tasks: Trace length used when callers don't override.
        phase_period: Behaviour decisions per program phase.
    """

    name: str
    seed: int
    paper: PaperStats
    n_hot_functions: int
    n_cold_functions: int
    call_levels: int
    constructs_per_function: tuple[int, int]
    block_instructions: tuple[int, int] = (2, 8)
    max_blocks_per_task: int = 8
    w_if: float = 3.0
    w_ifelse: float = 2.0
    w_loop: float = 2.0
    w_call: float = 2.0
    w_switch: float = 0.0
    w_icall: float = 0.0
    w_straight: float = 1.0
    w_biased: float = 1.0
    w_periodic: float = 1.0
    w_history: float = 1.0
    w_pathcorr: float = 1.0
    pathcorr_windows: tuple[int, ...] = (2, 3, 4, 5)
    pathcorr_noise: float = 0.03
    switch_window_choices: tuple[int, ...] = (2, 3)
    switch_phase_fraction: float = 0.25
    bias_choices: tuple[float, ...] = (0.9, 0.8, 0.7, 0.6, 0.95)
    periodic_patterns: tuple[tuple[int, ...], ...] = (
        (0, 0, 1),
        (0, 1),
        (0, 0, 0, 1),
        (1, 0, 0, 1, 0),
    )
    history_masks: tuple[int, ...] = (0b11, 0b101, 0b1110, 0b10011)
    history_noise: float = 0.05
    trip_count_choices: tuple[tuple[int, ...], ...] = (
        (2, 4),
        (3,),
        (5, 2),
        (8,),
        (2, 3, 6),
    )
    switch_arity: tuple[int, int] = (3, 6)
    switch_noise: float = 0.1
    recursion_depth: int = 0
    recursion_p: float = 0.6
    default_dynamic_tasks: int = 250_000
    phase_period: int = 20_000

    def __post_init__(self) -> None:
        if self.n_hot_functions < 1:
            raise WorkloadError("need at least one hot function")
        if self.call_levels < 1:
            raise WorkloadError("need at least one call level")
        lo, hi = self.constructs_per_function
        if not 1 <= lo <= hi:
            raise WorkloadError("bad constructs_per_function range")
        weights = (
            self.w_if, self.w_ifelse, self.w_loop, self.w_call,
            self.w_switch, self.w_icall, self.w_straight,
        )
        if any(w < 0 for w in weights) or not any(weights):
            raise WorkloadError("construct weights must be >= 0, not all zero")


#: The five benchmark profiles, keyed by paper benchmark name.
PROFILES: dict[str, BenchmarkProfile] = {
    "gcc": BenchmarkProfile(
        name="gcc",
        seed=0x6CC,
        paper=PaperStats("stmt.i", 12525, 4_036_539, 3164),
        n_hot_functions=185,
        n_cold_functions=300,
        call_levels=6,
        constructs_per_function=(8, 18),
        w_if=3.0, w_ifelse=2.5, w_loop=1.5, w_call=2.5,
        w_switch=0.55, w_icall=0.5, w_straight=1.0,
        w_biased=0.7, w_periodic=0.5, w_history=0.1, w_pathcorr=1.8,
        bias_choices=(0.95, 0.96, 0.93),
        history_noise=0.06,
        pathcorr_windows=(3, 4, 5, 6),
        pathcorr_noise=0.02,
        switch_arity=(3, 6),
        switch_noise=0.05,
        switch_window_choices=(2, 3, 4),
        default_dynamic_tasks=300_000,
    ),
    "compress": BenchmarkProfile(
        name="compress",
        seed=0xC0,
        paper=PaperStats("in (1MB)", 103, 5_517_241, 39),
        n_hot_functions=3,
        n_cold_functions=5,
        call_levels=2,
        constructs_per_function=(4, 6),
        w_if=4.0, w_ifelse=2.0, w_loop=3.0, w_call=2.5,
        w_switch=0.0, w_icall=0.0, w_straight=0.5,
        w_biased=3.0, w_periodic=0.1, w_history=0.3, w_pathcorr=0.8,
        bias_choices=(0.7, 0.6, 0.55, 0.8, 0.65),
        history_noise=0.25,
        pathcorr_windows=(2, 3),
        pathcorr_noise=0.1,
        trip_count_choices=((9, 14), (16,), (7, 11)),
        default_dynamic_tasks=300_000,
    ),
    "espresso": BenchmarkProfile(
        name="espresso",
        seed=0xE59,
        paper=PaperStats("bca.in", 3788, 41_458_206, 1260),
        n_hot_functions=112,
        n_cold_functions=92,
        call_levels=5,
        constructs_per_function=(7, 15),
        w_if=2.5, w_ifelse=1.5, w_loop=1.2, w_call=2.0,
        w_switch=0.05, w_icall=0.0, w_straight=1.0,
        w_biased=0.3, w_periodic=0.4, w_history=0.02, w_pathcorr=1.6,
        bias_choices=(0.97, 0.98),
        history_noise=0.015,
        pathcorr_windows=(2, 3, 4),
        pathcorr_noise=0.005,
        switch_noise=0.08,
        trip_count_choices=((3,), (4,), (2,), (5,), (3, 5)),
        default_dynamic_tasks=300_000,
    ),
    "sc": BenchmarkProfile(
        name="sc",
        seed=0x5C,
        paper=PaperStats("loada3", 3744, 8_353_930, 575),
        n_hot_functions=33,
        n_cold_functions=135,
        call_levels=4,
        constructs_per_function=(7, 14),
        w_if=3.0, w_ifelse=2.0, w_loop=2.0, w_call=1.8,
        w_switch=0.03, w_icall=0.0, w_straight=1.0,
        w_biased=0.4, w_periodic=1.0, w_history=0.1, w_pathcorr=1.4,
        bias_choices=(0.95, 0.93),
        pathcorr_windows=(2, 3),
        pathcorr_noise=0.02,
        periodic_patterns=(
            (0, 0, 1),
            (0, 1),
            (0, 1, 1, 0, 1),
            (0, 0, 0, 1, 0, 1),
            (1, 0, 0, 0, 1, 0, 0),
        ),
        history_noise=0.04,
        default_dynamic_tasks=300_000,
    ),
    "xlisp": BenchmarkProfile(
        name="xlisp",
        seed=0x715,
        paper=PaperStats("li-input.lsp", 1756, 2_735_019, 522),
        n_hot_functions=42,
        n_cold_functions=32,
        call_levels=4,
        constructs_per_function=(5, 11),
        w_if=2.5, w_ifelse=1.5, w_loop=0.6, w_call=4.5,
        w_switch=1.0, w_icall=2.5, w_straight=0.8,
        w_biased=0.6, w_periodic=0.3, w_history=0.1, w_pathcorr=1.8,
        bias_choices=(0.92, 0.95),
        history_noise=0.05,
        pathcorr_windows=(3, 4, 5, 6),
        pathcorr_noise=0.02,
        switch_arity=(3, 5),
        switch_noise=0.05,
        recursion_depth=9,
        recursion_p=0.65,
        default_dynamic_tasks=300_000,
    ),
}

#: Benchmarks in the paper's presentation order.
BENCHMARK_NAMES = ("gcc", "compress", "espresso", "sc", "xlisp")


def get_profile(name: str) -> BenchmarkProfile:
    """Return the named profile, raising WorkloadError for unknown names."""
    try:
        return PROFILES[name]
    except KeyError:
        raise WorkloadError(
            f"unknown benchmark {name!r}; known: {sorted(PROFILES)}"
        ) from None
