"""Workload construction and caching.

`load_workload("gcc")` is the one-stop entry point used by examples, tests
and the experiment harness: it generates the profile's synthetic program,
compiles it to tasks, executes it to the requested trace length, and caches
both in memory (per process) and on disk (traces only, under
``.repro-cache/``) so repeated experiment runs don't regenerate.
"""

from __future__ import annotations

import os
import re
import time
from dataclasses import dataclass
from pathlib import Path
from zipfile import BadZipFile

import numpy as np

from repro.compiler import PartitionConfig, compile_program
from repro.errors import TraceError
from repro.compiler.compiled import CompiledProgram
from repro.synth.executor import TraceExecutor
from repro.synth.generator import (
    GENERATOR_VERSION,
    SyntheticProgramGenerator,
)
from repro.synth.profiles import BenchmarkProfile, get_profile
from repro.synth.trace import TaskTrace
from repro.utils.hashing import stable_hash

#: Set the REPRO_CACHE_DIR environment variable to move the trace cache.
_CACHE_ENV = "REPRO_CACHE_DIR"

#: Set by the experiment engine while a checkpoint store is active
#: (see :mod:`repro.evalx.checkpoint`), so the prewarm sweep can reap
#: orphaned record temp files left by killed runs.
CHECKPOINT_ENV = "REPRO_CHECKPOINT_DIR"


@dataclass(frozen=True)
class Workload:
    """A ready-to-simulate workload: profile, compiled program, and trace."""

    profile: BenchmarkProfile
    compiled: CompiledProgram
    trace: TaskTrace

    @property
    def name(self) -> str:
        """Benchmark name (profile name)."""
        return self.profile.name

    def exit_counts(self) -> dict[int, int]:
        """Map task address -> number of header exits (simulator helper)."""
        return {
            task.address: task.n_exits
            for task in self.compiled.program.tfg
        }


_program_cache: dict[str, CompiledProgram] = {}
_trace_cache: dict[tuple[str, int], TaskTrace] = {}

#: Monotonically increasing per-process cache accounting. The parallel
#: scheduler snapshots these around each cell and reports the deltas in
#: its metrics stream, so a run shows where trace generation actually
#: happened (parent prewarm vs worker regeneration).
_cache_stats = {
    "program_memory_hits": 0,
    "program_builds": 0,
    "trace_memory_hits": 0,
    "trace_disk_hits": 0,
    "trace_builds": 0,
    "orphan_tmp_reaps": 0,
}


def cache_counters() -> dict[str, int]:
    """Snapshot of this process's workload-cache hit/miss counters."""
    return dict(_cache_stats)


def build_program(name: str) -> CompiledProgram:
    """Generate and compile the named benchmark's program (memoised)."""
    compiled = _program_cache.get(name)
    if compiled is not None:
        _cache_stats["program_memory_hits"] += 1
    if compiled is None:
        _cache_stats["program_builds"] += 1
        profile = get_profile(name)
        program_cfg = SyntheticProgramGenerator(profile).generate()
        compiled = compile_program(
            program_cfg,
            name=profile.name,
            config=PartitionConfig(
                max_blocks_per_task=profile.max_blocks_per_task
            ),
        )
        _program_cache[name] = compiled
    return compiled


def _cache_dir() -> Path | None:
    """Directory for on-disk trace caching, or None to disable.

    Defaults to ``.repro-cache`` in the working directory; set
    ``REPRO_CACHE_DIR=off`` to disable.
    """
    configured = os.environ.get(_CACHE_ENV, ".repro-cache")
    if configured.lower() in ("off", "none", ""):
        return None
    return Path(configured)


def disk_cache_enabled() -> bool:
    """Whether traces are persisted to disk (see ``REPRO_CACHE_DIR``)."""
    return _cache_dir() is not None


#: Temp files from a process killed mid-publish: trace-cache writers
#: leave ``.{stem}.tmp-{pid}.npz`` (see :func:`_save_cached`), the
#: checkpoint store leaves ``.{fingerprint}.tmp-{pid}`` (see
#: :mod:`repro.evalx.checkpoint`).
_TMP_NAME = re.compile(r"^\..+\.tmp-(\d+)(?:\.npz)?$")

#: A temp file older than this is orphaned even if its pid was recycled.
_TMP_MAX_AGE_SECONDS = 3600.0


def _pid_alive(pid: int) -> bool:
    """Whether a process with this pid currently exists."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True  # exists but isn't ours
    return True


def sweep_orphan_tmp_files(cache_dir: Path | None = None) -> list[Path]:
    """Delete stale ``.tmp-<pid>`` leftovers from an atomic-write dir.

    A process killed between writing its temp file and ``os.replace``
    leaves the temp behind forever; without this sweep they accumulate
    one per crashed pid. Applies to both trace-cache entries and
    checkpoint records — the two stores share the write-to-tmp
    discipline and the temp naming scheme. A temp file is orphaned when
    its owning pid is dead, or when it is older than an hour
    (pid-recycling guard). Files being written right now belong to live
    pids and are recent, so they are never touched. Returns the paths
    removed; the count lands in the ``orphan_tmp_reaps`` cache counter.
    """
    if cache_dir is None:
        cache_dir = _cache_dir()
    if cache_dir is None or not cache_dir.is_dir():
        return []
    removed: list[Path] = []
    for tmp_path in cache_dir.iterdir():
        match = _TMP_NAME.match(tmp_path.name)
        if match is None:
            continue
        try:
            age = time.time() - tmp_path.stat().st_mtime
        except OSError:
            continue  # already gone (concurrent sweep)
        if _pid_alive(int(match.group(1))) and age < _TMP_MAX_AGE_SECONDS:
            continue
        try:
            tmp_path.unlink()
            removed.append(tmp_path)
        except OSError:
            pass
    _cache_stats["orphan_tmp_reaps"] += len(removed)
    return removed


def _checkpoint_dir() -> Path | None:
    """The active checkpoint store directory, if any (env-published)."""
    configured = os.environ.get(CHECKPOINT_ENV, "")
    return Path(configured) if configured else None


def prewarm_workload(name: str, n_tasks: int | None = None) -> str:
    """Generate one workload and publish its trace to the disk cache.

    The parallel experiment scheduler runs this once per distinct
    (benchmark, length) before fanning cells out, so worker processes
    find warm cache entries instead of each regenerating the same trace.
    Also sweeps orphaned temp files left by killed processes — in the
    trace cache and, when a checkpoint store is active, in its record
    directory too. Returns the benchmark name (a picklable
    acknowledgement for pools).
    """
    sweep_orphan_tmp_files()
    checkpoint_dir = _checkpoint_dir()
    if checkpoint_dir is not None:
        sweep_orphan_tmp_files(checkpoint_dir)
    load_workload(name, n_tasks)
    return name


def load_workload(name: str, n_tasks: int | None = None) -> Workload:
    """Return the named benchmark workload with an ``n_tasks``-long trace.

    ``n_tasks`` defaults to the profile's ``default_dynamic_tasks``. Traces
    are cached in memory and on disk keyed by (benchmark, length, seed).
    """
    profile = get_profile(name)
    if n_tasks is None:
        n_tasks = profile.default_dynamic_tasks
    compiled = build_program(name)

    trace = _trace_cache.get((name, n_tasks))
    if trace is not None:
        _cache_stats["trace_memory_hits"] += 1
    else:
        trace = _load_or_run(profile, compiled, n_tasks)
        _trace_cache[(name, n_tasks)] = trace
    return Workload(profile=profile, compiled=compiled, trace=trace)


def _profile_fingerprint(profile: BenchmarkProfile) -> str:
    """Cache-key component covering every generation-relevant input.

    Any profile parameter change or generator semantics change must miss
    the cache, otherwise stale traces would disagree with the regenerated
    program's task addresses.
    """
    return format(
        stable_hash(f"v{GENERATOR_VERSION}:{profile!r}") & 0xFFFF_FFFF, "08x"
    )


def _trace_matches_program(
    trace: TaskTrace, compiled: CompiledProgram
) -> bool:
    """Cheap consistency check: every traced task must exist statically."""
    addresses = np.fromiter(
        (task.address for task in compiled.program.tfg), dtype=np.uint32
    )
    return bool(np.isin(trace.task_addr, addresses).all())


def _try_load_cached(
    cache_path: Path, compiled: CompiledProgram
) -> TaskTrace | None:
    """Load a cached trace, treating any damage as a cache miss.

    A parallel run killed mid-write (before atomic writes existed) or a
    truncated disk can leave an unreadable ``.npz``; regenerating is
    always safe, so corruption must never crash an experiment.
    """
    if not cache_path.exists():
        return None
    try:
        trace = TaskTrace.load(cache_path)
    except (OSError, ValueError, EOFError, BadZipFile, TraceError):
        trace = None
    if trace is not None and _trace_matches_program(trace, compiled):
        return trace
    try:
        cache_path.unlink()  # corrupt, or stale from an older build
    except OSError:
        pass  # another process already replaced or removed it
    return None


def _save_cached(trace: TaskTrace, cache_path: Path) -> None:
    """Publish a trace to the disk cache atomically.

    The trace is written to a same-directory temp file and moved into
    place with ``os.replace``, so concurrent workers generating the same
    workload can never observe a half-written cache entry — the worst
    case is redundant generation, last writer wins. The temp name keeps
    the ``.npz`` suffix because ``np.savez`` appends one otherwise.
    """
    cache_path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = cache_path.with_name(
        f".{cache_path.stem}.tmp-{os.getpid()}.npz"
    )
    try:
        trace.save(tmp_path)
        os.replace(tmp_path, cache_path)
    except BaseException:
        tmp_path.unlink(missing_ok=True)
        raise


def trace_cache_path(name: str, n_tasks: int | None = None) -> Path | None:
    """Disk-cache entry path for a (benchmark, length), or None if off.

    The file may or may not exist; this only computes where it lives.
    Used by cache-hygiene tooling and the fault injector's
    ``corrupt-trace`` action.
    """
    cache_dir = _cache_dir()
    if cache_dir is None:
        return None
    profile = get_profile(name)
    if n_tasks is None:
        n_tasks = profile.default_dynamic_tasks
    return cache_dir / (
        f"{profile.name}-{_profile_fingerprint(profile)}"
        f"-s{profile.seed}-n{n_tasks}.npz"
    )


def _load_or_run(
    profile: BenchmarkProfile, compiled: CompiledProgram, n_tasks: int
) -> TaskTrace:
    cache_path = trace_cache_path(profile.name, n_tasks)
    if cache_path is not None:
        cached = _try_load_cached(cache_path, compiled)
        if cached is not None:
            _cache_stats["trace_disk_hits"] += 1
            return cached
    _cache_stats["trace_builds"] += 1
    executor = TraceExecutor(
        compiled,
        seed=profile.seed,
        phase_period=profile.phase_period,
    )
    trace = executor.run(n_tasks)
    if cache_path is not None:
        _save_cached(trace, cache_path)
    return trace


def clear_caches() -> None:
    """Drop the in-memory program and trace caches (tests use this)."""
    _program_cache.clear()
    _trace_cache.clear()
