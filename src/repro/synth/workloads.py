"""Workload construction and caching.

`load_workload("gcc")` is the one-stop entry point used by examples, tests
and the experiment harness: it generates the profile's synthetic program,
compiles it to tasks, executes it to the requested trace length, and caches
both in memory (per process) and on disk (traces only, under
``.repro-cache/``) so repeated experiment runs don't regenerate.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.compiler import PartitionConfig, compile_program
from repro.compiler.compiled import CompiledProgram
from repro.synth.executor import TraceExecutor
from repro.synth.generator import (
    GENERATOR_VERSION,
    SyntheticProgramGenerator,
)
from repro.synth.profiles import BenchmarkProfile, get_profile
from repro.synth.trace import TaskTrace
from repro.utils.hashing import stable_hash

#: Set the REPRO_CACHE_DIR environment variable to move the trace cache.
_CACHE_ENV = "REPRO_CACHE_DIR"


@dataclass(frozen=True)
class Workload:
    """A ready-to-simulate workload: profile, compiled program, and trace."""

    profile: BenchmarkProfile
    compiled: CompiledProgram
    trace: TaskTrace

    @property
    def name(self) -> str:
        """Benchmark name (profile name)."""
        return self.profile.name

    def exit_counts(self) -> dict[int, int]:
        """Map task address -> number of header exits (simulator helper)."""
        return {
            task.address: task.n_exits
            for task in self.compiled.program.tfg
        }


_program_cache: dict[str, CompiledProgram] = {}
_trace_cache: dict[tuple[str, int], TaskTrace] = {}


def build_program(name: str) -> CompiledProgram:
    """Generate and compile the named benchmark's program (memoised)."""
    compiled = _program_cache.get(name)
    if compiled is None:
        profile = get_profile(name)
        program_cfg = SyntheticProgramGenerator(profile).generate()
        compiled = compile_program(
            program_cfg,
            name=profile.name,
            config=PartitionConfig(
                max_blocks_per_task=profile.max_blocks_per_task
            ),
        )
        _program_cache[name] = compiled
    return compiled


def _cache_dir() -> Path | None:
    """Directory for on-disk trace caching, or None to disable.

    Defaults to ``.repro-cache`` in the working directory; set
    ``REPRO_CACHE_DIR=off`` to disable.
    """
    configured = os.environ.get(_CACHE_ENV, ".repro-cache")
    if configured.lower() in ("off", "none", ""):
        return None
    return Path(configured)


def load_workload(name: str, n_tasks: int | None = None) -> Workload:
    """Return the named benchmark workload with an ``n_tasks``-long trace.

    ``n_tasks`` defaults to the profile's ``default_dynamic_tasks``. Traces
    are cached in memory and on disk keyed by (benchmark, length, seed).
    """
    profile = get_profile(name)
    if n_tasks is None:
        n_tasks = profile.default_dynamic_tasks
    compiled = build_program(name)

    trace = _trace_cache.get((name, n_tasks))
    if trace is None:
        trace = _load_or_run(profile, compiled, n_tasks)
        _trace_cache[(name, n_tasks)] = trace
    return Workload(profile=profile, compiled=compiled, trace=trace)


def _profile_fingerprint(profile: BenchmarkProfile) -> str:
    """Cache-key component covering every generation-relevant input.

    Any profile parameter change or generator semantics change must miss
    the cache, otherwise stale traces would disagree with the regenerated
    program's task addresses.
    """
    return format(
        stable_hash(f"v{GENERATOR_VERSION}:{profile!r}") & 0xFFFF_FFFF, "08x"
    )


def _trace_matches_program(
    trace: TaskTrace, compiled: CompiledProgram
) -> bool:
    """Cheap consistency check: every traced task must exist statically."""
    addresses = np.fromiter(
        (task.address for task in compiled.program.tfg), dtype=np.uint32
    )
    return bool(np.isin(trace.task_addr, addresses).all())


def _load_or_run(
    profile: BenchmarkProfile, compiled: CompiledProgram, n_tasks: int
) -> TaskTrace:
    cache_dir = _cache_dir()
    cache_path = None
    if cache_dir is not None:
        cache_path = cache_dir / (
            f"{profile.name}-{_profile_fingerprint(profile)}"
            f"-s{profile.seed}-n{n_tasks}.npz"
        )
        if cache_path.exists():
            trace = TaskTrace.load(cache_path)
            if _trace_matches_program(trace, compiled):
                return trace
            cache_path.unlink()  # stale cache from an older build
    executor = TraceExecutor(
        compiled,
        seed=profile.seed,
        phase_period=profile.phase_period,
    )
    trace = executor.run(n_tasks)
    if cache_path is not None:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        trace.save(cache_path)
    return trace


def clear_caches() -> None:
    """Drop the in-memory program and trace caches (tests use this)."""
    _program_cache.clear()
    _trace_cache.clear()
