"""Synthetic workloads: the SPEC92 substitute.

The paper evaluates on five SPEC92 integer benchmarks compiled by the
Wisconsin Multiscalar compiler. Neither is available, so this package
*generates* programs — call graphs of functions built from loops, branches,
call sites and switches, each with an attached runtime behaviour model — and
*executes* them to produce task-level traces. Per-benchmark profiles tune the
generator so each synthetic workload reproduces the statistical fingerprint
the paper reports for its namesake (Table 2, Figures 3 and 4) and the control
structure that drives predictor behaviour (path correlation, per-task cycles,
data-dependent noise, context-dependent indirect targets).
"""

from repro.synth.behavior import (
    BehaviorContext,
    BiasedChoice,
    ChoiceBehavior,
    ContextChoice,
    DepthGuardChoice,
    FixedChoice,
    HistoryParityChoice,
    LoopBehavior,
    PathCorrelatedChoice,
    PeriodicChoice,
    PhaseChoice,
    TaskWindowChoice,
)
from repro.synth.executor import TraceExecutor
from repro.synth.generator import SyntheticProgramGenerator
from repro.synth.profiles import BenchmarkProfile, PROFILES, PaperStats
from repro.synth.trace import TaskTrace, TraceBuilder
from repro.synth.workloads import Workload, load_workload

__all__ = [
    "BehaviorContext",
    "ChoiceBehavior",
    "FixedChoice",
    "BiasedChoice",
    "LoopBehavior",
    "PeriodicChoice",
    "HistoryParityChoice",
    "PathCorrelatedChoice",
    "TaskWindowChoice",
    "PhaseChoice",
    "ContextChoice",
    "DepthGuardChoice",
    "SyntheticProgramGenerator",
    "TraceExecutor",
    "BenchmarkProfile",
    "PaperStats",
    "PROFILES",
    "TaskTrace",
    "TraceBuilder",
    "Workload",
    "load_workload",
]
