"""Workload command line: ``python -m repro.synth <command> <benchmark>``.

Commands::

    info gcc            program summary + validation + key distributions
    trace gcc out.npz   generate a trace and save it to a file
    list                list the available benchmark profiles
"""

from __future__ import annotations

import argparse
import sys

from repro.evalx.report import format_percent, render_table
from repro.synth.profiles import BENCHMARK_NAMES, get_profile
from repro.synth.stats_view import compute_stats
from repro.synth.validate import validate_workload
from repro.synth.workloads import load_workload


def _cmd_list() -> int:
    rows = []
    for name in BENCHMARK_NAMES:
        profile = get_profile(name)
        rows.append(
            [
                name,
                profile.paper.input_name,
                profile.paper.static_tasks,
                profile.paper.distinct_tasks_seen,
                profile.default_dynamic_tasks,
            ]
        )
    print(render_table(
        ["benchmark", "paper input", "paper static", "paper distinct",
         "default trace"],
        rows,
    ))
    return 0


def _cmd_info(name: str, n_tasks: int | None) -> int:
    workload = load_workload(name, n_tasks=n_tasks)
    from repro.isa.display import format_program_summary

    print(format_program_summary(workload.compiled.program))
    print()
    report = validate_workload(workload)
    print(report)
    print()
    stats = compute_stats(workload)
    rows = [
        ["single-exit tasks (static)",
         format_percent(stats.static_arity[1], 1)],
        ["dynamic indirect share",
         format_percent(stats.dynamic_indirect_share, 1)],
        ["dynamic return share",
         format_percent(stats.dynamic_types["return"], 1)],
        ["instructions / dynamic task",
         f"{stats.instructions_per_task:.1f}"],
        ["distinct tasks seen", workload.trace.distinct_tasks_seen()],
    ]
    print(render_table(["metric", "value"], rows))
    return 0 if report.ok else 1


def _cmd_trace(name: str, path: str, n_tasks: int | None) -> int:
    workload = load_workload(name, n_tasks=n_tasks)
    workload.trace.save(path)
    print(
        f"wrote {len(workload.trace)} task records "
        f"({workload.trace.total_instructions()} instructions) to {path}"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.synth",
        description="Generate and inspect synthetic Multiscalar workloads.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available benchmark profiles")
    info = sub.add_parser("info", help="summarise and validate a workload")
    info.add_argument("benchmark", choices=BENCHMARK_NAMES)
    info.add_argument("--tasks", type=int, default=None)
    trace = sub.add_parser("trace", help="generate and save a trace")
    trace.add_argument("benchmark", choices=BENCHMARK_NAMES)
    trace.add_argument("output", help="output .npz path")
    trace.add_argument("--tasks", type=int, default=None)
    args = parser.parse_args(argv)

    if args.command == "list":
        return _cmd_list()
    if args.command == "info":
        return _cmd_info(args.benchmark, args.tasks)
    return _cmd_trace(args.benchmark, args.output, args.tasks)


if __name__ == "__main__":
    sys.exit(main())
