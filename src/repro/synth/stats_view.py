"""Reusable statistics over workloads: the numbers behind Figures 3 and 4.

Shared by the figure drivers, the workload explorer, and validation, so
exit-arity and exit-type distributions are computed one way everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa.controlflow import ControlFlowType, MAX_EXITS_PER_TASK
from repro.synth.trace import CF_TYPE_CODES
from repro.synth.workloads import Workload

#: Exit types in the paper's presentation order.
EXIT_TYPES = (
    ControlFlowType.BRANCH,
    ControlFlowType.CALL,
    ControlFlowType.RETURN,
    ControlFlowType.INDIRECT_BRANCH,
    ControlFlowType.INDIRECT_CALL,
)

_ARITIES = tuple(range(1, MAX_EXITS_PER_TASK + 1))


@dataclass(frozen=True)
class WorkloadStats:
    """Distributions over one workload, static and dynamic views.

    All four maps hold fractions summing to 1.0:

    Attributes:
        static_arity: {n_exits: fraction of static tasks}.
        dynamic_arity: {n_exits: fraction of dynamic task executions}.
        static_types: {type name: fraction of static header exits}.
        dynamic_types: {type name: fraction of dynamic exits taken}.
        instructions_per_task: Mean instructions per dynamic task.
    """

    static_arity: dict[int, float]
    dynamic_arity: dict[int, float]
    static_types: dict[str, float]
    dynamic_types: dict[str, float]
    instructions_per_task: float

    @property
    def dynamic_indirect_share(self) -> float:
        """Dynamic fraction of INDIRECT_BRANCH + INDIRECT_CALL exits."""
        return (
            self.dynamic_types[str(ControlFlowType.INDIRECT_BRANCH)]
            + self.dynamic_types[str(ControlFlowType.INDIRECT_CALL)]
        )


def compute_stats(workload: Workload) -> WorkloadStats:
    """Measure all Figure 3/4 distributions for one workload."""
    program = workload.compiled.program
    trace = workload.trace

    arity_counts = dict.fromkeys(_ARITIES, 0)
    type_counts = dict.fromkeys(EXIT_TYPES, 0)
    for task in program.tfg:
        arity_counts[task.n_exits] += 1
        for task_exit in task.header.exits:
            type_counts[task_exit.cf_type] += 1
    n_static = sum(arity_counts.values())
    n_exits_static = sum(type_counts.values())
    static_arity = {k: v / n_static for k, v in arity_counts.items()}
    static_types = {
        str(t): type_counts[t] / n_exits_static for t in EXIT_TYPES
    }

    n_exits_of = workload.exit_counts()
    dynamic_arity_counts = dict.fromkeys(_ARITIES, 0)
    addrs, freqs = np.unique(trace.task_addr, return_counts=True)
    for addr, freq in zip(addrs.tolist(), freqs.tolist()):
        dynamic_arity_counts[n_exits_of[addr]] += freq
    n_dynamic = sum(dynamic_arity_counts.values())
    dynamic_arity = {
        k: v / n_dynamic for k, v in dynamic_arity_counts.items()
    }

    codes, counts = np.unique(trace.cf_type, return_counts=True)
    by_code = dict(zip(codes.tolist(), counts.tolist()))
    dynamic_types = {
        str(t): by_code.get(CF_TYPE_CODES[t], 0) / n_dynamic
        for t in EXIT_TYPES
    }

    return WorkloadStats(
        static_arity=static_arity,
        dynamic_arity=dynamic_arity,
        static_types=static_types,
        dynamic_types=dynamic_types,
        instructions_per_task=trace.total_instructions() / len(trace),
    )
