"""Task-level execution traces.

A :class:`TaskTrace` is the record of one program run at task granularity:
for every dynamically executed task, which task it was, which header exit it
took, the exit's control-flow type, the next task's start address, and the
intra-task cost figures the timing simulator consumes. Storage is columnar
(numpy arrays) because the prediction simulators stream over hundreds of
thousands of records.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import TraceError
from repro.isa.controlflow import ControlFlowType

#: Stable numeric codes for control-flow types inside trace arrays.
CF_TYPE_CODES: dict[ControlFlowType, int] = {
    ControlFlowType.BRANCH: 0,
    ControlFlowType.CALL: 1,
    ControlFlowType.RETURN: 2,
    ControlFlowType.INDIRECT_BRANCH: 3,
    ControlFlowType.INDIRECT_CALL: 4,
}
CF_TYPE_FROM_CODE: dict[int, ControlFlowType] = {
    code: cf for cf, code in CF_TYPE_CODES.items()
}

def _columns_digest(arrays: dict, program_name: str) -> str:
    """SHA-256 over every column's name, dtype, shape, and bytes."""
    import hashlib

    digest = hashlib.sha256()
    digest.update(program_name.encode("utf-8"))
    for name in _FIELDS:
        column = np.asarray(arrays[name])
        digest.update(
            f"\n{name}:{column.dtype.str}:{column.shape}\n".encode("utf-8")
        )
        digest.update(column.tobytes())
    return digest.hexdigest()


_FIELDS = (
    "task_addr",
    "exit_index",
    "cf_type",
    "next_addr",
    "instructions",
    "internal_branches",
    "internal_mispredicts",
)


@dataclass(frozen=True)
class TaskTrace:
    """Columnar task-level trace of one program execution.

    Attributes:
        task_addr: Start address of each executed task (uint32).
        exit_index: Header exit index taken, 0..3 (uint8).
        cf_type: Control-flow type code of the taken exit (uint8, see
            :data:`CF_TYPE_CODES`).
        next_addr: Start address of the following task (uint32).
        instructions: Instructions retired by this task execution (uint16).
        internal_branches: Intra-task conditional branches resolved (uint16).
        internal_mispredicts: Of those, how many the intra-task bimodal
            predictor missed (uint16).
        program_name: Name of the program that produced the trace.
    """

    task_addr: np.ndarray
    exit_index: np.ndarray
    cf_type: np.ndarray
    next_addr: np.ndarray
    instructions: np.ndarray
    internal_branches: np.ndarray
    internal_mispredicts: np.ndarray
    program_name: str = ""

    def __post_init__(self) -> None:
        length = len(self.task_addr)
        for name in _FIELDS:
            if len(getattr(self, name)) != length:
                raise TraceError(
                    f"trace column {name!r} has mismatched length"
                )

    def __len__(self) -> int:
        return len(self.task_addr)

    @property
    def dynamic_task_count(self) -> int:
        """Number of dynamic task executions (Table 2, 'Dynamic Tasks')."""
        return len(self)

    def distinct_tasks_seen(self) -> int:
        """Number of distinct static tasks executed (Table 2)."""
        return int(np.unique(self.task_addr).size)

    def total_instructions(self) -> int:
        """Instructions retired across the whole trace."""
        return int(self.instructions.sum(dtype=np.int64))

    def head(self, n: int) -> "TaskTrace":
        """Return a trace containing only the first ``n`` records."""
        if n < 0:
            raise TraceError("head length must be >= 0")
        return TaskTrace(
            **{name: getattr(self, name)[:n] for name in _FIELDS},
            program_name=self.program_name,
        )

    def save(self, path: Path | str) -> None:
        """Save the trace to a compressed .npz file.

        The file embeds a SHA-256 checksum over every column, so a
        record damaged after its atomic publication (bad sector, torn
        copy, deliberate chaos-test corruption) is detected at load
        time instead of silently feeding wrong data to a simulator.
        """
        arrays = {name: getattr(self, name) for name in _FIELDS}
        np.savez_compressed(
            Path(path),
            program_name=np.array(self.program_name),
            checksum=np.array(_columns_digest(arrays, self.program_name)),
            **arrays,
        )

    @classmethod
    def load(cls, path: Path | str) -> "TaskTrace":
        """Load a trace previously written by :meth:`save`.

        Raises :class:`~repro.errors.TraceError` when the embedded
        checksum does not match the loaded columns (files written
        before checksums existed load unverified). The trace cache
        treats that as a miss and regenerates.
        """
        with np.load(Path(path)) as data:
            missing = [name for name in _FIELDS if name not in data]
            if missing:
                raise TraceError(f"trace file missing columns: {missing}")
            arrays = {name: data[name] for name in _FIELDS}
            program_name = str(data["program_name"])
            if "checksum" in data:
                stored = str(data["checksum"])
                computed = _columns_digest(arrays, program_name)
                if stored != computed:
                    raise TraceError(
                        f"trace file {path} checksum mismatch "
                        f"({computed[:12]}... != {stored[:12]}...): "
                        "file damaged after write"
                    )
            return cls(**arrays, program_name=program_name)


class TraceBuilder:
    """Accumulates trace records and freezes them into a :class:`TaskTrace`."""

    def __init__(self, program_name: str = "") -> None:
        self._program_name = program_name
        self._task_addr: list[int] = []
        self._exit_index: list[int] = []
        self._cf_type: list[int] = []
        self._next_addr: list[int] = []
        self._instructions: list[int] = []
        self._internal_branches: list[int] = []
        self._internal_mispredicts: list[int] = []

    def __len__(self) -> int:
        return len(self._task_addr)

    def append(
        self,
        task_addr: int,
        exit_index: int,
        cf_type_code: int,
        next_addr: int,
        instructions: int,
        internal_branches: int,
        internal_mispredicts: int,
    ) -> None:
        """Append one task-execution record."""
        self._task_addr.append(task_addr)
        self._exit_index.append(exit_index)
        self._cf_type.append(cf_type_code)
        self._next_addr.append(next_addr)
        self._instructions.append(min(instructions, 0xFFFF))
        self._internal_branches.append(min(internal_branches, 0xFFFF))
        self._internal_mispredicts.append(min(internal_mispredicts, 0xFFFF))

    def build(self) -> TaskTrace:
        """Freeze the accumulated records into an immutable trace."""
        return TaskTrace(
            task_addr=np.asarray(self._task_addr, dtype=np.uint32),
            exit_index=np.asarray(self._exit_index, dtype=np.uint8),
            cf_type=np.asarray(self._cf_type, dtype=np.uint8),
            next_addr=np.asarray(self._next_addr, dtype=np.uint32),
            instructions=np.asarray(self._instructions, dtype=np.uint16),
            internal_branches=np.asarray(
                self._internal_branches, dtype=np.uint16
            ),
            internal_mispredicts=np.asarray(
                self._internal_mispredicts, dtype=np.uint16
            ),
            program_name=self._program_name,
        )
