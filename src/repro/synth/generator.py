"""Synthetic program generation.

Builds a :class:`repro.cfg.graph.ProgramCFG` from a benchmark profile: a
layered call DAG of functions, each function a CFG assembled from structural
constructs (if / if-else / loop / call / switch / indirect call / straight
code), every decision point carrying a behaviour model from
:mod:`repro.synth.behavior`.

``main`` is a driver that calls each first-level hot function in turn and
returns; the executor re-enters ``main`` when it returns, so a program can
produce traces of any length. Cold functions are generated but never called,
reproducing the paper's gap between static tasks and distinct tasks seen.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.basicblock import BasicBlock, Terminator, TerminatorKind
from repro.cfg.graph import ControlFlowGraph, ProgramCFG
from repro.synth.behavior import (
    BiasedChoice,
    ChoiceBehavior,
    DepthGuardChoice,
    HistoryParityChoice,
    LoopBehavior,
    PathCorrelatedChoice,
    PeriodicChoice,
    PhaseChoice,
    TaskWindowChoice,
)
from repro.synth.profiles import BenchmarkProfile
from repro.utils.rng import DeterministicRng

#: Bump when generation semantics change: invalidates on-disk trace caches.
GENERATOR_VERSION = 3

_CONSTRUCTS = (
    "if", "ifelse", "loop", "call", "switch", "icall", "straight",
)


@dataclass
class _FunctionPlan:
    """What the generator decided about one function before building it."""

    name: str
    level: int
    is_cold: bool
    callees: tuple[str, ...]  # functions this one may call
    recursive: bool


class SyntheticProgramGenerator:
    """Generates a whole program CFG from a :class:`BenchmarkProfile`."""

    def __init__(self, profile: BenchmarkProfile) -> None:
        self._profile = profile
        self._rng = DeterministicRng(profile.seed).fork("generator")

    def generate(self) -> ProgramCFG:
        """Build and validate the program CFG."""
        plans = self._plan_functions()
        program = ProgramCFG(main="main")
        program.add_function(self._build_main(plans))
        for plan in plans:
            builder = _FunctionBuilder(
                plan,
                self._profile,
                self._rng.fork(f"fn:{plan.name}"),
                depth_scale=0.55 ** (plan.level - 1),
            )
            program.add_function(builder.build())
        program.validate()
        return program

    def _plan_functions(self) -> list[_FunctionPlan]:
        """Lay hot functions out on call levels; cold functions call nothing."""
        profile = self._profile
        plans: list[_FunctionPlan] = []
        names_by_level: dict[int, list[str]] = {
            level: [] for level in range(1, profile.call_levels + 1)
        }
        for index in range(profile.n_hot_functions):
            # Spread functions across levels, denser near the leaves, the way
            # real call graphs fan out.
            level = 1 + min(
                profile.call_levels - 1,
                int(
                    (index / max(1, profile.n_hot_functions))
                    * profile.call_levels
                ),
            )
            names_by_level[level].append(f"f{index}")
        callee_sets: dict[str, list[str]] = {}
        for level in range(1, profile.call_levels + 1):
            deeper: list[str] = []
            for other in range(level + 1, profile.call_levels + 1):
                deeper.extend(names_by_level[other])
            for name in names_by_level[level]:
                callee_sets[name] = list(self._pick_callees(deeper))
        self._ensure_coverage(names_by_level, callee_sets)
        for level in range(1, profile.call_levels + 1):
            for name in names_by_level[level]:
                recursive = (
                    profile.recursion_depth > 0
                    and self._rng.uniform() < 0.5
                )
                plans.append(
                    _FunctionPlan(
                        name=name,
                        level=level,
                        is_cold=False,
                        callees=tuple(callee_sets[name]),
                        recursive=recursive,
                    )
                )
        for index in range(profile.n_cold_functions):
            plans.append(
                _FunctionPlan(
                    name=f"cold{index}",
                    level=1 + index % profile.call_levels,
                    is_cold=True,
                    callees=(),
                    recursive=False,
                )
            )
        return plans

    def _ensure_coverage(
        self,
        names_by_level: dict[int, list[str]],
        callee_sets: dict[str, list[str]],
    ) -> None:
        """Guarantee every hot function below level 1 has at least one caller.

        Without this, random callee selection strands a fraction of the hot
        functions, collapsing the dynamic task working set.
        """
        called = {
            callee for callees in callee_sets.values() for callee in callees
        }
        for level in sorted(names_by_level):
            if level == 1:
                continue
            shallower: list[str] = []
            for other in range(1, level):
                shallower.extend(names_by_level[other])
            if not shallower:
                continue
            for name in names_by_level[level]:
                if name not in called:
                    caller = self._rng.choice(shallower)
                    callee_sets[caller].append(name)
                    called.add(name)

    def _pick_callees(self, candidates: list[str]) -> tuple[str, ...]:
        """Choose up to 4 distinct callees from deeper levels."""
        if not candidates:
            return ()
        count = min(len(candidates), self._rng.randint(1, 4))
        picked: list[str] = []
        pool = list(candidates)
        for _ in range(count):
            choice = self._rng.choice(pool)
            pool.remove(choice)
            picked.append(choice)
        return tuple(picked)

    def _build_main(self, plans: list[_FunctionPlan]) -> ControlFlowGraph:
        """Main calls every level-1 hot function in sequence, then returns."""
        cfg = ControlFlowGraph("main", entry_label="main.entry")
        level1 = [p.name for p in plans if p.level == 1 and not p.is_cold]
        if not level1:
            level1 = [p.name for p in plans if not p.is_cold][:1]
        labels = [f"main.call{i}" for i in range(len(level1))]
        ret_label = "main.ret"
        first = labels[0] if labels else ret_label
        entry = BasicBlock(
            label="main.entry",
            terminator=Terminator(
                kind=TerminatorKind.JUMP, successors=(first,)
            ),
            instruction_count=self._rng.randint(
                *self._profile.block_instructions
            ),
        )
        cfg.add_block(entry)
        for index, callee in enumerate(level1):
            next_label = (
                labels[index + 1] if index + 1 < len(labels) else ret_label
            )
            cfg.add_block(
                BasicBlock(
                    label=labels[index],
                    terminator=Terminator(
                        kind=TerminatorKind.CALL,
                        callee=callee,
                        successors=(next_label,),
                    ),
                    instruction_count=self._rng.randint(
                        *self._profile.block_instructions
                    ),
                )
            )
        cfg.add_block(
            BasicBlock(
                label=ret_label,
                terminator=Terminator(kind=TerminatorKind.RETURN),
                instruction_count=1,
            )
        )
        return cfg


class _FunctionBuilder:
    """Builds one function's CFG from sampled constructs.

    Construction works backwards from a continuation label: a sequence of
    constructs is emitted last-to-first, each construct receiving the label
    of what follows it.
    """

    def __init__(
        self,
        plan: _FunctionPlan,
        profile: BenchmarkProfile,
        rng: DeterministicRng,
        depth_scale: float = 1.0,
    ) -> None:
        self._plan = plan
        self._profile = profile
        self._rng = rng
        self._depth_scale = depth_scale
        self._cfg = ControlFlowGraph(
            plan.name, entry_label=f"{plan.name}.entry"
        )
        self._counter = 0
        self._called: set[str] = set()
        # Deeper (leaf-ward) functions are smaller and less loopy, the way
        # real utility functions are; this keeps the dynamic call/return
        # fraction realistic despite loop amplification of branch records.
        self._construct_weights = [
            profile.w_if, profile.w_ifelse, profile.w_loop * depth_scale,
            profile.w_call if plan.callees else 0.0,
            profile.w_switch, profile.w_icall if plan.callees else 0.0,
            profile.w_straight,
        ]
        if not any(self._construct_weights):
            self._construct_weights[-1] = 1.0  # leaf of straight code

    def build(self) -> ControlFlowGraph:
        """Assemble the function: constructs in front of a RETURN block."""
        ret_label = self._new_label("ret")
        self._add_block(
            ret_label, Terminator(kind=TerminatorKind.RETURN), size=1
        )
        lo, hi = self._profile.constructs_per_function
        count = max(2, round(self._rng.randint(lo, hi) * self._depth_scale))
        cont = ret_label
        if self._plan.recursive:
            cont = self._emit_recursion(cont)
        body_entry = self._emit_sequence(count, cont, depth=0)
        # Guarantee every planned callee has at least one call site, so the
        # call graph's coverage promise holds at the block level too.
        for callee in self._plan.callees:
            if callee not in self._called:
                label = self._new_label("covcall")
                self._add_block(
                    label,
                    Terminator(
                        kind=TerminatorKind.CALL,
                        callee=callee,
                        successors=(body_entry,),
                    ),
                )
                self._called.add(callee)
                body_entry = label
        self._add_block(
            f"{self._plan.name}.entry",
            Terminator(kind=TerminatorKind.JUMP, successors=(body_entry,)),
        )
        return self._cfg

    # -- construct emission -------------------------------------------------

    def _emit_sequence(self, count: int, cont: str, depth: int) -> str:
        """Emit ``count`` constructs ending at ``cont``; return the entry."""
        label = cont
        for _ in range(count):
            label = self._emit_construct(label, depth)
        return label

    def _emit_construct(self, cont: str, depth: int) -> str:
        kind = self._rng.weighted_choice(
            _CONSTRUCTS, self._construct_weights
        )
        if depth >= 3:
            # Bound structural nesting. Calls, indirect calls and switches
            # don't nest (their sub-blocks are plain jumps), so they stay
            # available; everything else flattens to straight-line code.
            if kind not in ("call", "icall", "switch"):
                kind = "straight"
        elif depth >= 2 and kind in ("loop", "ifelse"):
            kind = "if"
        emit = getattr(self, f"_emit_{kind}")
        return emit(cont, depth)

    def _emit_if(self, cont: str, depth: int) -> str:
        then_entry = self._emit_sequence(
            self._rng.randint(1, 2), cont, depth + 1
        )
        label = self._new_label("if")
        self._add_block(
            label,
            Terminator(
                kind=TerminatorKind.COND_BRANCH,
                successors=(then_entry, cont),
                behavior=self._branch_behavior(),
            ),
        )
        return label

    def _emit_ifelse(self, cont: str, depth: int) -> str:
        then_entry = self._emit_sequence(
            self._rng.randint(1, 2), cont, depth + 1
        )
        else_entry = self._emit_sequence(
            self._rng.randint(1, 2), cont, depth + 1
        )
        label = self._new_label("ife")
        self._add_block(
            label,
            Terminator(
                kind=TerminatorKind.COND_BRANCH,
                successors=(then_entry, else_entry),
                behavior=self._branch_behavior(),
            ),
        )
        return label

    def _emit_loop(self, cont: str, depth: int) -> str:
        header = self._new_label("loop")
        body_entry = self._emit_sequence(
            self._rng.randint(1, 3), header, depth + 1
        )
        trips = self._rng.choice(self._profile.trip_count_choices)
        self._add_block(
            header,
            Terminator(
                kind=TerminatorKind.COND_BRANCH,
                successors=(body_entry, cont),
                behavior=LoopBehavior(trips),
            ),
        )
        return header

    def _emit_call(self, cont: str, depth: int) -> str:
        label = self._new_label("call")
        callee = self._rng.choice(self._plan.callees)
        self._called.add(callee)
        self._add_block(
            label,
            Terminator(
                kind=TerminatorKind.CALL,
                callee=callee,
                successors=(cont,),
            ),
        )
        return label

    def _emit_switch(self, cont: str, depth: int) -> str:
        lo, hi = self._profile.switch_arity
        arity = self._rng.randint(lo, hi)
        cases = []
        for index in range(arity):
            case_label = self._new_label(f"case{index}")
            self._add_block(
                case_label,
                Terminator(kind=TerminatorKind.JUMP, successors=(cont,)),
            )
            cases.append(case_label)
        label = self._new_label("switch")
        behavior = self._indirect_behavior(arity)
        self._add_block(
            label,
            Terminator(
                kind=TerminatorKind.INDIRECT_JUMP,
                successors=tuple(cases),
                behavior=behavior,
            ),
        )
        return label

    def _emit_icall(self, cont: str, depth: int) -> str:
        callees = self._plan.callees
        if len(callees) < 2:
            return self._emit_call(cont, depth)
        label = self._new_label("icall")
        self._called.update(callees)
        behavior = self._indirect_behavior(len(callees))
        self._add_block(
            label,
            Terminator(
                kind=TerminatorKind.INDIRECT_CALL,
                callees=callees,
                successors=(cont,),
                behavior=behavior,
            ),
        )
        return label

    def _emit_straight(self, cont: str, depth: int) -> str:
        label = self._new_label("str")
        self._add_block(
            label, Terminator(kind=TerminatorKind.JUMP, successors=(cont,))
        )
        return label

    def _emit_recursion(self, cont: str) -> str:
        """Guarded self-call: while depth allows, call ourselves again."""
        call_label = self._new_label("reccall")
        self._add_block(
            call_label,
            Terminator(
                kind=TerminatorKind.CALL,
                callee=self._plan.name,
                successors=(cont,),
            ),
        )
        guard = self._new_label("recguard")
        self._add_block(
            guard,
            Terminator(
                kind=TerminatorKind.COND_BRANCH,
                successors=(call_label, cont),
                behavior=DepthGuardChoice(
                    self._profile.recursion_depth,
                    self._profile.recursion_p,
                ),
            ),
        )
        return guard

    # -- helpers -------------------------------------------------------------

    def _branch_behavior(self) -> ChoiceBehavior:
        profile = self._profile
        kind = self._rng.weighted_choice(
            ("biased", "periodic", "history", "pathcorr"),
            (
                profile.w_biased,
                profile.w_periodic,
                profile.w_history,
                profile.w_pathcorr,
            ),
        )
        if kind == "biased":
            return BiasedChoice(self._rng.choice(profile.bias_choices))
        if kind == "periodic":
            return PeriodicChoice(self._rng.choice(profile.periodic_patterns))
        if kind == "pathcorr":
            return PathCorrelatedChoice(
                self._rng.choice(profile.pathcorr_windows),
                noise=profile.pathcorr_noise,
            )
        return HistoryParityChoice(
            self._rng.choice(profile.history_masks),
            noise=profile.history_noise,
        )

    def _indirect_behavior(self, n_choices: int) -> ChoiceBehavior:
        """Behaviour for switches / indirect calls: mostly path-correlated."""
        profile = self._profile
        if self._rng.uniform() < profile.switch_phase_fraction:
            return PhaseChoice(n_choices, noise=profile.switch_noise)
        return TaskWindowChoice(
            n_choices,
            window=self._rng.choice(profile.switch_window_choices),
            noise=profile.switch_noise,
        )

    def _new_label(self, stem: str) -> str:
        self._counter += 1
        return f"{self._plan.name}.{stem}{self._counter}"

    def _add_block(
        self, label: str, terminator: Terminator, size: int | None = None
    ) -> None:
        if size is None:
            size = self._rng.randint(*self._profile.block_instructions)
        # One 16-bit draw per block (a stable cost on the generation
        # stream) seeds both register masks: two registers defined, two
        # used, drawn from the 16 architectural registers.
        salt = self._rng.randint(0, 0xFFFF)
        self._cfg.add_block(
            BasicBlock(
                label=label,
                terminator=terminator,
                instruction_count=size,
                annotations={
                    "defs_mask": (1 << (salt & 15))
                    | (1 << ((salt >> 4) & 15)),
                    "uses_mask": (1 << ((salt >> 8) & 15))
                    | (1 << ((salt >> 12) & 15)),
                },
            )
        )
