"""Trace execution: run a compiled program and emit a task-level trace.

The executor interprets basic blocks, consulting each decision point's
behaviour model, and emits one :class:`repro.synth.trace.TaskTrace` record
every time control crosses a task boundary. It also runs the intra-task
bimodal predictor of §2.2 over internal conditional branches, recording
per-task-execution mispredict counts for the timing simulator.

The program never terminates on its own: when ``main`` returns, the executor
re-enters it (a driver loop), so traces of any length can be produced.
"""

from __future__ import annotations

from repro.compiler.compiled import CompiledProgram
from repro.cfg.basicblock import TerminatorKind
from repro.errors import SimulationError
from repro.synth.behavior import BehaviorContext
from repro.synth.trace import CF_TYPE_CODES, TaskTrace, TraceBuilder
from repro.isa.controlflow import ControlFlowType
from repro.utils.hashing import mix_hash, stable_hash
from repro.utils.rng import DeterministicRng

_JUMP, _COND, _CALL, _RETURN, _IJUMP, _ICALL = range(6)

_KIND_CODE = {
    TerminatorKind.JUMP: _JUMP,
    TerminatorKind.COND_BRANCH: _COND,
    TerminatorKind.CALL: _CALL,
    TerminatorKind.RETURN: _RETURN,
    TerminatorKind.INDIRECT_JUMP: _IJUMP,
    TerminatorKind.INDIRECT_CALL: _ICALL,
}

_CF_BRANCH = CF_TYPE_CODES[ControlFlowType.BRANCH]
_CF_CALL = CF_TYPE_CODES[ControlFlowType.CALL]
_CF_RETURN = CF_TYPE_CODES[ControlFlowType.RETURN]
_CF_IBRANCH = CF_TYPE_CODES[ControlFlowType.INDIRECT_BRANCH]
_CF_ICALL = CF_TYPE_CODES[ControlFlowType.INDIRECT_CALL]


class _FastBlock:
    """Flattened block representation for the interpreter's hot loop."""

    __slots__ = (
        "kind", "insns", "task_addr", "succ_labels", "succ_exit",
        "term_exit", "behavior", "callee_entries", "is_internal_branch",
        "label", "label_hash",
    )

    def __init__(self, kind, insns, task_addr, succ_labels, succ_exit,
                 term_exit, behavior, callee_entries, is_internal_branch,
                 label):
        self.kind = kind
        self.insns = insns
        self.task_addr = task_addr
        self.succ_labels = succ_labels
        self.succ_exit = succ_exit
        self.term_exit = term_exit
        self.behavior = behavior
        self.callee_entries = callee_entries
        self.is_internal_branch = is_internal_branch
        self.label = label
        self.label_hash = stable_hash(label)


class TraceExecutor:
    """Executes a :class:`CompiledProgram` to produce task traces."""

    def __init__(
        self,
        compiled: CompiledProgram,
        seed: int = 0,
        phase_period: int = 20_000,
        record_dynamic_arcs: bool = False,
    ) -> None:
        self._compiled = compiled
        self._seed = seed
        self._phase_period = phase_period
        self._record_dynamic_arcs = record_dynamic_arcs
        self._fast = self._flatten(compiled)

    @staticmethod
    def _flatten(compiled: CompiledProgram) -> dict[str, _FastBlock]:
        fast: dict[str, _FastBlock] = {}
        for label, block in compiled.blocks.items():
            terminator = block.terminator
            kind = _KIND_CODE[terminator.kind]
            if kind == _CALL:
                callee_entries = (
                    compiled.function_entry[terminator.callee],
                )
            elif kind == _ICALL:
                callee_entries = tuple(
                    compiled.function_entry[callee]
                    for callee in terminator.callees
                )
            else:
                callee_entries = ()
            fast[label] = _FastBlock(
                kind=kind,
                insns=block.instruction_count,
                task_addr=block.task_address,
                succ_labels=terminator.successors,
                succ_exit=block.successor_exit_index,
                term_exit=block.terminator_exit_index,
                behavior=terminator.behavior,
                callee_entries=callee_entries,
                is_internal_branch=block.is_internal_branch,
                label=label,
            )
        return fast

    def run(self, max_tasks: int) -> TaskTrace:
        """Execute until ``max_tasks`` task records have been emitted."""
        if max_tasks < 1:
            raise SimulationError("trace length must be >= 1")
        compiled = self._compiled
        fast = self._fast
        program = compiled.program
        ctx = BehaviorContext(
            rng=DeterministicRng(self._seed).fork("executor"),
            phase_period=self._phase_period,
        )
        builder = TraceBuilder(program_name=program.name)
        bimodal: dict[str, int] = {}
        tfg = program.tfg if self._record_dynamic_arcs else None

        main_entry_label = compiled.function_entry["main"]
        # Call stack entries: (return_label, saved_context_hash,
        # saved_loop_counters).
        stack: list[tuple[str, int, dict]] = []
        block = fast[main_entry_label]
        acc_insns = 0
        acc_branches = 0
        acc_misses = 0

        while len(builder) < max_tasks:
            acc_insns += block.insns
            kind = block.kind
            next_label: str
            exit_index: int | None = None
            cf_code = _CF_BRANCH
            next_task_addr = 0
            push_return: str | None = None

            if kind == _COND:
                choice = block.behavior.choose(ctx, block.label)
                taken = choice == 0
                ctx.note_branch_outcome(taken)
                exit_index = block.succ_exit[choice]
                if exit_index is None and block.is_internal_branch:
                    acc_branches += 1
                    counter = bimodal.get(block.label, 1)
                    if (counter >= 2) != taken:
                        acc_misses += 1
                    bimodal[block.label] = (
                        min(3, counter + 1) if taken else max(0, counter - 1)
                    )
                next_label = block.succ_labels[choice]
                next_task_addr = fast[next_label].task_addr
            elif kind == _JUMP:
                next_label = block.succ_labels[0]
                exit_index = block.succ_exit[0]
                next_task_addr = fast[next_label].task_addr
            elif kind == _CALL:
                exit_index = block.term_exit
                cf_code = _CF_CALL
                next_label = block.callee_entries[0]
                next_task_addr = fast[next_label].task_addr
                push_return = block.succ_labels[0]
            elif kind == _RETURN:
                exit_index = block.term_exit
                cf_code = _CF_RETURN
                if stack:
                    next_label, saved_hash, saved_counters = stack.pop()
                    ctx.context_hash = saved_hash
                    ctx.loop_counters = saved_counters
                    ctx.call_depth -= 1
                else:
                    # main returned: the driver re-enters it.
                    next_label = main_entry_label
                    ctx.context_hash = 0
                    ctx.loop_counters = {}
                next_task_addr = fast[next_label].task_addr
            elif kind == _IJUMP:
                choice = block.behavior.choose(ctx, block.label)
                exit_index = block.term_exit
                cf_code = _CF_IBRANCH
                next_label = block.succ_labels[choice]
                next_task_addr = fast[next_label].task_addr
            else:  # _ICALL
                choice = block.behavior.choose(ctx, block.label)
                exit_index = block.term_exit
                cf_code = _CF_ICALL
                next_label = block.callee_entries[choice]
                next_task_addr = fast[next_label].task_addr
                push_return = block.succ_labels[0]

            if push_return is not None:
                stack.append(
                    (push_return, ctx.context_hash, ctx.loop_counters)
                )
                ctx.context_hash = mix_hash(
                    ctx.context_hash, block.label_hash
                )
                ctx.loop_counters = {}
                ctx.call_depth += 1

            if exit_index is not None:
                ctx.note_task(block.task_addr)
                builder.append(
                    task_addr=block.task_addr,
                    exit_index=exit_index,
                    cf_type_code=cf_code,
                    next_addr=next_task_addr,
                    instructions=acc_insns,
                    internal_branches=acc_branches,
                    internal_mispredicts=acc_misses,
                )
                if tfg is not None:
                    tfg.record_dynamic_arc(block.task_addr, next_task_addr)
                acc_insns = 0
                acc_branches = 0
                acc_misses = 0
            elif next_task_addr != block.task_addr:
                raise SimulationError(
                    f"internal arc {block.label!r} -> {next_label!r} "
                    "crosses a task boundary"
                )
            block = fast[next_label]

        return builder.build()
