"""Workload validation: does a synthetic workload match its calibration?

Each benchmark profile targets the paper's Table 2 statistics (static task
count, distinct tasks seen) and the qualitative properties of Figures 3–4.
:func:`validate_workload` measures a workload against those targets and
returns a graded report, so profile drift (after generator changes) is
caught by tests rather than discovered as a mysteriously wrong figure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.synth.trace import CF_TYPE_CODES
from repro.synth.workloads import Workload
from repro.isa.controlflow import ControlFlowType

#: Relative tolerance for count targets (static tasks, distinct seen).
DEFAULT_TOLERANCE = 0.6


@dataclass(frozen=True)
class ValidationCheck:
    """One validated property.

    Attributes:
        name: What was checked.
        ok: Whether it passed.
        measured: The measured value.
        target: The calibration target (None for structural checks).
        detail: Human-readable explanation.
    """

    name: str
    ok: bool
    measured: float
    target: float | None
    detail: str


@dataclass(frozen=True)
class ValidationReport:
    """All checks for one workload."""

    benchmark: str
    checks: tuple[ValidationCheck, ...]

    @property
    def ok(self) -> bool:
        """True when every check passed."""
        return all(check.ok for check in self.checks)

    def failures(self) -> list[ValidationCheck]:
        """The checks that failed."""
        return [check for check in self.checks if not check.ok]

    def __str__(self) -> str:
        lines = [f"validation: {self.benchmark}"]
        for check in self.checks:
            mark = "ok " if check.ok else "FAIL"
            lines.append(f"  [{mark}] {check.name}: {check.detail}")
        return "\n".join(lines)


def _ratio_check(
    name: str, measured: float, target: float, tolerance: float
) -> ValidationCheck:
    if target == 0:
        ok = measured == 0
        detail = f"measured {measured}, target 0"
    else:
        ratio = measured / target
        ok = (1 - tolerance) <= ratio <= 1 / (1 - tolerance)
        detail = (
            f"measured {measured:.0f} vs target {target:.0f} "
            f"(ratio {ratio:.2f})"
        )
    return ValidationCheck(
        name=name, ok=ok, measured=measured, target=target, detail=detail
    )


def validate_workload(
    workload: Workload, tolerance: float = DEFAULT_TOLERANCE
) -> ValidationReport:
    """Check a workload against its profile's calibration targets.

    Structural checks always apply (trace chaining, exit legality); count
    checks compare against the paper's Table 2 within ``tolerance``
    (relative); mix checks assert the qualitative Figure 3/4 properties.
    """
    profile = workload.profile
    trace = workload.trace
    program = workload.compiled.program
    checks: list[ValidationCheck] = []

    # -- structural invariants ------------------------------------------
    chained = bool(
        np.array_equal(trace.next_addr[:-1], trace.task_addr[1:])
    )
    checks.append(
        ValidationCheck(
            name="trace chains",
            ok=chained,
            measured=float(chained),
            target=None,
            detail="every record's next_addr is the next record's task",
        )
    )
    addresses = np.fromiter(
        (task.address for task in program.tfg), dtype=np.uint32
    )
    known = bool(np.isin(trace.task_addr, addresses).all())
    checks.append(
        ValidationCheck(
            name="tasks known",
            ok=known,
            measured=float(known),
            target=None,
            detail="every traced task exists in the static program",
        )
    )

    # -- Table 2 count targets -------------------------------------------
    paper = profile.paper
    if paper.static_tasks:
        checks.append(
            _ratio_check(
                "static tasks",
                program.static_task_count,
                paper.static_tasks,
                tolerance,
            )
        )
    if paper.distinct_tasks_seen and len(trace) >= 100_000:
        checks.append(
            _ratio_check(
                "distinct tasks seen",
                trace.distinct_tasks_seen(),
                paper.distinct_tasks_seen,
                tolerance,
            )
        )

    # -- Figure 3: single-exit tasks dominate statics ----------------------
    histogram = program.exit_arity_histogram()
    total = sum(histogram.values())
    single_share = histogram.get(1, 0) / total if total else 0.0
    checks.append(
        ValidationCheck(
            name="single-exit majority",
            ok=single_share >= 0.4,
            measured=single_share,
            target=0.4,
            detail=f"{single_share:.0%} of static tasks have one exit",
        )
    )

    # -- Figure 4: calls balance returns ----------------------------------
    codes, counts = np.unique(trace.cf_type, return_counts=True)
    by_code = dict(zip(codes.tolist(), counts.tolist()))
    n = len(trace)
    calls = (
        by_code.get(CF_TYPE_CODES[ControlFlowType.CALL], 0)
        + by_code.get(CF_TYPE_CODES[ControlFlowType.INDIRECT_CALL], 0)
    ) / n
    returns = by_code.get(CF_TYPE_CODES[ControlFlowType.RETURN], 0) / n
    balanced = abs(calls - returns) <= 0.05
    checks.append(
        ValidationCheck(
            name="call/return balance",
            ok=balanced,
            measured=returns - calls,
            target=0.0,
            detail=f"calls {calls:.1%} vs returns {returns:.1%}",
        )
    )

    return ValidationReport(
        benchmark=profile.name, checks=tuple(checks)
    )
