"""CFG analyses used by the task partitioner: reachability and back edges."""

from __future__ import annotations

from repro.cfg.graph import ControlFlowGraph


def reachable_blocks(cfg: ControlFlowGraph) -> set[str]:
    """Labels of all blocks reachable from the function entry.

    Call terminators follow their intra-function return point (the callee is
    a different function and not part of this CFG).
    """
    seen: set[str] = set()
    stack = [cfg.entry_label]
    while stack:
        label = stack.pop()
        if label in seen:
            continue
        seen.add(label)
        for successor in cfg.intra_successors(label):
            if successor not in seen:
                stack.append(successor)
    return seen


def back_edges(cfg: ControlFlowGraph) -> set[tuple[str, str]]:
    """Intra-function arcs (source, target) that close a cycle.

    Computed with an iterative DFS from the entry; an arc to a block still on
    the DFS stack is a back edge. The partitioner uses these to recognise
    loops (so a small loop body can become a single self-looping task, like
    Task 3 in Figure 1 of the paper).
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {label: WHITE for label in cfg.labels()}
    edges: set[tuple[str, str]] = set()
    # Each stack entry is (label, iterator over successors).
    stack: list[tuple[str, list[str]]] = []
    color[cfg.entry_label] = GRAY
    stack.append((cfg.entry_label, list(cfg.intra_successors(cfg.entry_label))))
    while stack:
        label, successors = stack[-1]
        if successors:
            successor = successors.pop()
            if color[successor] == GRAY:
                edges.add((label, successor))
            elif color[successor] == WHITE:
                color[successor] = GRAY
                stack.append(
                    (successor, list(cfg.intra_successors(successor)))
                )
        else:
            color[label] = BLACK
            stack.pop()
    return edges
