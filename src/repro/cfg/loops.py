"""Natural-loop detection over function CFGs.

Used for workload analysis (how loopy is a generated benchmark?) and
available to partitioning heuristics. A *natural loop* is the set of blocks
that can reach a back edge's source without passing through its target
(the loop header).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.cfg.analysis import back_edges, reachable_blocks
from repro.cfg.graph import ControlFlowGraph


@dataclass(frozen=True)
class NaturalLoop:
    """One natural loop: its header and its body (header included)."""

    header: str
    body: frozenset[str]

    def __contains__(self, label: str) -> bool:
        return label in self.body

    @property
    def size(self) -> int:
        """Number of blocks in the loop."""
        return len(self.body)


def natural_loops(cfg: ControlFlowGraph) -> list[NaturalLoop]:
    """Find all natural loops, merging loops that share a header.

    Returns loops sorted by header label for determinism.
    """
    reachable = reachable_blocks(cfg)
    predecessors: dict[str, list[str]] = defaultdict(list)
    for label in reachable:
        for successor in cfg.intra_successors(label):
            if successor in reachable:
                predecessors[successor].append(label)

    bodies: dict[str, set[str]] = {}
    for source, header in back_edges(cfg):
        body = bodies.setdefault(header, {header})
        # Walk predecessors from the back edge's source up to the header.
        stack = [source]
        while stack:
            label = stack.pop()
            if label in body:
                continue
            body.add(label)
            stack.extend(predecessors[label])
    return [
        NaturalLoop(header=header, body=frozenset(body))
        for header, body in sorted(bodies.items())
    ]


def loop_nesting_depths(cfg: ControlFlowGraph) -> dict[str, int]:
    """Per-block loop nesting depth (0 = not inside any loop)."""
    depths = {label: 0 for label in cfg.labels()}
    for loop in natural_loops(cfg):
        for label in loop.body:
            depths[label] += 1
    return depths
