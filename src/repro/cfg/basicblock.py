"""Basic blocks and their terminators.

A block is a straight-line run of instructions ending in exactly one
terminator. Terminator kinds map onto the paper's inter-task control-flow
types (Table 1) when a terminator's arc crosses a task boundary:

=================  ======================================
TerminatorKind     Control-flow type when it exits a task
=================  ======================================
JUMP               BRANCH (unconditional)
COND_BRANCH        BRANCH (conditional, exit when taken out of the task)
CALL               CALL
RETURN             RETURN
INDIRECT_JUMP      INDIRECT_BRANCH
INDIRECT_CALL      INDIRECT_CALL
=================  ======================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import CFGError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.synth.behavior import ChoiceBehavior


class TerminatorKind(enum.Enum):
    """The kind of control transfer ending a basic block."""

    JUMP = "jump"
    COND_BRANCH = "cond_branch"
    CALL = "call"
    RETURN = "return"
    INDIRECT_JUMP = "indirect_jump"
    INDIRECT_CALL = "indirect_call"

    def __str__(self) -> str:
        return self.value


#: Terminator kinds that always end a task (their arcs must be task exits).
TASK_ENDING_KINDS = frozenset(
    {
        TerminatorKind.CALL,
        TerminatorKind.RETURN,
        TerminatorKind.INDIRECT_JUMP,
        TerminatorKind.INDIRECT_CALL,
    }
)


@dataclass
class Terminator:
    """A typed control transfer.

    The meaning of the fields depends on ``kind``:

    * ``JUMP``: ``successors = (target,)``.
    * ``COND_BRANCH``: ``successors = (taken, not_taken)``; ``behavior``
      decides which at run time.
    * ``CALL``: ``callee`` names the called function; ``successors =
      (return_point,)`` is the intra-function continuation.
    * ``RETURN``: no successors; the executor pops its call stack.
    * ``INDIRECT_JUMP``: ``successors`` lists the possible case targets;
      ``behavior`` selects one.
    * ``INDIRECT_CALL``: ``callees`` lists possible called functions;
      ``behavior`` selects one; ``successors = (return_point,)``.
    """

    kind: TerminatorKind
    successors: tuple[str, ...] = ()
    callee: str | None = None
    callees: tuple[str, ...] = ()
    behavior: "ChoiceBehavior | None" = None

    def __post_init__(self) -> None:
        kind = self.kind
        if kind is TerminatorKind.JUMP and len(self.successors) != 1:
            raise CFGError("JUMP needs exactly one successor")
        if kind is TerminatorKind.COND_BRANCH:
            if len(self.successors) != 2:
                raise CFGError("COND_BRANCH needs (taken, not_taken)")
            if self.behavior is None:
                raise CFGError("COND_BRANCH needs a behavior")
        if kind is TerminatorKind.CALL:
            if self.callee is None or len(self.successors) != 1:
                raise CFGError("CALL needs a callee and a return point")
        if kind is TerminatorKind.RETURN and self.successors:
            raise CFGError("RETURN has no intra-function successors")
        if kind is TerminatorKind.INDIRECT_JUMP:
            if len(self.successors) < 1 or self.behavior is None:
                raise CFGError("INDIRECT_JUMP needs targets and a behavior")
        if kind is TerminatorKind.INDIRECT_CALL:
            if not self.callees or len(self.successors) != 1:
                raise CFGError(
                    "INDIRECT_CALL needs candidate callees and a return point"
                )
            if self.behavior is None:
                raise CFGError("INDIRECT_CALL needs a behavior")


@dataclass
class BasicBlock:
    """A basic block: a label, an instruction count, and one terminator.

    ``instruction_count`` includes the terminator instruction.
    """

    label: str
    terminator: Terminator
    instruction_count: int = 4
    annotations: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.instruction_count < 1:
            raise CFGError(
                f"block {self.label!r} must contain at least 1 instruction"
            )

    @property
    def ends_task(self) -> bool:
        """True if this block's terminator always terminates a task."""
        return self.terminator.kind in TASK_ENDING_KINDS
