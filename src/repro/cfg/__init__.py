"""Control-flow-graph substrate.

Scalar-level program representation: functions made of basic blocks with
typed terminators. The Multiscalar "compiler" (:mod:`repro.compiler`)
partitions these CFGs into tasks. The synthetic workload generator
(:mod:`repro.synth`) produces these CFGs with attached runtime behaviours.
"""

from repro.cfg.basicblock import BasicBlock, Terminator, TerminatorKind
from repro.cfg.graph import ControlFlowGraph, FunctionRef, ProgramCFG
from repro.cfg.analysis import back_edges, reachable_blocks

__all__ = [
    "BasicBlock",
    "Terminator",
    "TerminatorKind",
    "ControlFlowGraph",
    "FunctionRef",
    "ProgramCFG",
    "back_edges",
    "reachable_blocks",
]
