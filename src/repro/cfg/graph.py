"""Per-function control-flow graphs and whole-program collections of them."""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.cfg.basicblock import BasicBlock, TerminatorKind
from repro.errors import CFGError


@dataclass(frozen=True)
class FunctionRef:
    """A reference to a function by name (used by call terminators)."""

    name: str


class ControlFlowGraph:
    """The CFG of a single function: blocks keyed by label, one entry."""

    def __init__(self, function_name: str, entry_label: str) -> None:
        self.function_name = function_name
        self.entry_label = entry_label
        self._blocks: dict[str, BasicBlock] = {}

    def add_block(self, block: BasicBlock) -> None:
        """Add a block; labels must be unique within the function."""
        if block.label in self._blocks:
            raise CFGError(
                f"duplicate block {block.label!r} in {self.function_name!r}"
            )
        self._blocks[block.label] = block

    def block(self, label: str) -> BasicBlock:
        """Return the block with the given label."""
        try:
            return self._blocks[label]
        except KeyError:
            raise CFGError(
                f"no block {label!r} in function {self.function_name!r}"
            ) from None

    def __contains__(self, label: str) -> bool:
        return label in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self._blocks.values())

    def labels(self) -> list[str]:
        """All block labels in insertion order."""
        return list(self._blocks)

    @property
    def entry(self) -> BasicBlock:
        """The function's entry block."""
        return self.block(self.entry_label)

    def intra_successors(self, label: str) -> tuple[str, ...]:
        """Labels of this block's successors *within the function*.

        For calls this is the return point; RETURN blocks have none.
        """
        return self.block(label).terminator.successors

    def predecessor_counts(self) -> dict[str, int]:
        """Number of intra-function predecessor arcs per block label."""
        counts = {label: 0 for label in self._blocks}
        for block in self:
            for successor in block.terminator.successors:
                if successor not in counts:
                    raise CFGError(
                        f"block {block.label!r} targets unknown block "
                        f"{successor!r} in {self.function_name!r}"
                    )
                counts[successor] += 1
        return counts

    def validate(self) -> None:
        """Check structural invariants: entry exists, arcs resolve, has return.

        Raises :class:`CFGError` on the first violation found.
        """
        if self.entry_label not in self._blocks:
            raise CFGError(
                f"function {self.function_name!r} has no entry block "
                f"{self.entry_label!r}"
            )
        self.predecessor_counts()  # raises on dangling arcs
        has_return = any(
            block.terminator.kind is TerminatorKind.RETURN for block in self
        )
        if not has_return:
            raise CFGError(
                f"function {self.function_name!r} has no RETURN block"
            )


class ProgramCFG:
    """All functions of a program, keyed by name, plus the main entry."""

    def __init__(self, main: str = "main") -> None:
        self.main = main
        self._functions: dict[str, ControlFlowGraph] = {}

    def add_function(self, cfg: ControlFlowGraph) -> None:
        """Add a function CFG; names must be unique."""
        if cfg.function_name in self._functions:
            raise CFGError(f"duplicate function {cfg.function_name!r}")
        self._functions[cfg.function_name] = cfg

    def function(self, name: str) -> ControlFlowGraph:
        """Return the CFG of the named function."""
        try:
            return self._functions[name]
        except KeyError:
            raise CFGError(f"no function named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def __len__(self) -> int:
        return len(self._functions)

    def functions(self) -> Iterable[ControlFlowGraph]:
        """All function CFGs in insertion order."""
        return self._functions.values()

    def validate(self) -> None:
        """Validate every function and every cross-function call target."""
        if self.main not in self._functions:
            raise CFGError(f"program has no main function {self.main!r}")
        for cfg in self.functions():
            cfg.validate()
            for block in cfg:
                terminator = block.terminator
                callees = []
                if terminator.callee is not None:
                    callees.append(terminator.callee)
                callees.extend(terminator.callees)
                for callee in callees:
                    if callee not in self._functions:
                        raise CFGError(
                            f"block {block.label!r} calls unknown function "
                            f"{callee!r}"
                        )
