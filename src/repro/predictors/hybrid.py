"""Tournament (hybrid) exit prediction.

Figure 7 shows no single history scheme wins everywhere: PATH dominates
except on sc, where per-task cyclic behaviour favours PER. A McFarling-style
tournament predictor [10] resolves this at run time: a chooser table of
2-bit counters, indexed by task address, tracks which component has been
more accurate *for this task* and selects it. This is a natural extension
the paper leaves open; the ``ext_hybrid`` experiment measures it.
"""

from __future__ import annotations

from repro.errors import PredictorConfigError
from repro.predictors.base import ExitPredictor
from repro.utils.bits import bit_mask

_ALIGN_SHIFT = 2
_CHOOSER_MAX = 3
_CHOOSER_INIT = 2  # weakly prefer the first component


class TournamentExitPredictor(ExitPredictor):
    """Selects between two exit predictors with a per-task chooser.

    The chooser counter saturates toward the component that has been
    correct when the two disagreed (agreeing outcomes teach it nothing,
    exactly as in McFarling's combining predictor).
    """

    def __init__(
        self,
        first: ExitPredictor,
        second: ExitPredictor,
        chooser_index_bits: int = 12,
    ) -> None:
        if chooser_index_bits < 1:
            raise PredictorConfigError("chooser needs >= 1 index bit")
        self._first = first
        self._second = second
        self._chooser_index_bits = chooser_index_bits
        self._chooser: dict[int, int] = {}
        self._pending: tuple[int, int] | None = None

    def _slot(self, task_addr: int) -> int:
        return (task_addr >> _ALIGN_SHIFT) & bit_mask(
            self._chooser_index_bits
        )

    def predict(self, task_addr: int, n_exits: int) -> int:
        first_prediction = self._first.predict(task_addr, n_exits)
        second_prediction = self._second.predict(task_addr, n_exits)
        self._pending = (first_prediction, second_prediction)
        counter = self._chooser.get(self._slot(task_addr), _CHOOSER_INIT)
        return (
            first_prediction if counter >= 2 else second_prediction
        )

    def update(self, task_addr: int, n_exits: int, actual_exit: int) -> None:
        if self._pending is not None and n_exits > 1:
            first_prediction, second_prediction = self._pending
            first_correct = first_prediction == actual_exit
            second_correct = second_prediction == actual_exit
            if first_correct != second_correct:
                slot = self._slot(task_addr)
                counter = self._chooser.get(slot, _CHOOSER_INIT)
                if first_correct:
                    counter = min(_CHOOSER_MAX, counter + 1)
                else:
                    counter = max(0, counter - 1)
                self._chooser[slot] = counter
        self._pending = None
        self._first.update(task_addr, n_exits, actual_exit)
        self._second.update(task_addr, n_exits, actual_exit)

    def states_touched(self) -> int:
        return (
            self._first.states_touched()
            + self._second.states_touched()
            + len(self._chooser)
        )

    def storage_bits(self) -> int:
        chooser_bits = (1 << self._chooser_index_bits) * 2
        return (
            self._first.storage_bits()
            + self._second.storage_bits()
            + chooser_bits
        )
