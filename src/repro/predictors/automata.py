"""Multi-way prediction automata (paper §5.1, Figure 6).

Scalar branch predictors use 2-bit saturating counters, but a Multiscalar
task has up to four exits, so predicting the taken exit is a multi-way
branching problem. The paper evaluates seven automata, which stratify into
three tiers:

* worst: last exit (LE);
* middle: 2-bit voting counters (MRU or random tie-break) and LEH-1;
* best: 3-bit voting counters (both tie-breaks) and LEH-2.

LEH-2 matches the 3-bit voting counters using fewer bits, so the paper (and
this library) adopts it as the default automaton.
"""

from __future__ import annotations

import abc
from collections.abc import Callable

import numpy as np

from repro.errors import PredictorConfigError
from repro.isa.controlflow import MAX_EXITS_PER_TASK
from repro.utils.rng import DeterministicRng


class MultiwayAutomaton(abc.ABC):
    """One PHT entry: predicts an exit index in 0..3 and learns outcomes."""

    @abc.abstractmethod
    def predict(self) -> int:
        """Return the currently predicted exit index."""

    @abc.abstractmethod
    def update(self, actual: int) -> None:
        """Train on the actual exit index."""

    @classmethod
    @abc.abstractmethod
    def bits_per_entry(cls_or_self) -> int:
        """Storage cost of one PHT entry, in bits."""

    def state_key(self) -> tuple | None:
        """Hashable snapshot of the automaton's state, or None.

        Two automata with equal keys must behave identically forever —
        the contract :func:`tabulate_automaton` relies on to enumerate
        the reachable state space. Return None when the state cannot be
        captured (e.g. it includes a shared random stream), which makes
        the automaton non-tabulatable.
        """
        return None


class LastExit(MultiwayAutomaton):
    """Predict whatever exit was taken last time this entry was used (LE).

    A degenerate voting counter with 1-bit counters; cheapest and least
    accurate of the seven automata.
    """

    __slots__ = ("_last",)

    def __init__(self) -> None:
        self._last = 0

    def predict(self) -> int:
        return self._last

    def update(self, actual: int) -> None:
        self._last = actual

    def state_key(self) -> tuple:
        return (self._last,)

    @classmethod
    def bits_per_entry(cls) -> int:
        return 2  # an exit number


class LastExitHysteresis(MultiwayAutomaton):
    """Last exit plus a small confidence counter (LEH).

    The counter increments on correct predictions and decrements on
    incorrect ones; the stored exit is replaced only when the counter is
    zero *and* the prediction was wrong — so a proven prediction survives
    a single anomalous outcome (1-bit) or two (2-bit).
    """

    __slots__ = ("_exit", "_confidence", "_max_confidence", "_bits")

    def __init__(self, hysteresis_bits: int = 2) -> None:
        if hysteresis_bits < 1:
            raise PredictorConfigError("hysteresis needs >= 1 bit")
        self._bits = hysteresis_bits
        self._exit = 0
        self._confidence = 0
        self._max_confidence = (1 << hysteresis_bits) - 1

    def predict(self) -> int:
        return self._exit

    def update(self, actual: int) -> None:
        if actual == self._exit:
            if self._confidence < self._max_confidence:
                self._confidence += 1
        elif self._confidence > 0:
            self._confidence -= 1
        else:
            self._exit = actual
            self._confidence = 0

    def state_key(self) -> tuple:
        return (self._exit, self._confidence)

    def bits_per_entry(self) -> int:
        return 2 + self._bits


class VotingCounters(MultiwayAutomaton):
    """One saturating counter per exit; the highest counter wins (VC).

    Ties are broken either toward the most-recently-used exit among the tied
    ones (``tie_break='mru'``, which costs extra storage) or randomly
    (``tie_break='random'``). On an outcome, the actual exit's counter
    increments and all others decrement.
    """

    __slots__ = ("_counters", "_bits", "_max", "_tie_break", "_rng", "_mru")

    def __init__(
        self,
        counter_bits: int = 2,
        tie_break: str = "mru",
        rng: DeterministicRng | None = None,
    ) -> None:
        if counter_bits < 1:
            raise PredictorConfigError("counters need >= 1 bit")
        if tie_break not in ("mru", "random"):
            raise PredictorConfigError(
                f"tie_break must be 'mru' or 'random', got {tie_break!r}"
            )
        if tie_break == "random" and rng is None:
            raise PredictorConfigError("random tie-break needs an rng")
        self._bits = counter_bits
        self._max = (1 << counter_bits) - 1
        self._counters = [0] * MAX_EXITS_PER_TASK
        self._tie_break = tie_break
        self._rng = rng
        self._mru = 0

    def predict(self) -> int:
        counters = self._counters
        best = max(counters)
        tied = [i for i, c in enumerate(counters) if c == best]
        if len(tied) == 1:
            return tied[0]
        if self._tie_break == "mru":
            return self._mru if self._mru in tied else tied[0]
        return self._rng.choice(tied)

    def update(self, actual: int) -> None:
        counters = self._counters
        for i in range(MAX_EXITS_PER_TASK):
            if i == actual:
                if counters[i] < self._max:
                    counters[i] += 1
            elif counters[i] > 0:
                counters[i] -= 1
        self._mru = actual

    def state_key(self) -> tuple | None:
        # The random tie-break draws from a stream shared across every
        # entry of the predictor, so a per-entry key cannot capture its
        # behaviour; only the MRU variant tabulates.
        if self._tie_break != "mru":
            return None
        return (*self._counters, self._mru)

    def bits_per_entry(self) -> int:
        mru_bits = 2 if self._tie_break == "mru" else 0
        return MAX_EXITS_PER_TASK * self._bits + mru_bits


#: The seven automata of Figure 6, keyed by the paper's labels.
AUTOMATON_SPECS = (
    "LE",
    "VC2-MRU",
    "VC2-RANDOM",
    "LEH-1",
    "VC3-MRU",
    "VC3-RANDOM",
    "LEH-2",
)


def make_automaton_factory(
    spec: str, rng: DeterministicRng | None = None
) -> Callable[[], MultiwayAutomaton]:
    """Return a zero-argument factory for the named automaton.

    ``rng`` is required for the random tie-break variants; all entries of a
    predictor share the stream, as hardware would share one LFSR.

    The hysteresis family generalises beyond the paper's two points: any
    ``LEH-<k>`` with ``k >= 1`` names a last-exit automaton with a k-bit
    confidence counter, which is the hysteresis axis of the design-space
    search (:mod:`repro.predictors.design_space`).
    """
    if spec == "LE":
        return LastExit
    if spec.startswith("LEH-"):
        try:
            hysteresis_bits = int(spec[4:])
        except ValueError:
            hysteresis_bits = 0
        if hysteresis_bits >= 1:
            return lambda: LastExitHysteresis(hysteresis_bits)
    if spec in ("VC2-MRU", "VC3-MRU"):
        bits = 2 if spec.startswith("VC2") else 3
        return lambda: VotingCounters(bits, tie_break="mru")
    if spec in ("VC2-RANDOM", "VC3-RANDOM"):
        if rng is None:
            rng = DeterministicRng(0).fork("vc-random")
        bits = 2 if spec.startswith("VC2") else 3
        return lambda: VotingCounters(bits, tie_break="random", rng=rng)
    raise PredictorConfigError(
        f"unknown automaton {spec!r}; known: {AUTOMATON_SPECS}"
    )


class AutomatonTable:
    """Exact tabular form of an automaton's reachable state space.

    ``transitions[s, x]`` is the next state from state ``s`` on training
    input ``x``; ``predictions[s]`` is what state ``s`` predicts. State 0
    is the freshly constructed automaton. Produced by
    :func:`tabulate_automaton` for the segmented FSM scans in
    :mod:`repro.utils.scan`.
    """

    __slots__ = ("transitions", "predictions")

    def __init__(self, transitions, predictions) -> None:
        self.transitions = transitions
        self.predictions = predictions

    @property
    def n_states(self) -> int:
        """Reachable states, including the initial one."""
        return len(self.predictions)


def tabulate_automaton(
    factory: Callable[[], MultiwayAutomaton],
    n_inputs: int,
    max_states: int = 64,
) -> AutomatonTable | None:
    """Enumerate an automaton's state machine by probing a live instance.

    Breadth-first search from the freshly constructed state: every
    reachable state is reproduced by replaying its discovery input
    sequence on a new instance, then probed with each input in
    ``range(n_inputs)``. Keying on :meth:`MultiwayAutomaton.state_key`
    (rather than modelling the update rule separately) makes the table
    bit-identical to the object by construction.

    Returns None when the automaton declines tabulation (``state_key() is
    None``) or the reachable space exceeds ``max_states`` — the callers
    then fall back to object-at-a-time replay.
    """
    if factory().state_key() is None:
        return None

    def replay(sequence: tuple[int, ...]) -> MultiwayAutomaton:
        automaton = factory()
        for value in sequence:
            automaton.update(value)
        return automaton

    recipes: list[tuple[int, ...]] = [()]
    ids: dict[tuple, int] = {factory().state_key(): 0}
    transitions: list[list[int]] = []
    predictions: list[int] = []
    cursor = 0
    while cursor < len(recipes):
        recipe = recipes[cursor]
        automaton = replay(recipe)
        predictions.append(automaton.predict())
        row = []
        for value in range(n_inputs):
            successor = replay(recipe + (value,))
            key = successor.state_key()
            state = ids.get(key)
            if state is None:
                if len(recipes) >= max_states:
                    return None
                state = ids[key] = len(recipes)
                recipes.append(recipe + (value,))
            row.append(state)
        transitions.append(row)
        cursor += 1
    return AutomatonTable(
        transitions=np.array(transitions, dtype=np.int8),
        predictions=np.array(predictions, dtype=np.int64),
    )
