"""Profile-guided static exit prediction: the do-nothing-dynamic baseline.

Before spending kilobytes of PHT, a compiler could simply profile the
program and write each task's most-frequent exit into its header as a hint
bit pair — static prediction in the Ball/Larus tradition. This module
implements that baseline: a profiling pass over a training prefix of the
trace, then fixed per-task predictions.

Its accuracy ceiling is exactly the per-task exit *bias*; every dynamic
scheme in the paper exists to beat it by exploiting history. The
``ext_static`` experiment measures the gap.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.errors import PredictorConfigError
from repro.predictors.base import ExitPredictor
from repro.synth.trace import TaskTrace
from repro.utils.memo import int64_column


class StaticHintExitPredictor(ExitPredictor):
    """Predicts each task's profiled most-frequent exit, forever.

    Build one with :meth:`profile_from_trace`. Tasks never seen during
    profiling predict exit 0 (the compiler's default hint).
    """

    def __init__(self, hints: dict[int, int]) -> None:
        for address, exit_index in hints.items():
            if exit_index < 0:
                raise PredictorConfigError(
                    f"hint for task {address:#x} is negative"
                )
        self._hints = dict(hints)

    @classmethod
    def profile_from_trace(
        cls, trace: TaskTrace, training_fraction: float = 0.5
    ) -> "StaticHintExitPredictor":
        """Profile the leading ``training_fraction`` of ``trace``.

        The returned predictor should then be evaluated on the *remaining*
        records (or a different run) to avoid testing on training data —
        the ``ext_static`` experiment does exactly that.
        """
        if not 0.0 < training_fraction <= 1.0:
            raise PredictorConfigError(
                "training fraction must be in (0, 1]"
            )
        n_train = max(1, int(len(trace) * training_fraction))
        counts: dict[int, Counter] = {}
        for addr, exit_index in zip(
            trace.task_addr[:n_train].tolist(),
            trace.exit_index[:n_train].tolist(),
        ):
            counts.setdefault(addr, Counter())[exit_index] += 1
        hints = {
            addr: counter.most_common(1)[0][0]
            for addr, counter in counts.items()
        }
        return cls(hints)

    @property
    def n_hints(self) -> int:
        """Number of tasks with a profiled hint."""
        return len(self._hints)

    def predict(self, task_addr: int, n_exits: int) -> int:
        hint = self._hints.get(task_addr, 0)
        return min(hint, n_exits - 1)

    def predict_column(
        self, task_addrs: np.ndarray, n_exits_col: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`predict` over whole trace columns.

        Static hints never adapt, so a batch of predictions is exact; the
        functional simulator uses this column instead of its per-step
        loop.
        """
        addrs = int64_column(task_addrs)
        if self._hints:
            keys = np.fromiter(
                self._hints.keys(), dtype=np.int64, count=len(self._hints)
            )
            vals = np.fromiter(
                self._hints.values(), dtype=np.int64, count=len(self._hints)
            )
            order = np.argsort(keys)
            keys, vals = keys[order], vals[order]
            pos = np.clip(
                np.searchsorted(keys, addrs), 0, len(keys) - 1
            )
            hints = np.where(keys[pos] == addrs, vals[pos], 0)
        else:
            hints = np.zeros(len(addrs), dtype=np.int64)
        return np.minimum(
            hints, int64_column(n_exits_col) - 1
        )

    def update(self, task_addr: int, n_exits: int, actual_exit: int) -> None:
        """Static prediction never adapts; hints are fixed at compile time."""

    def states_touched(self) -> int:
        return self.n_hints

    def storage_bits(self) -> int:
        """Hardware cost: two hint bits per header (charged per hint)."""
        return 2 * self.n_hints
