"""Confidence estimation for task predictions.

The same authors' companion work (Jacobson, Bennett, Sharma & Smith,
"Assigning Confidence to Conditional Branch Predictions", MICRO-29 1996)
attaches a *confidence estimator* to a predictor: a table of resetting
counters that count consecutive correct predictions per history context.
A prediction is high-confidence when its counter has reached a threshold.

In a Multiscalar machine this gates speculation depth: a low-confidence
task prediction is a good place to stop allocating processing units (a
mispredicted task squashes all younger work). The ``ext_confidence``
experiment measures the classic quality metrics:

* coverage — fraction of predictions flagged high-confidence;
* high-confidence accuracy;
* PVN (predictive value of a negative) — fraction of low-confidence
  predictions that indeed miss.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PredictorConfigError
from repro.predictors.base import ExitPredictor
from repro.predictors.folding import DolcSpec
from repro.synth.workloads import Workload
from repro.utils.scan import MAX_SCAN_STATES, segmented_fsm_scan
from repro.utils.memo import int64_column


class ResettingConfidenceEstimator:
    """A table of resetting counters indexed by the path-history hash.

    ``update`` saturates the counter on a correct prediction and clears it
    on a miss; ``is_high_confidence`` compares against the threshold. This
    is the MICRO-96 paper's best small estimator (resetting counters beat
    saturating ones because one miss voids accumulated trust).
    """

    def __init__(
        self,
        spec: DolcSpec,
        threshold: int = 4,
        counter_max: int = 15,
    ) -> None:
        if threshold < 1:
            raise PredictorConfigError("threshold must be >= 1")
        if counter_max < threshold:
            raise PredictorConfigError("counter_max must be >= threshold")
        self._spec = spec
        self._threshold = threshold
        self._counter_max = counter_max
        self._counters: dict[int, int] = {}
        self._path: list[int] = []

    @property
    def threshold(self) -> int:
        """Counter value at which a prediction counts as high-confidence."""
        return self._threshold

    def _slot(self, task_addr: int) -> int:
        return self._spec.index(task_addr, self._path)

    def is_high_confidence(self, task_addr: int) -> bool:
        """Query confidence for the upcoming prediction at this task."""
        return (
            self._counters.get(self._slot(task_addr), 0) >= self._threshold
        )

    def update(self, task_addr: int, correct: bool) -> None:
        """Train on the prediction outcome and advance the path register."""
        slot = self._slot(task_addr)
        if correct:
            counter = self._counters.get(slot, 0)
            if counter < self._counter_max:
                self._counters[slot] = counter + 1
        else:
            self._counters[slot] = 0
        if self._spec.depth:
            self._path.append(task_addr)
            if len(self._path) > self._spec.depth:
                del self._path[0]

    def storage_bits(self) -> int:
        """Full-capacity cost: one counter per table entry."""
        bits_per_counter = max(1, self._counter_max.bit_length())
        return self._spec.table_entries * bits_per_counter

    def batch_gate_columns(
        self, task_addrs: np.ndarray, correct: np.ndarray
    ) -> np.ndarray | None:
        """Per-step high-confidence flags for a whole prediction run.

        ``correct[i]`` is the outcome fed to ``update`` at step ``i``;
        the returned boolean column holds what ``is_high_confidence``
        would have answered just before that update. The counter table is
        a family of tiny reset/saturate automata, so the whole run is one
        segmented FSM scan over the path-indexed slots. Only valid for a
        freshly constructed estimator; the object is not mutated. Returns
        None when the counter range is too wide to tabulate.
        """
        n_states = self._counter_max + 1
        if n_states > MAX_SCAN_STATES:
            return None
        addrs = int64_column(task_addrs)
        slots = self._spec.index_column(addrs)
        transitions = np.empty((n_states, 2), dtype=np.int8)
        transitions[:, 0] = 0  # a miss resets the counter
        transitions[:, 1] = np.minimum(
            np.arange(n_states) + 1, self._counter_max
        )
        pre_counts = segmented_fsm_scan(
            slots, int64_column(correct), transitions
        )
        return pre_counts >= self._threshold


@dataclass(frozen=True)
class ConfidenceStats:
    """Quality metrics of a confidence estimator over one run."""

    trials: int
    high_confidence: int
    high_correct: int
    low_confidence: int
    low_incorrect: int

    @property
    def coverage(self) -> float:
        """Fraction of predictions flagged high-confidence."""
        return self.high_confidence / self.trials if self.trials else 0.0

    @property
    def high_confidence_accuracy(self) -> float:
        """Accuracy among high-confidence predictions (PVP)."""
        if not self.high_confidence:
            return 0.0
        return self.high_correct / self.high_confidence

    @property
    def pvn(self) -> float:
        """Fraction of low-confidence predictions that actually missed."""
        if not self.low_confidence:
            return 0.0
        return self.low_incorrect / self.low_confidence


def simulate_confidence(
    workload: Workload,
    predictor: ExitPredictor,
    estimator: ResettingConfidenceEstimator,
    limit: int | None = None,
    vectorize: bool = True,
) -> ConfidenceStats:
    """Run predictor + estimator over a trace; return quality metrics.

    When both the predictor and the estimator advertise exact batched
    forms, the whole run is evaluated as numpy columns (bit-identical
    statistics); ``vectorize=False`` forces the step loop.
    """
    trace = workload.trace if limit is None else workload.trace.head(limit)
    if vectorize:
        stats = _batched_confidence_stats(workload, predictor, estimator, trace)
        if stats is not None:
            return stats
    n_exits_of = workload.exit_counts()
    task_addrs = trace.task_addr.tolist()
    actual_exits = trace.exit_index.tolist()

    trials = 0
    high = 0
    high_correct = 0
    low = 0
    low_incorrect = 0
    for addr, actual in zip(task_addrs, actual_exits):
        n_exits = n_exits_of[addr]
        predicted = predictor.predict(addr, n_exits)
        confident = estimator.is_high_confidence(addr)
        correct = predicted == actual
        trials += 1
        if confident:
            high += 1
            if correct:
                high_correct += 1
        else:
            low += 1
            if not correct:
                low_incorrect += 1
        estimator.update(addr, correct)
        predictor.update(addr, n_exits, actual)
    return ConfidenceStats(
        trials=trials,
        high_confidence=high,
        high_correct=high_correct,
        low_confidence=low,
        low_incorrect=low_incorrect,
    )


def _batched_confidence_stats(
    workload: Workload,
    predictor: ExitPredictor,
    estimator: ResettingConfidenceEstimator,
    trace,
) -> ConfidenceStats | None:
    """Column-wise confidence run, or None without exact batched forms."""
    # Imported here: the batched drivers live in the simulation layer,
    # which depends on this package — not the other way around.
    from repro.sim.functional import (
        batched_exit_prediction_column,
        exit_count_column,
    )

    n_exits_col = exit_count_column(workload, trace.task_addr)
    predicted = batched_exit_prediction_column(
        predictor, trace.task_addr, trace.exit_index, n_exits_col
    )
    if predicted is None:
        return None
    correct = predicted == int64_column(trace.exit_index)
    confident = estimator.batch_gate_columns(trace.task_addr, correct)
    if confident is None:
        return None
    trials = len(correct)
    high = int(confident.sum())
    high_correct = int((confident & correct).sum())
    low_incorrect = int((~confident & ~correct).sum())
    return ConfidenceStats(
        trials=trials,
        high_confidence=high,
        high_correct=high_correct,
        low_confidence=trials - high,
        low_incorrect=low_incorrect,
    )
