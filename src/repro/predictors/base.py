"""Predictor interfaces shared by the simulators.

Two levels of prediction exist, matching the paper:

* :class:`ExitPredictor` — given the current task, predict which of its (up
  to four) header exits will be taken. Drives Figures 6, 7, 10, 11.
* :class:`NextTaskPredictor` — predict the start *address* of the next task
  (exit choice plus target resolution through header / RAS / CTTB, or the
  headerless CTTB-only scheme). Drives Table 3 and the timing simulator.

Both follow the paper's functional-simulation methodology (§3.1): the
simulator calls ``predict`` then immediately ``update`` with the actual
outcome — updates are not delayed, and history repair after a mispredict is
perfect (history always reflects the actual path).
"""

from __future__ import annotations

import abc


class ExitPredictor(abc.ABC):
    """Predicts the header exit index taken by the current task."""

    @abc.abstractmethod
    def predict(self, task_addr: int, n_exits: int) -> int:
        """Return the predicted exit index, in ``range(n_exits)``."""

    @abc.abstractmethod
    def update(self, task_addr: int, n_exits: int, actual_exit: int) -> None:
        """Record the actual outcome and advance any history state.

        Called exactly once after each ``predict`` with the same task.
        """

    def states_touched(self) -> int:
        """Number of distinct predictor states (PHT entries / history keys)
        exercised so far — the quantity plotted in Figure 11."""
        return 0

    def storage_bits(self) -> int:
        """Hardware storage this configuration implies, in bits.

        Ideal (unbounded) predictors return 0, meaning "not a hardware
        budget"; finite predictors report their table sizes.
        """
        return 0


class NextTaskPredictor(abc.ABC):
    """Predicts the start address of the next task."""

    @abc.abstractmethod
    def predict(self, task_addr: int) -> int:
        """Return the predicted next-task start address."""

    @abc.abstractmethod
    def update(
        self,
        task_addr: int,
        actual_exit: int,
        actual_cf_code: int,
        actual_next_addr: int,
    ) -> None:
        """Record the actual exit index, control-flow type code and target.

        ``actual_cf_code`` uses :data:`repro.synth.trace.CF_TYPE_CODES`.
        Called exactly once after each ``predict`` with the same task.
        """

    def storage_bits(self) -> int:
        """Total hardware storage of all component structures, in bits."""
        return 0
