"""Composed next-task predictors (paper §5.3, §5.4, §6.4.2; Table 3).

:class:`HeaderTaskPredictor` is the paper's full mechanism: an exit
predictor chooses one of the header's exits, then the target is resolved by
exit type — header target for BRANCH/CALL, return address stack for RETURN,
correlated task target buffer for the indirect types. Call-type exits push
their header return address onto the RAS.

:class:`CttbOnlyTaskPredictor` is the headerless alternative of §5.4: the
whole next-task address comes from one correlated target buffer, every exit
type competing for its entries and no RAS possible — cheaper to sequence,
4–54% worse at 4x the storage (Table 3).

:class:`PerfectTaskPredictor` replays the trace: the upper bound of Table 4.
"""

from __future__ import annotations

from repro.errors import PredictorConfigError, SimulationError
from repro.isa.controlflow import ControlFlowType
from repro.isa.program import MultiscalarProgram
from repro.predictors.base import ExitPredictor, NextTaskPredictor
from repro.predictors.ras import ReturnAddressStack
from repro.predictors.ttb import CorrelatedTaskTargetBuffer
from repro.synth.trace import CF_TYPE_CODES, TaskTrace

_CF_RETURN = CF_TYPE_CODES[ControlFlowType.RETURN]
_CF_CALL = CF_TYPE_CODES[ControlFlowType.CALL]
_CF_ICALL = CF_TYPE_CODES[ControlFlowType.INDIRECT_CALL]
_CF_IBRANCH = CF_TYPE_CODES[ControlFlowType.INDIRECT_BRANCH]

#: Sentinel predicted address when no structure can supply a target.
NO_PREDICTION = 0


class _TaskInfo:
    """Flattened per-task header facts for fast lookup."""

    __slots__ = ("n_exits", "cf_codes", "targets", "return_addrs")

    def __init__(self, n_exits, cf_codes, targets, return_addrs):
        self.n_exits = n_exits
        self.cf_codes = cf_codes
        self.targets = targets
        self.return_addrs = return_addrs


def _build_task_info(program: MultiscalarProgram) -> dict[int, _TaskInfo]:
    info: dict[int, _TaskInfo] = {}
    for task in program.tfg:
        exits = task.header.exits
        info[task.address] = _TaskInfo(
            n_exits=len(exits),
            cf_codes=tuple(CF_TYPE_CODES[e.cf_type] for e in exits),
            targets=tuple(e.target for e in exits),
            return_addrs=tuple(e.return_address for e in exits),
        )
    return info


class HeaderTaskPredictor(NextTaskPredictor):
    """Exit predictor + header targets + RAS + CTTB (the paper's design)."""

    def __init__(
        self,
        program: MultiscalarProgram,
        exit_predictor: ExitPredictor,
        cttb: CorrelatedTaskTargetBuffer,
        ras: ReturnAddressStack | None = None,
    ) -> None:
        self._info = _build_task_info(program)
        self._exit_predictor = exit_predictor
        self._cttb = cttb
        self._ras = ras if ras is not None else ReturnAddressStack(depth=32)
        self._last_predicted_exit: int | None = None

    @property
    def exit_predictor(self) -> ExitPredictor:
        """The exit-choice component."""
        return self._exit_predictor

    def _task(self, task_addr: int) -> _TaskInfo:
        try:
            return self._info[task_addr]
        except KeyError:
            raise SimulationError(
                f"no task at {task_addr:#x} in the predictor's program"
            ) from None

    def predict(self, task_addr: int) -> int:
        task = self._task(task_addr)
        exit_index = self._exit_predictor.predict(task_addr, task.n_exits)
        self._last_predicted_exit = exit_index
        cf_code = task.cf_codes[exit_index]
        if cf_code == _CF_RETURN:
            predicted = self._ras.peek()
        elif cf_code in (_CF_IBRANCH, _CF_ICALL):
            predicted = self._cttb.predict(task_addr)
        else:  # BRANCH / CALL: the compiler put the target in the header
            predicted = task.targets[exit_index]
        return predicted if predicted is not None else NO_PREDICTION

    @property
    def last_predicted_exit(self) -> int | None:
        """Exit index chosen by the most recent ``predict`` call."""
        return self._last_predicted_exit

    def update(
        self,
        task_addr: int,
        actual_exit: int,
        actual_cf_code: int,
        actual_next_addr: int,
    ) -> None:
        task = self._task(task_addr)
        self._exit_predictor.update(task_addr, task.n_exits, actual_exit)
        if actual_cf_code in (_CF_IBRANCH, _CF_ICALL):
            self._cttb.update(task_addr, actual_next_addr)
        self._cttb.observe_step(task_addr)
        # RAS tracks the actual (committed) call/return stream; this is the
        # perfect-repair idealisation of §3.1.
        if actual_cf_code == _CF_RETURN:
            self._ras.pop()
        elif actual_cf_code in (_CF_CALL, _CF_ICALL):
            return_addr = task.return_addrs[actual_exit]
            if return_addr is None:
                raise SimulationError(
                    f"call exit {actual_exit} of task {task_addr:#x} "
                    "has no return address in its header"
                )
            self._ras.push(return_addr)

    def storage_bits(self) -> int:
        return (
            self._exit_predictor.storage_bits()
            + self._cttb.storage_bits()
            + self._ras.storage_bits()
        )


class CttbOnlyTaskPredictor(NextTaskPredictor):
    """Headerless prediction: the CTTB alone supplies the next address.

    Every task's next address is predicted from (and trained into) one
    path-indexed buffer, regardless of exit type. Return addresses can only
    be learned by path correlation — no RAS is possible, which is the
    scheme's main accuracy cost (§5.4).
    """

    def __init__(self, cttb: CorrelatedTaskTargetBuffer) -> None:
        self._cttb = cttb

    def predict(self, task_addr: int) -> int:
        predicted = self._cttb.predict(task_addr)
        return predicted if predicted is not None else NO_PREDICTION

    def update(
        self,
        task_addr: int,
        actual_exit: int,
        actual_cf_code: int,
        actual_next_addr: int,
    ) -> None:
        self._cttb.update(task_addr, actual_next_addr)
        self._cttb.observe_step(task_addr)

    def storage_bits(self) -> int:
        return self._cttb.storage_bits()


class PerfectTaskPredictor(NextTaskPredictor):
    """Oracle predictor: replays the trace's actual successors (Table 4)."""

    def __init__(self, trace: TaskTrace) -> None:
        self._next_addr = trace.next_addr
        self._task_addr = trace.task_addr
        self._cursor = 0

    def predict(self, task_addr: int) -> int:
        if self._cursor >= len(self._next_addr):
            raise SimulationError("perfect predictor ran past its trace")
        if int(self._task_addr[self._cursor]) != task_addr:
            raise PredictorConfigError(
                "perfect predictor queried out of trace order"
            )
        return int(self._next_addr[self._cursor])

    def update(
        self,
        task_addr: int,
        actual_exit: int,
        actual_cf_code: int,
        actual_next_addr: int,
    ) -> None:
        self._cursor += 1

    def storage_bits(self) -> int:
        return 0
