"""Composed next-task predictors (paper §5.3, §5.4, §6.4.2; Table 3).

:class:`HeaderTaskPredictor` is the paper's full mechanism: an exit
predictor chooses one of the header's exits, then the target is resolved by
exit type — header target for BRANCH/CALL, return address stack for RETURN,
correlated task target buffer for the indirect types. Call-type exits push
their header return address onto the RAS.

:class:`CttbOnlyTaskPredictor` is the headerless alternative of §5.4: the
whole next-task address comes from one correlated target buffer, every exit
type competing for its entries and no RAS possible — cheaper to sequence,
4–54% worse at 4x the storage (Table 3).

:class:`PerfectTaskPredictor` replays the trace: the upper bound of Table 4.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PredictorConfigError, SimulationError
from repro.isa.controlflow import ControlFlowType
from repro.isa.program import MultiscalarProgram
from repro.predictors.base import ExitPredictor, NextTaskPredictor
from repro.predictors.ras import ReturnAddressStack
from repro.predictors.ttb import CorrelatedTaskTargetBuffer
from repro.synth.trace import CF_TYPE_CODES, TaskTrace
from repro.utils.memo import DerivedColumnCache, int64_column
from repro.utils.scan import stable_argsort

#: Columns derived from (trace, program) pairs that every scheme in a
#: sweep re-derives identically: header tables, the actual call/return
#: stack timeline, target-buffer entry timelines.
_DERIVED = DerivedColumnCache()

_CF_RETURN = CF_TYPE_CODES[ControlFlowType.RETURN]
_CF_CALL = CF_TYPE_CODES[ControlFlowType.CALL]
_CF_ICALL = CF_TYPE_CODES[ControlFlowType.INDIRECT_CALL]
_CF_IBRANCH = CF_TYPE_CODES[ControlFlowType.INDIRECT_BRANCH]

#: Hysteresis bound of a target-buffer entry (mirrors ``ttb._COUNTER_MAX``).
_TARGET_COUNTER_MAX = 3

#: Sentinel predicted address when no structure can supply a target.
NO_PREDICTION = 0


def _cttb_pretarget_column(
    slot_ids: np.ndarray,
    writes: np.ndarray,
    actual_targets: np.ndarray,
) -> np.ndarray:
    """Per-step target the buffer would predict, before that step trains.

    The training stream (``writes`` rows, in trace order) is replayed
    once through the hysteresis rule, recording each entry's stored
    target after every write; a grouped forward-fill then assigns every
    step the last value written to its slot strictly earlier — exactly
    what a read at that step would observe, for *any* read mask. Rows
    whose slot was never written resolve to :data:`NO_PREDICTION`.
    """
    n = len(slot_ids)
    write_rows = np.flatnonzero(writes)
    target_after = np.zeros(n, dtype=np.int64)
    target_of: dict[int, int] = {}
    counter_of: dict[int, int] = {}
    stored_targets: list[int] = []
    record = stored_targets.append
    for slot, actual in zip(
        slot_ids[write_rows].tolist(),
        actual_targets[write_rows].tolist(),
    ):
        stored = target_of.get(slot)
        if stored is None:
            target_of[slot] = actual
            counter_of[slot] = 1
        elif actual == stored:
            if counter_of[slot] < _TARGET_COUNTER_MAX:
                counter_of[slot] += 1
        elif counter_of[slot] > 0:
            counter_of[slot] -= 1
        else:
            target_of[slot] = actual
            counter_of[slot] = 1
        record(target_of[slot])
    target_after[write_rows] = stored_targets

    # Grouped forward-fill: sort by slot (stable, so trace order holds
    # within a slot), encode (segment, write position + 1) so one running
    # maximum finds the latest earlier write without crossing segments.
    order = stable_argsort(slot_ids)
    sorted_slots = slot_ids[order]
    starts = np.empty(n, dtype=bool)
    starts[0] = True
    starts[1:] = sorted_slots[1:] != sorted_slots[:-1]
    segment = np.cumsum(starts, dtype=np.int64) - 1
    stride = np.int64(n + 1)
    write_pos = np.where(
        writes[order], np.arange(1, n + 1, dtype=np.int64), 0
    )
    run = np.maximum.accumulate(segment * stride + write_pos)
    prev = np.empty(n, dtype=np.int64)
    prev[0] = -1
    prev[1:] = run[:-1]
    last_write = prev - segment * stride  # 1-based, <= 0 when none
    source = order[np.maximum(last_write, 1) - 1]
    pre_sorted = np.where(
        last_write >= 1, target_after[source], NO_PREDICTION
    )
    pre = np.empty(n, dtype=np.int64)
    pre[order] = pre_sorted
    return pre


def _ras_timeline(
    cf_codes: np.ndarray,
    return_col: np.ndarray,
    depth: int,
    addrs: np.ndarray,
    actual_exits: np.ndarray,
) -> np.ndarray:
    """Top of the return-address stack just before every step.

    Replays the *actual* call/return stream (scheme-independent: the RAS
    trains on committed control flow) through an inlined circular stack,
    recording the stack top after each event; a cumulative-count gather
    expands that to a per-step column. ``addrs`` / ``actual_exits`` only
    feed the error message for a call exit with no return address.
    """
    writes = (
        (cf_codes == _CF_RETURN)
        | (cf_codes == _CF_CALL)
        | (cf_codes == _CF_ICALL)
    )
    write_rows = np.flatnonzero(writes)
    top_values: list[int] = [NO_PREDICTION]
    record = top_values.append
    entries = [0] * depth
    top = 0
    count = 0
    is_return = _CF_RETURN
    for row, cf_code, return_addr in zip(
        write_rows.tolist(),
        cf_codes[write_rows].tolist(),
        return_col[write_rows].tolist(),
    ):
        if cf_code == is_return:
            if count:
                top = top - 1 if top else depth - 1
                count -= 1
        else:
            if return_addr < 0:
                raise SimulationError(
                    f"call exit {int(actual_exits[row])} of task "
                    f"{int(addrs[row]):#x} has no return address "
                    "in its header"
                )
            entries[top] = return_addr
            top += 1
            if top == depth:
                top = 0
            if count < depth:
                count += 1
        record(entries[top - 1] if count else NO_PREDICTION)
    tops = np.array(top_values, dtype=np.int64)
    events_before = np.cumsum(writes, dtype=np.int64) - writes
    return tops[events_before]


class _TaskInfo:
    """Flattened per-task header facts for fast lookup."""

    __slots__ = ("n_exits", "cf_codes", "targets", "return_addrs")

    def __init__(self, n_exits, cf_codes, targets, return_addrs):
        self.n_exits = n_exits
        self.cf_codes = cf_codes
        self.targets = targets
        self.return_addrs = return_addrs


def _build_task_info(program: MultiscalarProgram) -> dict[int, _TaskInfo]:
    info: dict[int, _TaskInfo] = {}
    for task in program.tfg:
        exits = task.header.exits
        info[task.address] = _TaskInfo(
            n_exits=len(exits),
            cf_codes=tuple(CF_TYPE_CODES[e.cf_type] for e in exits),
            targets=tuple(e.target for e in exits),
            return_addrs=tuple(e.return_address for e in exits),
        )
    return info


class _TaskTable:
    """Header facts as 2-D columns, for batched address resolution.

    Row order is sorted task address, so trace addresses map to rows with
    one ``searchsorted``. Absent targets / return addresses (exits whose
    type carries none) are stored as ``NO_PREDICTION`` / ``-1``. Built
    straight from the program — the scalar path's per-task dict is never
    needed when only batched runs happen.
    """

    __slots__ = ("addrs", "cf_codes", "targets", "return_addrs")

    def __init__(self, program: MultiscalarProgram) -> None:
        tasks = sorted(program.tfg, key=lambda task: task.address)
        self.addrs = np.array(
            [task.address for task in tasks], dtype=np.int64
        )
        # One flat pass over every exit, scattered into the 2-D columns
        # with a single fancy-indexed store per column — much cheaper
        # than building a padded row list per task.
        flat = [e for task in tasks for e in task.header.exits]
        n_flat = len(flat)
        lengths = np.fromiter(
            (len(task.header.exits) for task in tasks),
            dtype=np.int64,
            count=len(tasks),
        )
        max_exits = int(lengths.max()) if len(tasks) else 1
        rows = np.repeat(np.arange(len(tasks), dtype=np.int64), lengths)
        row_starts = np.cumsum(lengths) - lengths
        cols = np.arange(n_flat, dtype=np.int64) - row_starts[rows]
        codes = CF_TYPE_CODES
        shape = (len(self.addrs), max_exits)
        self.cf_codes = np.zeros(shape, dtype=np.int64)
        self.cf_codes[rows, cols] = np.fromiter(
            (codes[e.cf_type] for e in flat), dtype=np.int64, count=n_flat
        )
        self.targets = np.full(shape, NO_PREDICTION, dtype=np.int64)
        self.targets[rows, cols] = np.fromiter(
            (
                NO_PREDICTION if e.target is None else e.target
                for e in flat
            ),
            dtype=np.int64,
            count=n_flat,
        )
        self.return_addrs = np.full(shape, -1, dtype=np.int64)
        self.return_addrs[rows, cols] = np.fromiter(
            (
                -1 if e.return_address is None else e.return_address
                for e in flat
            ),
            dtype=np.int64,
            count=n_flat,
        )

    def rows_of(self, task_addrs: np.ndarray) -> np.ndarray:
        """Table row of each trace step; raises on unknown addresses."""
        rows = np.searchsorted(self.addrs, task_addrs)
        rows = np.minimum(rows, len(self.addrs) - 1)
        bad = np.flatnonzero(self.addrs[rows] != task_addrs)
        if bad.size:
            raise SimulationError(
                f"no task at {int(task_addrs[bad[0]]):#x} in the "
                "predictor's program"
            )
        return rows


class HeaderTaskPredictor(NextTaskPredictor):
    """Exit predictor + header targets + RAS + CTTB (the paper's design)."""

    def __init__(
        self,
        program: MultiscalarProgram,
        exit_predictor: ExitPredictor,
        cttb: CorrelatedTaskTargetBuffer,
        ras: ReturnAddressStack | None = None,
    ) -> None:
        self._program = program
        self._info_cache: dict[int, _TaskInfo] | None = None
        self._exit_predictor = exit_predictor
        self._cttb = cttb
        self._ras = ras if ras is not None else ReturnAddressStack(depth=32)
        self._last_predicted_exit: int | None = None

    @property
    def exit_predictor(self) -> ExitPredictor:
        """The exit-choice component."""
        return self._exit_predictor

    @property
    def _info(self) -> dict[int, _TaskInfo]:
        # Built lazily: batched runs resolve headers through _TaskTable
        # columns and never need the per-task dict of the stepped path.
        info = self._info_cache
        if info is None:
            program = self._program
            info = _DERIVED.get(
                (program,), "task-info", lambda: _build_task_info(program)
            )
            self._info_cache = info
        return info

    def _task(self, task_addr: int) -> _TaskInfo:
        try:
            return self._info[task_addr]
        except KeyError:
            raise SimulationError(
                f"no task at {task_addr:#x} in the predictor's program"
            ) from None

    def predict(self, task_addr: int) -> int:
        task = self._task(task_addr)
        exit_index = self._exit_predictor.predict(task_addr, task.n_exits)
        self._last_predicted_exit = exit_index
        cf_code = task.cf_codes[exit_index]
        if cf_code == _CF_RETURN:
            predicted = self._ras.peek()
        elif cf_code in (_CF_IBRANCH, _CF_ICALL):
            predicted = self._cttb.predict(task_addr)
        else:  # BRANCH / CALL: the compiler put the target in the header
            predicted = task.targets[exit_index]
        return predicted if predicted is not None else NO_PREDICTION

    @property
    def last_predicted_exit(self) -> int | None:
        """Exit index chosen by the most recent ``predict`` call."""
        return self._last_predicted_exit

    def update(
        self,
        task_addr: int,
        actual_exit: int,
        actual_cf_code: int,
        actual_next_addr: int,
    ) -> None:
        task = self._task(task_addr)
        self._exit_predictor.update(task_addr, task.n_exits, actual_exit)
        if actual_cf_code in (_CF_IBRANCH, _CF_ICALL):
            self._cttb.update(task_addr, actual_next_addr)
        self._cttb.observe_step(task_addr)
        # RAS tracks the actual (committed) call/return stream; this is the
        # perfect-repair idealisation of §3.1.
        if actual_cf_code == _CF_RETURN:
            self._ras.pop()
        elif actual_cf_code in (_CF_CALL, _CF_ICALL):
            return_addr = task.return_addrs[actual_exit]
            if return_addr is None:
                raise SimulationError(
                    f"call exit {actual_exit} of task {task_addr:#x} "
                    "has no return address in its header"
                )
            self._ras.push(return_addr)

    def storage_bits(self) -> int:
        return (
            self._exit_predictor.storage_bits()
            + self._cttb.storage_bits()
            + self._ras.storage_bits()
        )

    def batch_predicted_addrs(
        self,
        task_addrs: np.ndarray,
        predicted_exits: np.ndarray | None,
        actual_exits: np.ndarray,
        cf_codes: np.ndarray,
        next_addrs: np.ndarray,
    ) -> np.ndarray | None:
        """Full per-step predicted-address column, or None.

        ``predicted_exits`` is the exit predictor's batched output (see
        :func:`repro.sim.functional.batched_exit_prediction_column`); the
        remaining columns are the trace's actual outcomes, which drive
        RAS and CTTB training exactly as per-step ``update`` calls would.
        Only valid for a freshly constructed predictor; the object is not
        mutated. Returns None when a component has no batched form.
        """
        if predicted_exits is None:
            return None
        slot_fn = getattr(self._cttb, "batch_slot_ids", None)
        if slot_fn is None:
            return None
        addrs = int64_column(task_addrs)
        slot_ids = slot_fn(addrs)
        if slot_ids is None:
            return None
        program = self._program
        table = _DERIVED.get(
            (program,), "task-table", lambda: _TaskTable(program)
        )
        rows = _DERIVED.get(
            (task_addrs, program),
            "task-rows",
            lambda: table.rows_of(addrs),
        )
        predicted_exits = int64_column(predicted_exits)
        actual_exits = int64_column(actual_exits)
        cf_codes = int64_column(cf_codes)
        next_addrs = int64_column(next_addrs)
        predicted_cf = table.cf_codes[rows, predicted_exits]

        # Header targets answer BRANCH/CALL exits; RAS and CTTB rows are
        # overwritten below (every such row is a "read" of its structure).
        out = table.targets[rows, predicted_exits].copy()

        # Both timelines replay the actual (committed) outcome stream, so
        # they are identical for every scheme over a given trace — they
        # are built once and shared; only the read masks differ per cell.
        ras_top = _DERIVED.get(
            (task_addrs, cf_codes, actual_exits, program),
            ("ras-top", self._ras.depth),
            lambda: _ras_timeline(
                cf_codes,
                table.return_addrs[rows, actual_exits],
                self._ras.depth,
                addrs,
                actual_exits,
            ),
        )
        ras_reads = predicted_cf == _CF_RETURN
        np.copyto(out, ras_top, where=ras_reads)

        cttb_pre = _DERIVED.get(
            (slot_ids, cf_codes, next_addrs),
            ("cttb-pre", "indirect"),
            lambda: _cttb_pretarget_column(
                slot_ids,
                (cf_codes == _CF_IBRANCH) | (cf_codes == _CF_ICALL),
                next_addrs,
            ),
        )
        cttb_reads = (predicted_cf == _CF_IBRANCH) | (
            predicted_cf == _CF_ICALL
        )
        np.copyto(out, cttb_pre, where=cttb_reads)
        return out


class CttbOnlyTaskPredictor(NextTaskPredictor):
    """Headerless prediction: the CTTB alone supplies the next address.

    Every task's next address is predicted from (and trained into) one
    path-indexed buffer, regardless of exit type. Return addresses can only
    be learned by path correlation — no RAS is possible, which is the
    scheme's main accuracy cost (§5.4).
    """

    def __init__(self, cttb: CorrelatedTaskTargetBuffer) -> None:
        self._cttb = cttb

    def predict(self, task_addr: int) -> int:
        predicted = self._cttb.predict(task_addr)
        return predicted if predicted is not None else NO_PREDICTION

    def update(
        self,
        task_addr: int,
        actual_exit: int,
        actual_cf_code: int,
        actual_next_addr: int,
    ) -> None:
        self._cttb.update(task_addr, actual_next_addr)
        self._cttb.observe_step(task_addr)

    def storage_bits(self) -> int:
        return self._cttb.storage_bits()

    def batch_predicted_addrs(
        self,
        task_addrs: np.ndarray,
        predicted_exits: np.ndarray | None,
        actual_exits: np.ndarray,
        cf_codes: np.ndarray,
        next_addrs: np.ndarray,
    ) -> np.ndarray | None:
        """Predicted-address column: every step reads and trains the CTTB.

        Same contract as :meth:`HeaderTaskPredictor.batch_predicted_addrs`
        (``predicted_exits`` is unused — there is no exit predictor).
        """
        slot_fn = getattr(self._cttb, "batch_slot_ids", None)
        if slot_fn is None:
            return None
        addrs = int64_column(task_addrs)
        slot_ids = slot_fn(addrs)
        if slot_ids is None:
            return None
        targets = int64_column(next_addrs)
        everywhere = np.ones(len(addrs), dtype=bool)
        pre = _DERIVED.get(
            (slot_ids, targets),
            ("cttb-pre", "all"),
            lambda: _cttb_pretarget_column(slot_ids, everywhere, targets),
        )
        return pre.copy()


class PerfectTaskPredictor(NextTaskPredictor):
    """Oracle predictor: replays the trace's actual successors (Table 4)."""

    def __init__(self, trace: TaskTrace) -> None:
        self._next_addr = trace.next_addr
        self._task_addr = trace.task_addr
        self._cursor = 0

    def predict(self, task_addr: int) -> int:
        if self._cursor >= len(self._next_addr):
            raise SimulationError("perfect predictor ran past its trace")
        if int(self._task_addr[self._cursor]) != task_addr:
            raise PredictorConfigError(
                "perfect predictor queried out of trace order"
            )
        return int(self._next_addr[self._cursor])

    def update(
        self,
        task_addr: int,
        actual_exit: int,
        actual_cf_code: int,
        actual_next_addr: int,
    ) -> None:
        self._cursor += 1

    def storage_bits(self) -> int:
        return 0

    def batch_predicted_addrs(
        self,
        task_addrs: np.ndarray,
        predicted_exits: np.ndarray | None,
        actual_exits: np.ndarray,
        cf_codes: np.ndarray,
        next_addrs: np.ndarray,
    ) -> np.ndarray | None:
        """The oracle's column is the trace's successor column, verbatim.

        Same contract as :meth:`HeaderTaskPredictor.batch_predicted_addrs`;
        only the address column is consulted (to check trace order).
        """
        addrs = int64_column(task_addrs)
        n = len(addrs)
        if n > len(self._task_addr) or not np.array_equal(
            addrs, int64_column(self._task_addr[:n])
        ):
            raise PredictorConfigError(
                "perfect predictor queried out of trace order"
            )
        return int64_column(self._next_addr[:n])
