"""Real (finite-table) exit predictors (paper §5.2, §6.3).

Four history-generation schemes over a shared pattern history table:

* :class:`PathExitPredictor` — the paper's winner: PHT indexed by the
  D-O-L-C(F) fold of the preceding task addresses plus the current one.
* :class:`SimpleExitPredictor` — task address only (Table 4's "Simple");
  exactly a depth-0 path predictor.
* :class:`GlobalExitPredictor` — a single global register of 2-bit exit
  outcomes, hashed with the current task address (exit-based history).
* :class:`PerTaskExitPredictor` — PAp-style: a table of per-task history
  registers selected by task address, then a PHT (§5.2's PER, with the
  finite history-register table the paper describes for real
  implementations).

The paper omits real GLOBAL/PER results for space, noting that real PATH
beats even the *ideal* versions of the others; the index hashing used here
for GLOBAL/PER is therefore our own (gshare-style fold), documented in
DESIGN.md.

All schemes implement the single-exit-task optimisation of §6.1: one-exit
tasks are predicted without consulting or updating the PHT (toggle with
``update_on_single_exit=True`` for the ablation benchmark).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from repro.errors import PredictorConfigError
from repro.predictors.automata import (
    MultiwayAutomaton,
    make_automaton_factory,
)
from repro.predictors.base import ExitPredictor
from repro.predictors.folding import DolcSpec
from repro.predictors.pht import PatternHistoryTable
from repro.utils.bits import bit_mask, fold_xor

_ALIGN_SHIFT = 2  # word-aligned task addresses


def _fold_to(value: int, width: int, index_bits: int) -> int:
    """Fold a ``width``-bit value down to ``index_bits`` by XOR.

    Pads the width up to a multiple of ``index_bits`` first, so any
    combination of history and address bits can be reduced to a table index.
    """
    if width <= index_bits:
        return value & bit_mask(index_bits)
    folds = -(-width // index_bits)  # ceil
    return fold_xor(value, folds * index_bits, folds)


def _resolve_factory(
    automaton: str | Callable[[], MultiwayAutomaton]
) -> Callable[[], MultiwayAutomaton]:
    if callable(automaton):
        return automaton
    return make_automaton_factory(automaton)


class PathExitPredictor(ExitPredictor):
    """Path-based exit predictor with DOLC index construction (§6)."""

    def __init__(
        self,
        spec: DolcSpec,
        automaton: str | Callable[[], MultiwayAutomaton] = "LEH-2",
        update_on_single_exit: bool = False,
    ) -> None:
        self._spec = spec
        self._pht = PatternHistoryTable(
            spec.index_bits, _resolve_factory(automaton)
        )
        self._update_on_single_exit = update_on_single_exit
        self._path: deque[int] = deque(maxlen=max(1, spec.depth))
        # The DOLC fold is the predictor's hottest operation; predict()
        # caches its index so the paired update() (same task, same path)
        # doesn't recompute it. Invalidated whenever the path shifts.
        self._cached_index: tuple[int, int] | None = None

    @property
    def spec(self) -> DolcSpec:
        """The index specification in force."""
        return self._spec

    def _index(self, task_addr: int) -> int:
        cached = self._cached_index
        if cached is not None and cached[0] == task_addr:
            return cached[1]
        index = self._spec.index(task_addr, self._path)
        self._cached_index = (task_addr, index)
        return index

    def predict(self, task_addr: int, n_exits: int) -> int:
        if n_exits == 1 and not self._update_on_single_exit:
            return 0
        prediction = self._pht.entry(self._index(task_addr)).predict()
        return min(prediction, n_exits - 1)

    def update(self, task_addr: int, n_exits: int, actual_exit: int) -> None:
        if n_exits > 1 or self._update_on_single_exit:
            self._pht.entry(self._index(task_addr)).update(actual_exit)
        if self._spec.depth:
            self._path.append(task_addr)
            self._cached_index = None

    def states_touched(self) -> int:
        return self._pht.states_touched()

    def storage_bits(self) -> int:
        return self._pht.storage_bits()


class SimpleExitPredictor(PathExitPredictor):
    """Task-address-indexed predictor: Table 4's "Simple" baseline."""

    def __init__(
        self,
        index_bits: int = 14,
        automaton: str | Callable[[], MultiwayAutomaton] = "LEH-2",
    ) -> None:
        super().__init__(
            DolcSpec(depth=0, older_bits=0, last_bits=0,
                     current_bits=index_bits, folds=1),
            automaton=automaton,
        )


class GlobalExitPredictor(ExitPredictor):
    """Exit-based global history predictor (GLOBAL of §5.2), finite table.

    The global register holds the last ``depth`` exit indices, 2 bits each;
    the PHT index folds the register together with the current task address.
    """

    def __init__(
        self,
        depth: int,
        index_bits: int = 14,
        automaton: str | Callable[[], MultiwayAutomaton] = "LEH-2",
        update_on_single_exit: bool = False,
    ) -> None:
        if depth < 0:
            raise PredictorConfigError("history depth must be >= 0")
        self._depth = depth
        self._index_bits = index_bits
        self._pht = PatternHistoryTable(
            index_bits, _resolve_factory(automaton)
        )
        self._update_on_single_exit = update_on_single_exit
        self._history = 0
        self._history_mask = bit_mask(2 * depth) if depth else 0

    def _index(self, task_addr: int) -> int:
        addr_bits = (task_addr >> _ALIGN_SHIFT) & bit_mask(self._index_bits)
        if not self._depth:
            return addr_bits
        combined = (self._history << self._index_bits) | addr_bits
        return _fold_to(
            combined, 2 * self._depth + self._index_bits, self._index_bits
        )

    def predict(self, task_addr: int, n_exits: int) -> int:
        if n_exits == 1 and not self._update_on_single_exit:
            return 0
        prediction = self._pht.entry(self._index(task_addr)).predict()
        return min(prediction, n_exits - 1)

    def update(self, task_addr: int, n_exits: int, actual_exit: int) -> None:
        if n_exits > 1 or self._update_on_single_exit:
            self._pht.entry(self._index(task_addr)).update(actual_exit)
        if self._depth:
            self._history = (
                (self._history << 2) | actual_exit
            ) & self._history_mask

    def states_touched(self) -> int:
        return self._pht.states_touched()

    def storage_bits(self) -> int:
        return self._pht.storage_bits() + 2 * self._depth


class PerTaskExitPredictor(ExitPredictor):
    """Per-task exit history predictor (PER of §5.2), finite tables.

    A history-register table (HRT) of ``2**hrt_index_bits`` registers is
    selected by task address; each register records the last ``depth`` exits
    of the tasks mapping to it. The PHT index folds the selected register
    with the current task address. This approximates — but, as the paper
    notes, does not guarantee — a one-to-one task/history relationship.
    """

    def __init__(
        self,
        depth: int,
        index_bits: int = 14,
        hrt_index_bits: int = 12,
        automaton: str | Callable[[], MultiwayAutomaton] = "LEH-2",
        update_on_single_exit: bool = False,
    ) -> None:
        if depth < 0:
            raise PredictorConfigError("history depth must be >= 0")
        self._depth = depth
        self._index_bits = index_bits
        self._hrt_index_bits = hrt_index_bits
        self._pht = PatternHistoryTable(
            index_bits, _resolve_factory(automaton)
        )
        self._update_on_single_exit = update_on_single_exit
        self._hrt: dict[int, int] = {}
        self._history_mask = bit_mask(2 * depth) if depth else 0

    def _hrt_index(self, task_addr: int) -> int:
        return (task_addr >> _ALIGN_SHIFT) & bit_mask(self._hrt_index_bits)

    def _index(self, task_addr: int) -> int:
        addr_bits = (task_addr >> _ALIGN_SHIFT) & bit_mask(self._index_bits)
        if not self._depth:
            return addr_bits
        history = self._hrt.get(self._hrt_index(task_addr), 0)
        combined = (history << self._index_bits) | addr_bits
        return _fold_to(
            combined, 2 * self._depth + self._index_bits, self._index_bits
        )

    def predict(self, task_addr: int, n_exits: int) -> int:
        if n_exits == 1 and not self._update_on_single_exit:
            return 0
        prediction = self._pht.entry(self._index(task_addr)).predict()
        return min(prediction, n_exits - 1)

    def update(self, task_addr: int, n_exits: int, actual_exit: int) -> None:
        if n_exits > 1 or self._update_on_single_exit:
            self._pht.entry(self._index(task_addr)).update(actual_exit)
        if self._depth:
            hrt_index = self._hrt_index(task_addr)
            history = self._hrt.get(hrt_index, 0)
            self._hrt[hrt_index] = (
                (history << 2) | actual_exit
            ) & self._history_mask

    def states_touched(self) -> int:
        return self._pht.states_touched()

    def storage_bits(self) -> int:
        hrt_bits = (1 << self._hrt_index_bits) * 2 * self._depth
        return self._pht.storage_bits() + hrt_bits
