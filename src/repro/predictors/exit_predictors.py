"""Real (finite-table) exit predictors (paper §5.2, §6.3).

Four history-generation schemes over a shared pattern history table:

* :class:`PathExitPredictor` — the paper's winner: PHT indexed by the
  D-O-L-C(F) fold of the preceding task addresses plus the current one.
* :class:`SimpleExitPredictor` — task address only (Table 4's "Simple");
  exactly a depth-0 path predictor.
* :class:`GlobalExitPredictor` — a single global register of 2-bit exit
  outcomes, hashed with the current task address (exit-based history).
* :class:`PerTaskExitPredictor` — PAp-style: a table of per-task history
  registers selected by task address, then a PHT (§5.2's PER, with the
  finite history-register table the paper describes for real
  implementations).

The paper omits real GLOBAL/PER results for space, noting that real PATH
beats even the *ideal* versions of the others; the index hashing used here
for GLOBAL/PER is therefore our own (gshare-style fold), documented in
DESIGN.md.

All schemes implement the single-exit-task optimisation of §6.1: one-exit
tasks are predicted without consulting or updating the PHT (toggle with
``update_on_single_exit=True`` for the ablation benchmark).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

import numpy as np

from repro.errors import PredictorConfigError
from repro.isa.controlflow import MAX_EXITS_PER_TASK
from repro.predictors.automata import (
    AutomatonTable,
    MultiwayAutomaton,
    make_automaton_factory,
    tabulate_automaton,
)
from repro.predictors.base import ExitPredictor
from repro.predictors.folding import DolcSpec
from repro.predictors.pht import PatternHistoryTable
from repro.utils.bits import bit_mask, fold_xor
from repro.utils.memo import DerivedColumnCache, int64_column
from repro.utils.scan import stable_argsort

#: Per-key history columns per (trace columns, depth/index geometry) —
#: identical for every PER-scheme predictor swept over one trace.
_HISTORY_CACHE = DerivedColumnCache()

_ALIGN_SHIFT = 2  # word-aligned task addresses


def _fold_to(value: int, width: int, index_bits: int) -> int:
    """Fold a ``width``-bit value down to ``index_bits`` by XOR.

    Pads the width up to a multiple of ``index_bits`` first, so any
    combination of history and address bits can be reduced to a table index.
    """
    if width <= index_bits:
        return value & bit_mask(index_bits)
    folds = -(-width // index_bits)  # ceil
    return fold_xor(value, folds * index_bits, folds)


def _resolve_factory(
    automaton: str | Callable[[], MultiwayAutomaton]
) -> Callable[[], MultiwayAutomaton]:
    if callable(automaton):
        return automaton
    return make_automaton_factory(automaton)


def _fold_column(
    values: np.ndarray, width: int, index_bits: int
) -> np.ndarray:
    """Vectorized :func:`_fold_to` over an int64 column."""
    if width <= index_bits:
        return values & bit_mask(index_bits)
    folds = -(-width // index_bits)  # ceil
    mask = bit_mask(index_bits)
    out = np.zeros_like(values)
    for i in range(folds):
        np.bitwise_xor(out, (values >> (i * index_bits)) & mask, out=out)
    return out


def _global_history_column(exits: np.ndarray, depth: int) -> np.ndarray:
    """Global exit-history register contents just before each step.

    The register shifts in every retired exit, so the value read at step
    ``i`` packs ``exits[i-1]`` into the low 2 bits, ``exits[i-2]`` into
    the next 2, out to ``depth`` exits back; missing history (cold start)
    contributes zero bits, matching the register's initial value.
    """
    n = len(exits)
    history = np.zeros(n, dtype=np.int64)
    for lag in range(1, depth + 1):
        if lag >= n:
            break
        history[lag:] |= exits[:-lag] << (2 * (lag - 1))
    return history


def _per_key_history_column(
    keys: np.ndarray, exits: np.ndarray, depth: int
) -> np.ndarray:
    """Per-key exit-history register contents just before each step.

    Same packing as :func:`_global_history_column`, but each step reads
    the register selected by ``keys[i]`` — i.e. its history is the trail
    of exits taken by *earlier steps with the same key*. A stable sort by
    key makes every register's trail contiguous, so the lagged shifts of
    the global case apply per segment, guarded by each step's occurrence
    index so cold registers still read 0.
    """
    n = len(keys)
    history = np.zeros(n, dtype=np.int64)
    if n == 0 or depth == 0:
        return history
    order = stable_argsort(keys)
    keys_sorted = keys[order]
    exits_sorted = exits[order]
    starts = np.empty(n, dtype=bool)
    starts[0] = True
    starts[1:] = keys_sorted[1:] != keys_sorted[:-1]
    positions = np.arange(n, dtype=np.int64)
    segment_start = np.maximum.accumulate(np.where(starts, positions, 0))
    occurrence = positions - segment_start
    packed = np.zeros(n, dtype=np.int64)
    for lag in range(1, depth + 1):
        if lag >= n:
            break
        contribution = np.zeros(n, dtype=np.int64)
        contribution[lag:] = exits_sorted[:-lag] << (2 * (lag - 1))
        contribution[occurrence < lag] = 0
        packed |= contribution
    history[order] = packed
    return history


class PathExitPredictor(ExitPredictor):
    """Path-based exit predictor with DOLC index construction (§6)."""

    def __init__(
        self,
        spec: DolcSpec,
        automaton: str | Callable[[], MultiwayAutomaton] = "LEH-2",
        update_on_single_exit: bool = False,
    ) -> None:
        self._spec = spec
        self._pht = PatternHistoryTable(
            spec.index_bits, _resolve_factory(automaton)
        )
        self._update_on_single_exit = update_on_single_exit
        self._path: deque[int] = deque(maxlen=max(1, spec.depth))
        # The DOLC fold is the predictor's hottest operation; predict()
        # caches its index so the paired update() (same task, same path)
        # doesn't recompute it. Invalidated whenever the path shifts.
        self._cached_index: tuple[int, int] | None = None

    @property
    def spec(self) -> DolcSpec:
        """The index specification in force."""
        return self._spec

    def _index(self, task_addr: int) -> int:
        cached = self._cached_index
        if cached is not None and cached[0] == task_addr:
            return cached[1]
        index = self._spec.index(task_addr, self._path)
        self._cached_index = (task_addr, index)
        return index

    def predict(self, task_addr: int, n_exits: int) -> int:
        if n_exits == 1 and not self._update_on_single_exit:
            return 0
        prediction = self._pht.entry(self._index(task_addr)).predict()
        return min(prediction, n_exits - 1)

    def update(self, task_addr: int, n_exits: int, actual_exit: int) -> None:
        if n_exits > 1 or self._update_on_single_exit:
            self._pht.entry(self._index(task_addr)).update(actual_exit)
        if self._spec.depth:
            self._path.append(task_addr)
            self._cached_index = None

    def states_touched(self) -> int:
        return self._pht.states_touched()

    def storage_bits(self) -> int:
        return self._pht.storage_bits()

    def batch_plan(
        self, task_addrs: np.ndarray, actual_exits: np.ndarray
    ) -> tuple[np.ndarray, AutomatonTable] | None:
        """Plan a vectorized run: ``(per-step PHT indices, automaton table)``.

        Same contract as the ideal predictors' ``batch_plan`` (see
        :mod:`repro.predictors.ideal`): only valid for a freshly
        constructed predictor, and None when the automaton cannot be
        tabulated or single-exit tasks train the table. The path register
        shifts on every retired task, so the per-step indices are exactly
        :meth:`DolcSpec.index_column` over the full address column.
        """
        if self._update_on_single_exit:
            return None
        table = tabulate_automaton(self._pht.factory, MAX_EXITS_PER_TASK)
        if table is None:
            return None
        addrs = int64_column(task_addrs)
        return self._spec.index_column(addrs), table


class SimpleExitPredictor(PathExitPredictor):
    """Task-address-indexed predictor: Table 4's "Simple" baseline."""

    def __init__(
        self,
        index_bits: int = 14,
        automaton: str | Callable[[], MultiwayAutomaton] = "LEH-2",
    ) -> None:
        super().__init__(
            DolcSpec(depth=0, older_bits=0, last_bits=0,
                     current_bits=index_bits, folds=1),
            automaton=automaton,
        )


class GlobalExitPredictor(ExitPredictor):
    """Exit-based global history predictor (GLOBAL of §5.2), finite table.

    The global register holds the last ``depth`` exit indices, 2 bits each;
    the PHT index folds the register together with the current task address.
    """

    def __init__(
        self,
        depth: int,
        index_bits: int = 14,
        automaton: str | Callable[[], MultiwayAutomaton] = "LEH-2",
        update_on_single_exit: bool = False,
    ) -> None:
        if depth < 0:
            raise PredictorConfigError("history depth must be >= 0")
        self._depth = depth
        self._index_bits = index_bits
        self._pht = PatternHistoryTable(
            index_bits, _resolve_factory(automaton)
        )
        self._update_on_single_exit = update_on_single_exit
        self._history = 0
        self._history_mask = bit_mask(2 * depth) if depth else 0

    def _index(self, task_addr: int) -> int:
        addr_bits = (task_addr >> _ALIGN_SHIFT) & bit_mask(self._index_bits)
        if not self._depth:
            return addr_bits
        combined = (self._history << self._index_bits) | addr_bits
        return _fold_to(
            combined, 2 * self._depth + self._index_bits, self._index_bits
        )

    def predict(self, task_addr: int, n_exits: int) -> int:
        if n_exits == 1 and not self._update_on_single_exit:
            return 0
        prediction = self._pht.entry(self._index(task_addr)).predict()
        return min(prediction, n_exits - 1)

    def update(self, task_addr: int, n_exits: int, actual_exit: int) -> None:
        if n_exits > 1 or self._update_on_single_exit:
            self._pht.entry(self._index(task_addr)).update(actual_exit)
        if self._depth:
            self._history = (
                (self._history << 2) | actual_exit
            ) & self._history_mask

    def states_touched(self) -> int:
        return self._pht.states_touched()

    def storage_bits(self) -> int:
        return self._pht.storage_bits() + 2 * self._depth

    def batch_plan(
        self, task_addrs: np.ndarray, actual_exits: np.ndarray
    ) -> tuple[np.ndarray, AutomatonTable] | None:
        """Plan a vectorized run: ``(per-step PHT indices, automaton table)``.

        Same fresh-predictor contract as :meth:`PathExitPredictor.batch_plan`.
        The history register shifts on every update, so each step's index
        folds the register state built from *all* preceding exits.
        """
        if self._update_on_single_exit:
            return None
        if 2 * self._depth + self._index_bits > 62:
            return None  # combined key would not fit an int64 column
        table = tabulate_automaton(self._pht.factory, MAX_EXITS_PER_TASK)
        if table is None:
            return None
        addrs = int64_column(task_addrs)
        addr_bits = (addrs >> _ALIGN_SHIFT) & bit_mask(self._index_bits)
        if not self._depth:
            return addr_bits, table
        exits = int64_column(actual_exits)
        history = _global_history_column(exits, self._depth)
        combined = (history << self._index_bits) | addr_bits
        indices = _fold_column(
            combined, 2 * self._depth + self._index_bits, self._index_bits
        )
        return indices, table


class PerTaskExitPredictor(ExitPredictor):
    """Per-task exit history predictor (PER of §5.2), finite tables.

    A history-register table (HRT) of ``2**hrt_index_bits`` registers is
    selected by task address; each register records the last ``depth`` exits
    of the tasks mapping to it. The PHT index folds the selected register
    with the current task address. This approximates — but, as the paper
    notes, does not guarantee — a one-to-one task/history relationship.
    """

    def __init__(
        self,
        depth: int,
        index_bits: int = 14,
        hrt_index_bits: int = 12,
        automaton: str | Callable[[], MultiwayAutomaton] = "LEH-2",
        update_on_single_exit: bool = False,
    ) -> None:
        if depth < 0:
            raise PredictorConfigError("history depth must be >= 0")
        self._depth = depth
        self._index_bits = index_bits
        self._hrt_index_bits = hrt_index_bits
        self._pht = PatternHistoryTable(
            index_bits, _resolve_factory(automaton)
        )
        self._update_on_single_exit = update_on_single_exit
        self._hrt: dict[int, int] = {}
        self._history_mask = bit_mask(2 * depth) if depth else 0

    def _hrt_index(self, task_addr: int) -> int:
        return (task_addr >> _ALIGN_SHIFT) & bit_mask(self._hrt_index_bits)

    def _index(self, task_addr: int) -> int:
        addr_bits = (task_addr >> _ALIGN_SHIFT) & bit_mask(self._index_bits)
        if not self._depth:
            return addr_bits
        history = self._hrt.get(self._hrt_index(task_addr), 0)
        combined = (history << self._index_bits) | addr_bits
        return _fold_to(
            combined, 2 * self._depth + self._index_bits, self._index_bits
        )

    def predict(self, task_addr: int, n_exits: int) -> int:
        if n_exits == 1 and not self._update_on_single_exit:
            return 0
        prediction = self._pht.entry(self._index(task_addr)).predict()
        return min(prediction, n_exits - 1)

    def update(self, task_addr: int, n_exits: int, actual_exit: int) -> None:
        if n_exits > 1 or self._update_on_single_exit:
            self._pht.entry(self._index(task_addr)).update(actual_exit)
        if self._depth:
            hrt_index = self._hrt_index(task_addr)
            history = self._hrt.get(hrt_index, 0)
            self._hrt[hrt_index] = (
                (history << 2) | actual_exit
            ) & self._history_mask

    def states_touched(self) -> int:
        return self._pht.states_touched()

    def storage_bits(self) -> int:
        hrt_bits = (1 << self._hrt_index_bits) * 2 * self._depth
        return self._pht.storage_bits() + hrt_bits

    def batch_plan(
        self, task_addrs: np.ndarray, actual_exits: np.ndarray
    ) -> tuple[np.ndarray, AutomatonTable] | None:
        """Plan a vectorized run: ``(per-step PHT indices, automaton table)``.

        Same fresh-predictor contract as :meth:`PathExitPredictor.batch_plan`.
        Each step reads the history register its task address selects, so
        the history column is computed per HRT slot.
        """
        if self._update_on_single_exit:
            return None
        if 2 * self._depth + self._index_bits > 62:
            return None  # combined key would not fit an int64 column
        table = tabulate_automaton(self._pht.factory, MAX_EXITS_PER_TASK)
        if table is None:
            return None
        addrs = int64_column(task_addrs)
        addr_bits = (addrs >> _ALIGN_SHIFT) & bit_mask(self._index_bits)
        if not self._depth:
            return addr_bits, table
        keys = (addrs >> _ALIGN_SHIFT) & bit_mask(self._hrt_index_bits)
        exits = int64_column(actual_exits)
        history = _HISTORY_CACHE.get(
            (task_addrs, actual_exits),
            ("per-history", self._depth, self._hrt_index_bits),
            lambda: _per_key_history_column(keys, exits, self._depth),
        )
        combined = (history << self._index_bits) | addr_bits
        indices = _fold_column(
            combined, 2 * self._depth + self._index_bits, self._index_bits
        )
        return indices, table
