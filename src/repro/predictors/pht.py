"""Pattern history table: a table of multi-way prediction automata.

Entries are created lazily — untouched indices cost nothing in simulation
and the number of touched entries is itself a measured quantity (Figure 11).
Hardware storage accounting always charges the full table, of course.

Two representations coexist:

* :class:`PatternHistoryTable` — the object-per-entry reference used by
  the step-by-step simulators.
* :class:`PackedPatternTable` — a struct-of-arrays twin for the batched
  kernels: all entry state lives in one flat int8 column (one tabulated
  automaton state id per touched entry), advanced whole-trace-at-a-time
  by the segmented FSM scan. Bit-identical to the reference by
  construction, since its transition table is enumerated from live
  automaton objects.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import PredictorConfigError
from repro.predictors.automata import AutomatonTable, MultiwayAutomaton
from repro.utils.scan import final_fsm_states, segmented_fsm_scan


class PatternHistoryTable:
    """A 2^index_bits-entry table of prediction automata."""

    def __init__(
        self,
        index_bits: int,
        automaton_factory: Callable[[], MultiwayAutomaton],
    ) -> None:
        if index_bits < 1:
            raise PredictorConfigError("PHT needs >= 1 index bit")
        self._index_bits = index_bits
        self._factory = automaton_factory
        self._entries: dict[int, MultiwayAutomaton] = {}

    @property
    def index_bits(self) -> int:
        """Width of the table index."""
        return self._index_bits

    @property
    def factory(self) -> Callable[[], MultiwayAutomaton]:
        """The automaton factory populating new entries."""
        return self._factory

    @property
    def n_entries(self) -> int:
        """Total table capacity."""
        return 1 << self._index_bits

    def entry(self, index: int) -> MultiwayAutomaton:
        """Return the automaton at ``index``, creating it on first touch."""
        if not 0 <= index < self.n_entries:
            raise PredictorConfigError(
                f"index {index} out of range for {self._index_bits}-bit PHT"
            )
        automaton = self._entries.get(index)
        if automaton is None:
            automaton = self._entries[index] = self._factory()
        return automaton

    def states_touched(self) -> int:
        """Distinct entries exercised so far (Figure 11's 'states touched')."""
        return len(self._entries)

    def storage_bits(self) -> int:
        """Full-capacity storage cost in bits."""
        return self.n_entries * self._factory().bits_per_entry()


class PackedPatternTable:
    """Struct-of-arrays PHT: one int8 automaton-state id per entry.

    Entries are addressed by *dense group ids* (``0..n_groups-1``), the
    factorized form of whatever index the owning predictor computes.
    State advances in whole-trace batches through :meth:`replay`; calling
    it several times over consecutive trace slices yields exactly the
    states a single call over the concatenation would — which is what
    makes checkpoint-resumed batched runs bit-identical to straight ones.
    """

    def __init__(self, table: AutomatonTable, n_groups: int) -> None:
        if n_groups < 0:
            raise PredictorConfigError("need n_groups >= 0")
        self._table = table
        self._states = np.zeros(n_groups, dtype=np.int64)
        self._touched = np.zeros(n_groups, dtype=bool)

    @property
    def table(self) -> AutomatonTable:
        """The tabulated automaton driving every entry."""
        return self._table

    @property
    def state_column(self) -> np.ndarray:
        """Current per-entry automaton state ids (read-only view)."""
        view = self._states.view()
        view.flags.writeable = False
        return view

    def replay(
        self, group_ids: np.ndarray, inputs: np.ndarray
    ) -> np.ndarray:
        """Advance every touched entry through a trace slice.

        Returns the pre-update state of each step's entry — the state
        its prediction reads — and leaves the column holding the
        post-trace states, ready for the next slice.
        """
        pre_states = segmented_fsm_scan(
            group_ids,
            inputs,
            self._table.transitions,
            initial_states=self._states,
        )
        self._states = final_fsm_states(
            group_ids,
            inputs,
            self._table.transitions,
            pre_states,
            len(self._states),
            initial_states=self._states,
        )
        if len(group_ids):
            self._touched[group_ids] = True
        return pre_states

    def predictions_of(self, states: np.ndarray) -> np.ndarray:
        """Predicted exit of each state id in ``states``."""
        return self._table.predictions[states]

    def states_touched(self) -> int:
        """Distinct entries exercised so far (Figure 11's metric)."""
        return int(self._touched.sum())
