"""Pattern history table: a table of multi-way prediction automata.

Entries are created lazily — untouched indices cost nothing in simulation
and the number of touched entries is itself a measured quantity (Figure 11).
Hardware storage accounting always charges the full table, of course.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import PredictorConfigError
from repro.predictors.automata import MultiwayAutomaton


class PatternHistoryTable:
    """A 2^index_bits-entry table of prediction automata."""

    def __init__(
        self,
        index_bits: int,
        automaton_factory: Callable[[], MultiwayAutomaton],
    ) -> None:
        if index_bits < 1:
            raise PredictorConfigError("PHT needs >= 1 index bit")
        self._index_bits = index_bits
        self._factory = automaton_factory
        self._entries: dict[int, MultiwayAutomaton] = {}

    @property
    def index_bits(self) -> int:
        """Width of the table index."""
        return self._index_bits

    @property
    def n_entries(self) -> int:
        """Total table capacity."""
        return 1 << self._index_bits

    def entry(self, index: int) -> MultiwayAutomaton:
        """Return the automaton at ``index``, creating it on first touch."""
        if not 0 <= index < self.n_entries:
            raise PredictorConfigError(
                f"index {index} out of range for {self._index_bits}-bit PHT"
            )
        automaton = self._entries.get(index)
        if automaton is None:
            automaton = self._entries[index] = self._factory()
        return automaton

    def states_touched(self) -> int:
        """Distinct entries exercised so far (Figure 11's 'states touched')."""
        return len(self._entries)

    def storage_bits(self) -> int:
        """Full-capacity storage cost in bits."""
        return self.n_entries * self._factory().bits_per_entry()
