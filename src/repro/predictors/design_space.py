"""The tunable predictor design space: DOLC x automaton points.

The paper explores the D-O-L-C(F) index family by hand-picking one
configuration per history depth (Figures 9-11). This module makes the
whole family enumerable so the autotuner (:mod:`repro.evalx.tune`) can
search it: a :class:`TuneConfig` names one candidate — an index spec
plus the automaton stored in each PHT entry — and carries its exact
storage cost, so search results rank on an accuracy-vs-storage Pareto
frontier instead of accuracy alone.

Bit allocation follows the paper's §6.1 heuristics: recent control flow
matters most, so the current task gets at least as many bits as the
last task, which gets at least as many as each older task
(``O <= L <= C``). :func:`allocate_dolc` produces the canonical such
split for a (depth, index width, folds) triple, and
:func:`enumerate_space` crosses those splits with the automaton family.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.predictors.automata import make_automaton_factory
from repro.predictors.folding import DolcSpec

#: History depths searched by default: the paper's full 0..7 axis.
DEFAULT_DEPTHS = (0, 1, 2, 3, 4, 5, 6, 7)

#: PHT index widths searched by default (1K-16K entries).
DEFAULT_INDEX_BITS = (10, 12, 14)

#: Automata searched by default. The VC-RANDOM variants are excluded:
#: their tie-break draws from a stream shared across entries, so they
#: cannot be tabulated for the vectorized simulation path.
DEFAULT_AUTOMATA = ("LE", "LEH-1", "LEH-2", "LEH-3", "VC2-MRU", "VC3-MRU")

#: XOR-fold counts searched by default.
DEFAULT_FOLDS = (1, 2, 3)


@dataclass(frozen=True)
class TuneConfig:
    """One point of the design space: an index spec plus an automaton.

    Attributes:
        dolc: The ``D-O-L-C(F)`` index spec, in the paper's notation.
        automaton: Automaton name per :func:`make_automaton_factory`
            (e.g. ``LEH-2``); generalised hysteresis depths like
            ``LEH-3`` are part of the searchable space.
    """

    dolc: str
    automaton: str

    @property
    def key(self) -> str:
        """Canonical identity, ``"<dolc>/<automaton>"``; stable across
        runs, so rung promotions and frontier artifacts key on it."""
        return f"{self.dolc}/{self.automaton}"

    @classmethod
    def parse(cls, key: str) -> "TuneConfig":
        """Invert :attr:`key` (validates both halves)."""
        dolc, _, automaton = key.partition("/")
        config = cls(dolc=dolc, automaton=automaton)
        config.spec()  # raises PredictorConfigError on a bad spec
        make_automaton_factory(automaton)  # raises on a bad name
        return config

    def spec(self) -> DolcSpec:
        """The parsed index spec."""
        return DolcSpec.parse(self.dolc)

    def storage_bits(self) -> int:
        """Exact PHT cost: entries x per-entry automaton bits."""
        entry_bits = make_automaton_factory(self.automaton)().bits_per_entry()
        return self.spec().table_entries * entry_bits

    def build_predictor(self):
        """A fresh :class:`~repro.predictors.exit_predictors.PathExitPredictor`
        for this point."""
        from repro.predictors.exit_predictors import PathExitPredictor

        return PathExitPredictor(self.spec(), automaton=self.automaton)


def allocate_dolc(
    depth: int, index_bits: int, folds: int = 1
) -> DolcSpec | None:
    """Canonical O/L/C split for one (depth, index width, fold) triple.

    The intermediate index is ``folds * index_bits`` wide and must be
    divided over the path per §6.1's recency heuristic: every older
    task contributes at most as many bits as the last task, which
    contributes at most as many as the current task. Returns None when
    no such split exists (e.g. depth 0 with more than one fold, where
    the single current-task field cannot be folded against anything).
    """
    if depth < 0 or index_bits < 1 or folds < 1:
        return None
    width = folds * index_bits
    if depth == 0:
        # No path history: the unfolded current-task field is the index.
        if folds != 1:
            return None
        return DolcSpec(0, 0, 0, index_bits, 1)
    if depth == 1:
        current = (width + 1) // 2
        last = width - current
        if last < 1:
            return None
        return DolcSpec(1, 0, last, current, folds)
    for older in range(max(1, width // (2 * depth)), 0, -1):
        rest = width - older * (depth - 1)
        if rest < 2:
            continue
        last = rest // 2
        current = rest - last
        if older <= last <= current:
            return DolcSpec(depth, older, last, current, folds)
    return None


def enumerate_space(
    depths: Sequence[int] = DEFAULT_DEPTHS,
    index_bits: Sequence[int] = DEFAULT_INDEX_BITS,
    automata: Sequence[str] = DEFAULT_AUTOMATA,
    folds: Sequence[int] = DEFAULT_FOLDS,
) -> list[TuneConfig]:
    """Every valid design point over the given axes, in a stable order.

    Points whose (depth, width, fold) triple admits no §6.1-respecting
    bit split are skipped; distinct triples that canonicalise to the
    same D-O-L-C(F) string are deduplicated. The order is a pure
    function of the axis sequences, which is what lets a resumed search
    rebuild the identical candidate population.
    """
    configs: dict[str, TuneConfig] = {}
    for depth in depths:
        for bits in index_bits:
            for fold in folds:
                spec = allocate_dolc(depth, bits, fold)
                if spec is None:
                    continue
                for automaton in automata:
                    config = TuneConfig(dolc=str(spec), automaton=automaton)
                    configs.setdefault(config.key, config)
    return list(configs.values())
