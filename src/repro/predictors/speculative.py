"""Speculative-history path prediction: relaxing the §3.1 idealisations.

The paper's functional methodology makes two idealisations:

* *Update timing* — predictor structures update immediately with actual
  outcomes (no staleness);
* *Pollution* — simulation never continues past a mispredict, so history
  always reflects the actual path (equivalent to perfect repair).

Real hardware shifts *predicted* outcomes into the history register at
prediction time (the sequencer runs far ahead of resolution) and must
repair it when a task mispredict resolves. This module implements that
machinery so the cost of imperfect repair can be measured:

* :class:`SpeculativePathPredictor` — a path-based exit predictor whose
  path register advances with *predicted* next-task addresses, with three
  repair policies on mispredict resolution:

  - ``"perfect"``  — restore the exact pre-speculation history (checkpoint
    per in-flight prediction, as real Multiscalar hardware with history
    checkpointing would); equivalent to the paper's idealisation.
  - ``"squash"``   — clear the history register entirely (cheap hardware).
  - ``"none"``     — leave the polluted history in place (no repair).

Automaton updates still happen at resolution time with actual outcomes
(non-speculative, as in two-level branch predictors — §4.1).
"""

from __future__ import annotations

from collections import deque

from repro.errors import PredictorConfigError
from repro.predictors.automata import make_automaton_factory
from repro.predictors.folding import DolcSpec
from repro.predictors.pht import PatternHistoryTable

REPAIR_POLICIES = ("perfect", "squash", "none")


class SpeculativePathPredictor:
    """Path-based exit predictor with speculative history management.

    Unlike :class:`repro.predictors.exit_predictors.PathExitPredictor`,
    whose ``update`` both trains the automaton and advances the history
    with the actual outcome, this class splits the lifecycle the way the
    hardware pipeline does:

    1. ``predict(task_addr, n_exits)`` — returns the exit index, and
       *speculatively* shifts the current task into the path register.
    2. ``resolve(task_addr, n_exits, actual_exit, was_wrong_path)`` —
       called at task completion: trains the automaton and, when the
       downstream prediction proved wrong, applies the repair policy.
    """

    def __init__(
        self,
        spec: DolcSpec,
        repair: str = "perfect",
        automaton: str = "LEH-2",
        max_in_flight: int = 8,
    ) -> None:
        if repair not in REPAIR_POLICIES:
            raise PredictorConfigError(
                f"repair must be one of {REPAIR_POLICIES}, got {repair!r}"
            )
        if max_in_flight < 1:
            raise PredictorConfigError("max_in_flight must be >= 1")
        self._spec = spec
        self._repair = repair
        self._pht = PatternHistoryTable(
            spec.index_bits, make_automaton_factory(automaton)
        )
        self._path: deque[int] = deque(maxlen=max(1, spec.depth))
        # Checkpoints of the path register, one per unresolved prediction,
        # oldest first. Real hardware bounds these by the ring size.
        self._checkpoints: deque[tuple[int, tuple[int, ...]]] = deque(
            maxlen=max_in_flight
        )

    @property
    def spec(self) -> DolcSpec:
        """The index specification in force."""
        return self._spec

    @property
    def repair_policy(self) -> str:
        """The history-repair policy in force."""
        return self._repair

    @property
    def pht_factory(self):
        """The automaton factory populating PHT entries (for batching)."""
        return self._pht.factory

    def predict(self, task_addr: int, n_exits: int) -> int:
        """Predict the exit and speculatively advance the path register."""
        index = self._spec.index(task_addr, self._path)
        if n_exits == 1:
            prediction = 0
        else:
            prediction = min(
                self._pht.entry(index).predict(), n_exits - 1
            )
        if self._spec.depth:
            self._checkpoints.append((task_addr, tuple(self._path)))
            self._path.append(task_addr)
        return prediction

    def predict_wrong_path(self, task_addr: int, n_exits: int) -> int:
        """Predict a task the sequencer fetched down a wrong path.

        Shifts the (wrong) task into the speculative history like any other
        prediction, but takes no checkpoint and will never be resolved —
        the hardware squashes such tasks before they complete.
        """
        index = self._spec.index(task_addr, self._path)
        prediction = self._pht.entry(index).predict() if n_exits > 1 else 0
        if self._spec.depth:
            self._path.append(task_addr)
        return min(prediction, max(0, n_exits - 1))

    def resolve(
        self,
        task_addr: int,
        n_exits: int,
        actual_exit: int,
        was_wrong_path: bool,
    ) -> None:
        """Train on the resolved outcome; repair history on a mispredict.

        ``was_wrong_path`` is True when the prediction made *at this task*
        turned out wrong, so everything shifted into the history after it
        was wrong-path speculation.
        """
        if n_exits > 1:
            checkpoint_path = self._checkpoint_for(task_addr)
            index = self._spec.index(
                task_addr,
                checkpoint_path if checkpoint_path is not None
                else self._path,
            )
            self._pht.entry(index).update(actual_exit)
        if was_wrong_path and self._spec.depth:
            self._apply_repair(task_addr)
        self._drop_checkpoint(task_addr)

    def _checkpoint_for(self, task_addr: int) -> tuple[int, ...] | None:
        for addr, path in self._checkpoints:
            if addr == task_addr:
                return path
        return None

    def _drop_checkpoint(self, task_addr: int) -> None:
        for i, (addr, _) in enumerate(self._checkpoints):
            if addr == task_addr:
                del self._checkpoints[i]
                return

    def _apply_repair(self, task_addr: int) -> None:
        if self._repair == "none":
            return
        if self._repair == "squash":
            self._path.clear()
            return
        # perfect: restore the checkpoint taken when this task was
        # predicted, then replay the task itself (it did execute).
        checkpoint = self._checkpoint_for(task_addr)
        if checkpoint is not None:
            self._path.clear()
            self._path.extend(checkpoint)
            self._path.append(task_addr)

    def states_touched(self) -> int:
        """Distinct PHT entries exercised."""
        return self._pht.states_touched()

    def storage_bits(self) -> int:
        """PHT storage (checkpoints are microarchitectural state)."""
        return self._pht.storage_bits()
