"""Inter-task control-flow prediction — the paper's core contribution.

Contents map onto the paper's sections:

* :mod:`repro.predictors.automata` — multi-way prediction automata (§5.1):
  voting counters, last-exit, last-exit-with-hysteresis.
* :mod:`repro.predictors.folding` — the D-O-L-C (F) path index construction
  (§6.1–6.2, Figure 9).
* :mod:`repro.predictors.exit_predictors` — real (finite-table) exit
  predictors: PATH, GLOBAL, PER, and the task-address-indexed "Simple"
  baseline (§6.3, Table 4).
* :mod:`repro.predictors.ideal` — ideal (alias-free) GLOBAL / PER / PATH
  history schemes (§5.2, Figure 7).
* :mod:`repro.predictors.ras` — return address stack (§4.2, §5.3).
* :mod:`repro.predictors.ttb` — task target buffer and correlated task
  target buffer, finite and ideal (§5.3, §6.4, Figures 8 and 12).
* :mod:`repro.predictors.task_predictor` — composed next-task predictors:
  exit predictor + header + RAS + CTTB, the CTTB-only headerless scheme
  (§5.4, Table 3), and a perfect oracle.
* :mod:`repro.predictors.bimodal` — the intra-task bimodal predictor (§2.2).
"""

from repro.predictors.automata import (
    AUTOMATON_SPECS,
    LastExit,
    LastExitHysteresis,
    MultiwayAutomaton,
    VotingCounters,
    make_automaton_factory,
)
from repro.predictors.base import ExitPredictor, NextTaskPredictor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.exit_predictors import (
    GlobalExitPredictor,
    PathExitPredictor,
    PerTaskExitPredictor,
    SimpleExitPredictor,
)
from repro.predictors.folding import DolcSpec
from repro.predictors.ideal import (
    IdealGlobalPredictor,
    IdealPathPredictor,
    IdealPerTaskPredictor,
)
from repro.predictors.ras import ReturnAddressStack
from repro.predictors.ttb import (
    CorrelatedTaskTargetBuffer,
    IdealCorrelatedTargetBuffer,
    TaskTargetBuffer,
)
from repro.predictors.task_predictor import (
    CttbOnlyTaskPredictor,
    HeaderTaskPredictor,
    PerfectTaskPredictor,
)
from repro.predictors.hybrid import TournamentExitPredictor
from repro.predictors.confidence import (
    ConfidenceStats,
    ResettingConfidenceEstimator,
    simulate_confidence,
)
from repro.predictors.speculative import SpeculativePathPredictor
from repro.predictors.static_hints import StaticHintExitPredictor

__all__ = [
    "MultiwayAutomaton",
    "LastExit",
    "LastExitHysteresis",
    "VotingCounters",
    "AUTOMATON_SPECS",
    "make_automaton_factory",
    "ExitPredictor",
    "NextTaskPredictor",
    "DolcSpec",
    "PathExitPredictor",
    "GlobalExitPredictor",
    "PerTaskExitPredictor",
    "SimpleExitPredictor",
    "IdealPathPredictor",
    "IdealGlobalPredictor",
    "IdealPerTaskPredictor",
    "ReturnAddressStack",
    "TaskTargetBuffer",
    "CorrelatedTaskTargetBuffer",
    "IdealCorrelatedTargetBuffer",
    "HeaderTaskPredictor",
    "CttbOnlyTaskPredictor",
    "PerfectTaskPredictor",
    "BimodalPredictor",
    "TournamentExitPredictor",
    "ResettingConfidenceEstimator",
    "ConfidenceStats",
    "simulate_confidence",
    "SpeculativePathPredictor",
    "StaticHintExitPredictor",
]
