"""Ideal (alias-free) history-generation schemes (paper §5.2, Figure 7).

The paper compares GLOBAL / PER / PATH under *ideal* implementations: "no
aliasing in any of the data structures" — every distinct (task, history)
combination gets its own prediction automaton. These classes realise that
with unbounded dictionaries:

* :class:`IdealGlobalPredictor` — key = (task, last D exit indices taken
  globally).
* :class:`IdealPerTaskPredictor` — key = (task, last D exit indices taken
  *by this task*): one history register and one pattern table per static
  task (Yeh's PAp).
* :class:`IdealPathPredictor` — key = (task, addresses of the last D
  tasks): uniquely identified paths.

At depth 0 all three degenerate to one automaton per static task, which is
why the Figure 7 curves share their leftmost point.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

import numpy as np

from repro.errors import PredictorConfigError
from repro.isa.controlflow import MAX_EXITS_PER_TASK
from repro.predictors.automata import (
    AutomatonTable,
    MultiwayAutomaton,
    make_automaton_factory,
    tabulate_automaton,
)
from repro.predictors.base import ExitPredictor
from repro.utils.memo import int64_column
from repro.utils.windows import (
    group_by_global_history,
    group_by_path,
    group_by_per_key_history,
)


def _resolve_factory(
    automaton: str | Callable[[], MultiwayAutomaton]
) -> Callable[[], MultiwayAutomaton]:
    if callable(automaton):
        return automaton
    return make_automaton_factory(automaton)


class _IdealPredictorBase(ExitPredictor):
    """Shared machinery: an unbounded key -> automaton map."""

    def __init__(
        self,
        depth: int,
        automaton: str | Callable[[], MultiwayAutomaton],
        update_on_single_exit: bool,
    ) -> None:
        if depth < 0:
            raise PredictorConfigError("history depth must be >= 0")
        self._depth = depth
        self._factory = _resolve_factory(automaton)
        self._update_on_single_exit = update_on_single_exit
        self._table: dict[tuple, MultiwayAutomaton] = {}

    @property
    def depth(self) -> int:
        """Configured history depth."""
        return self._depth

    def _key(self, task_addr: int) -> tuple:
        raise NotImplementedError

    def _advance_history(self, task_addr: int, actual_exit: int) -> None:
        raise NotImplementedError

    def predict(self, task_addr: int, n_exits: int) -> int:
        if n_exits == 1 and not self._update_on_single_exit:
            return 0
        automaton = self._table.get(self._key(task_addr))
        if automaton is None:
            return 0
        return min(automaton.predict(), n_exits - 1)

    def update(self, task_addr: int, n_exits: int, actual_exit: int) -> None:
        if n_exits > 1 or self._update_on_single_exit:
            key = self._key(task_addr)
            automaton = self._table.get(key)
            if automaton is None:
                automaton = self._table[key] = self._factory()
            automaton.update(actual_exit)
        self._advance_history(task_addr, actual_exit)

    def states_touched(self) -> int:
        return len(self._table)

    def storage_bits(self) -> int:
        return 0  # unbounded by definition

    # -- batched simulation support ------------------------------------

    def _batch_group_ids(
        self, task_addrs: np.ndarray, actual_exits: np.ndarray
    ) -> np.ndarray:
        """Per-step table keys as dense integer ids."""
        raise NotImplementedError

    def batch_plan(
        self, task_addrs: np.ndarray, actual_exits: np.ndarray
    ) -> tuple[np.ndarray, AutomatonTable] | None:
        """Plan a vectorized run: ``(per-step key ids, automaton table)``.

        The batched exit-prediction kernel in
        :mod:`repro.sim.functional` uses the dense key ids in place of
        this predictor's key tuples and replays the automaton through
        its tabulated state machine. Returns None when the configuration
        has no exact batched equivalent (automata whose state cannot be
        tabulated, or updating on single-exit tasks), in which case the
        caller falls back to the step-by-step loop. Only valid for a
        freshly constructed predictor: the kernel does not read or write
        ``self._table``.
        """
        if self._update_on_single_exit:
            return None
        table = tabulate_automaton(self._factory, MAX_EXITS_PER_TASK)
        if table is None:
            return None
        ids = self._batch_group_ids(
            int64_column(task_addrs),
            int64_column(actual_exits),
        )
        return ids, table


class IdealGlobalPredictor(_IdealPredictorBase):
    """Alias-free GLOBAL: global exit history, unique automaton per state."""

    def __init__(
        self,
        depth: int,
        automaton: str | Callable[[], MultiwayAutomaton] = "LEH-2",
        update_on_single_exit: bool = False,
    ) -> None:
        super().__init__(depth, automaton, update_on_single_exit)
        self._history: deque[int] = deque(maxlen=depth) if depth else deque()

    def _key(self, task_addr: int) -> tuple:
        return (task_addr, tuple(self._history))

    def _advance_history(self, task_addr: int, actual_exit: int) -> None:
        if self._depth:
            self._history.append(actual_exit)

    def _batch_group_ids(
        self, task_addrs: np.ndarray, actual_exits: np.ndarray
    ) -> np.ndarray:
        return group_by_global_history(
            task_addrs, actual_exits, self._depth
        )


class IdealPerTaskPredictor(_IdealPredictorBase):
    """Alias-free PER: one exit-history register per static task (PAp)."""

    def __init__(
        self,
        depth: int,
        automaton: str | Callable[[], MultiwayAutomaton] = "LEH-2",
        update_on_single_exit: bool = False,
    ) -> None:
        super().__init__(depth, automaton, update_on_single_exit)
        self._histories: dict[int, deque[int]] = {}

    def _task_history(self, task_addr: int) -> deque[int]:
        history = self._histories.get(task_addr)
        if history is None:
            history = self._histories[task_addr] = deque(maxlen=self._depth)
        return history

    def _key(self, task_addr: int) -> tuple:
        if not self._depth:
            return (task_addr, ())
        return (task_addr, tuple(self._task_history(task_addr)))

    def _advance_history(self, task_addr: int, actual_exit: int) -> None:
        if self._depth:
            self._task_history(task_addr).append(actual_exit)

    def _batch_group_ids(
        self, task_addrs: np.ndarray, actual_exits: np.ndarray
    ) -> np.ndarray:
        return group_by_per_key_history(
            task_addrs, actual_exits, self._depth
        )


class IdealPathPredictor(_IdealPredictorBase):
    """Alias-free PATH: the last D task addresses identify the path."""

    def __init__(
        self,
        depth: int,
        automaton: str | Callable[[], MultiwayAutomaton] = "LEH-2",
        update_on_single_exit: bool = False,
    ) -> None:
        super().__init__(depth, automaton, update_on_single_exit)
        self._path: deque[int] = deque(maxlen=depth) if depth else deque()

    def _key(self, task_addr: int) -> tuple:
        return (task_addr, tuple(self._path))

    def _advance_history(self, task_addr: int, actual_exit: int) -> None:
        if self._depth:
            self._path.append(task_addr)

    def _batch_group_ids(
        self, task_addrs: np.ndarray, actual_exits: np.ndarray
    ) -> np.ndarray:
        return group_by_path(task_addrs, self._depth)
