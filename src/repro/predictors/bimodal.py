"""Intra-task bimodal branch predictor (paper §2.2).

Each processing unit predicts the conditional branches *inside* its task
with a bimodal (2-bit saturating counter) predictor, "which only suffers
minimal accuracy loss due to incomplete history". The table is keyed by an
opaque branch identity (block label or address), with counters created at
weakly-not-taken.
"""

from __future__ import annotations

from collections.abc import Hashable

_TAKEN_THRESHOLD = 2
_COUNTER_MAX = 3
_INITIAL = 1  # weakly not-taken


class BimodalPredictor:
    """A 2-bit-counter-per-branch direction predictor."""

    def __init__(self) -> None:
        self._counters: dict[Hashable, int] = {}

    def predict(self, branch: Hashable) -> bool:
        """Return True if the branch is predicted taken."""
        return self._counters.get(branch, _INITIAL) >= _TAKEN_THRESHOLD

    def update(self, branch: Hashable, taken: bool) -> None:
        """Train the branch's counter on its actual direction."""
        counter = self._counters.get(branch, _INITIAL)
        if taken:
            if counter < _COUNTER_MAX:
                counter += 1
        elif counter > 0:
            counter -= 1
        self._counters[branch] = counter

    def predict_and_update(self, branch: Hashable, taken: bool) -> bool:
        """Predict then train in one call; returns whether it was correct."""
        correct = self.predict(branch) == taken
        self.update(branch, taken)
        return correct

    def branches_tracked(self) -> int:
        """Number of distinct branches with a counter."""
        return len(self._counters)
