"""Task target buffers (paper §5.3, §6.4; Figures 8 and 12).

Indirect branches and indirect calls have targets the compiler cannot place
in the task header, so they must be predicted. Three structures:

* :class:`TaskTargetBuffer` (TTB) — a BTB analogue indexed by bits of the
  task's start address. The paper found it performs *very poorly* for
  Multiscalar indirect exits (59% / 39% miss on gcc / xlisp even with
  infinite size) because the same task reaches different targets depending
  on context.
* :class:`CorrelatedTaskTargetBuffer` (CTTB) — the paper's fix: index with
  the same path-history DOLC fold used by the exit predictor, so entries
  are per-path rather than per-task.
* :class:`IdealCorrelatedTargetBuffer` — alias-free CTTB (infinite table,
  full path key) for the ideal curves of Figure 8.

Each entry stores a target address and a 2-bit saturating hysteresis
counter: a hit increments, a different target decrements, and the stored
target is replaced only when the counter has drained to zero.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import PredictorConfigError
from repro.predictors.folding import DolcSpec
from repro.utils.memo import int64_column
from repro.utils.bits import bit_mask
from repro.utils.windows import factorize, group_by_path

_ALIGN_SHIFT = 2

#: 2-bit hysteresis counter bounds.
_COUNTER_MAX = 3
_COUNTER_BITS = 2


class _TargetEntry:
    """One buffer entry: a predicted target with 2-bit hysteresis."""

    __slots__ = ("target", "counter")

    def __init__(self, target: int) -> None:
        self.target = target
        self.counter = 1

    def update(self, actual_target: int) -> None:
        if actual_target == self.target:
            if self.counter < _COUNTER_MAX:
                self.counter += 1
        elif self.counter > 0:
            self.counter -= 1
        else:
            self.target = actual_target
            self.counter = 1


class _BufferBase:
    """Shared predict/update over a lazily populated entry map."""

    #: Whether :meth:`observe_step` carries state (path-indexed buffers).
    #: The functional simulator skips non-indirect steps entirely for
    #: buffers that don't observe them.
    observes_steps = True

    def __init__(self, address_bits: int = 32) -> None:
        self._entries: dict[int | tuple, _TargetEntry] = {}
        self._address_bits = address_bits

    def _slot(self, task_addr: int):
        raise NotImplementedError

    def predict(self, task_addr: int) -> int | None:
        """Predicted target address, or None on a compulsory miss."""
        entry = self._entries.get(self._slot(task_addr))
        return entry.target if entry is not None else None

    def update(self, task_addr: int, actual_target: int) -> None:
        """Train the entry for this task/path on the actual target."""
        slot = self._slot(task_addr)
        entry = self._entries.get(slot)
        if entry is None:
            self._entries[slot] = _TargetEntry(actual_target)
        else:
            entry.update(actual_target)

    def entries_touched(self) -> int:
        """Distinct buffer slots exercised so far."""
        return len(self._entries)


class TaskTargetBuffer(_BufferBase):
    """Plain TTB: direct-mapped on task-address bits (no path correlation)."""

    observes_steps = False

    def __init__(self, index_bits: int = 11, address_bits: int = 32) -> None:
        super().__init__(address_bits)
        if index_bits < 1:
            raise PredictorConfigError("TTB needs >= 1 index bit")
        self._index_bits = index_bits

    def _slot(self, task_addr: int) -> int:
        return (task_addr >> _ALIGN_SHIFT) & bit_mask(self._index_bits)

    def observe_step(self, task_addr: int) -> None:
        """No-op: a plain TTB keeps no history. Present for API symmetry."""

    def batch_slot_ids(
        self, task_addrs: np.ndarray
    ) -> np.ndarray | None:
        """Vectorized :meth:`_slot` over a whole trace column.

        Returns dense slot ids for the batched kernel in
        :mod:`repro.sim.functional`; ids are only meaningful relative to
        each other. Only valid for a freshly constructed buffer.
        """
        slots = (
            int64_column(task_addrs) >> _ALIGN_SHIFT
        ) & bit_mask(self._index_bits)
        ids, _ = factorize(slots)
        return ids

    def storage_bits(self) -> int:
        """Full-capacity cost: a target and counter per entry."""
        return (1 << self._index_bits) * (
            self._address_bits + _COUNTER_BITS
        )


class CorrelatedTaskTargetBuffer(_BufferBase):
    """CTTB: indexed by the DOLC path fold, like the exit predictor.

    The caller must feed *every* retired task through
    :meth:`observe_step` so the path register tracks program progress, and
    call :meth:`predict`/:meth:`update` only at indirect exits.
    """

    def __init__(self, spec: DolcSpec, address_bits: int = 32) -> None:
        super().__init__(address_bits)
        self._spec = spec
        self._path: deque[int] = deque(maxlen=max(1, spec.depth))

    @property
    def spec(self) -> DolcSpec:
        """The index specification in force."""
        return self._spec

    def _slot(self, task_addr: int) -> int:
        return self._spec.index(task_addr, self._path)

    def observe_step(self, task_addr: int) -> None:
        """Shift a retired task's address into the path register."""
        if self._spec.depth:
            self._path.append(task_addr)

    def batch_slot_ids(
        self, task_addrs: np.ndarray
    ) -> np.ndarray | None:
        """Vectorized :meth:`_slot` over a whole trace column.

        The slot of step ``i`` is the DOLC fold of its address and the
        path register as of step ``i`` — the previous ``depth`` task
        addresses, since every step is fed through :meth:`observe_step`.
        That is exactly :meth:`DolcSpec.index_column`. Only valid for a
        freshly constructed buffer.
        """
        addrs = int64_column(task_addrs)
        return self._spec.index_column(addrs)

    def storage_bits(self) -> int:
        """Full-capacity cost: a target and counter per entry."""
        return self._spec.table_entries * (
            self._address_bits + _COUNTER_BITS
        )


class IdealCorrelatedTargetBuffer(_BufferBase):
    """Alias-free CTTB: unbounded, keyed by the exact path (Figure 8)."""

    def __init__(self, depth: int, address_bits: int = 32) -> None:
        super().__init__(address_bits)
        if depth < 0:
            raise PredictorConfigError("history depth must be >= 0")
        self._depth = depth
        self._path: deque[int] = deque(maxlen=depth) if depth else deque()

    def _slot(self, task_addr: int) -> tuple:
        return (task_addr, tuple(self._path))

    def observe_step(self, task_addr: int) -> None:
        """Shift a retired task's address into the path register."""
        if self._depth:
            self._path.append(task_addr)

    def batch_slot_ids(
        self, task_addrs: np.ndarray
    ) -> np.ndarray | None:
        """Vectorized :meth:`_slot` over a whole trace column.

        The slot key of step ``i`` is the task address plus the path
        register as of step ``i`` — the previous ``depth`` task addresses,
        since every step is fed through :meth:`observe_step`. Only valid
        for a freshly constructed buffer.
        """
        addrs = int64_column(task_addrs)
        return group_by_path(addrs, self._depth)

    def storage_bits(self) -> int:
        return 0  # unbounded by definition
