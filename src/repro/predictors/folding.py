"""The D-O-L-C (F) path index construction (paper §6.1–6.2, Figure 9).

A real path-based predictor cannot index its table with full task addresses.
The paper builds an *intermediate index* by concatenating:

* ``C`` low bits of the **C**\\ urrent task's address,
* ``L`` low bits of the **L**\\ ast task's address (Current − 1), and
* ``O`` low bits of each **O**\\ lder task (Current − 2 … Current − D),

then XOR-folds it into ``F`` equal sub-fields to produce the final table
index. Low-order address bits are preferred because they are the most likely
to differ between tasks, and older tasks contribute fewer bits because
recent control flow is more relevant (§6.1's two design heuristics).

Task addresses are word-aligned (4-byte instructions), so the two
always-zero low bits are stripped before bit extraction.
"""

from __future__ import annotations

import re
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import PredictorConfigError
from repro.utils.bits import bit_mask, fold_xor
from repro.utils.memo import DerivedColumnCache, int64_column

#: Path-index columns per (trace address column, spec) — every predictor
#: sharing a spec over the same trace reuses one folded column.
_INDEX_COLUMN_CACHE = DerivedColumnCache()

_SPEC_RE = re.compile(
    r"^\s*(\d+)-(\d+)-(\d+)-(\d+)\s*\(\s*(\d+)\s*\)\s*$"
)

#: Strip the always-zero byte-offset bits of word-aligned task addresses.
_ALIGN_SHIFT = 2


@dataclass(frozen=True)
class DolcSpec:
    """A path-predictor index specification, written ``D-O-L-C (F)``.

    Attributes:
        depth: Number of preceding tasks in the path (D). 0 means no path
            history: the index uses current-task bits only.
        older_bits: Bits contributed by each task older than the last (O).
        last_bits: Bits contributed by the immediately preceding task (L).
        current_bits: Bits contributed by the current task (C).
        folds: Number of XOR-folded sub-fields (F).
    """

    depth: int
    older_bits: int
    last_bits: int
    current_bits: int
    folds: int = 1

    def __post_init__(self) -> None:
        if self.depth < 0:
            raise PredictorConfigError("depth must be >= 0")
        for name in ("older_bits", "last_bits", "current_bits"):
            if getattr(self, name) < 0:
                raise PredictorConfigError(f"{name} must be >= 0")
        if self.folds < 1:
            raise PredictorConfigError("fold count must be >= 1")
        if self.depth == 0 and (self.older_bits or self.last_bits):
            raise PredictorConfigError(
                "depth 0 cannot take bits from preceding tasks"
            )
        if self.depth >= 1 and self.last_bits == 0 and self.older_bits:
            raise PredictorConfigError(
                "older tasks cannot contribute bits when the last task "
                "contributes none"
            )
        if self.intermediate_bits == 0:
            raise PredictorConfigError("index would be empty")
        if self.intermediate_bits % self.folds != 0:
            raise PredictorConfigError(
                f"intermediate index of {self.intermediate_bits} bits is "
                f"not divisible into {self.folds} folds"
            )

    @classmethod
    def parse(cls, text: str) -> "DolcSpec":
        """Parse the paper's notation, e.g. ``"6-5-8-9(3)"``.

        The four numbers are D, O, L, C; the parenthesised number is F.
        """
        match = _SPEC_RE.match(text)
        if not match:
            raise PredictorConfigError(
                f"cannot parse DOLC spec {text!r}; expected 'D-O-L-C(F)'"
            )
        d, o, l, c, f = (int(g) for g in match.groups())
        return cls(depth=d, older_bits=o, last_bits=l, current_bits=c, folds=f)

    @property
    def intermediate_bits(self) -> int:
        """Width of the intermediate index: (D−1)·O + L + C (C when D=0)."""
        if self.depth == 0:
            return self.current_bits
        return (self.depth - 1) * self.older_bits + self.last_bits \
            + self.current_bits

    @property
    def index_bits(self) -> int:
        """Width of the final, folded table index."""
        return self.intermediate_bits // self.folds

    @property
    def table_entries(self) -> int:
        """Number of entries in a table indexed by this spec."""
        return 1 << self.index_bits

    def index(self, current_addr: int, path: Sequence[int]) -> int:
        """Compute the table index for ``current_addr`` given ``path``.

        ``path`` holds the addresses of preceding tasks, most recent
        **last**; only the last ``depth`` entries are used. A shorter path
        (cold start) contributes zero bits for the missing tasks.
        """
        intermediate = (current_addr >> _ALIGN_SHIFT) & bit_mask(
            self.current_bits
        )
        position = self.current_bits
        if self.depth >= 1:
            n = len(path)
            if n >= 1:
                last = (path[n - 1] >> _ALIGN_SHIFT) & bit_mask(
                    self.last_bits
                )
                intermediate |= last << position
            position += self.last_bits
            if self.older_bits:
                older_mask = bit_mask(self.older_bits)
                for back in range(2, self.depth + 1):
                    if n >= back:
                        older = (path[n - back] >> _ALIGN_SHIFT) & older_mask
                        intermediate |= older << position
                    position += self.older_bits
        return fold_xor(intermediate, self.intermediate_bits, self.folds)

    def index_column(self, task_addrs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`index` over a whole trace at once.

        ``task_addrs[i]`` is the current address of step ``i`` and its
        path is ``task_addrs[:i]`` — the layout of every predictor that
        shifts each retired task into its path register. Returns the
        int64 column of folded table indices, bit-identical to calling
        :meth:`index` per step with a growing path.

        Instead of materialising the up-to-63-bit intermediate index,
        each contribution is folded *incrementally*: bits destined for
        absolute position ``p`` of the intermediate index land XORed at
        ``p mod index_bits`` of the output, which is algebraically the
        same fold and keeps every array operation inside int64.

        The result is memoised per (address column, spec): a sweep that
        runs several predictors with one spec over one trace folds the
        column once. The returned array is shared — do not mutate it.
        """
        return _INDEX_COLUMN_CACHE.get(
            (task_addrs,), self, lambda: self._index_column(task_addrs)
        )

    def _index_column(self, task_addrs: np.ndarray) -> np.ndarray:
        addrs = int64_column(task_addrs) >> _ALIGN_SHIFT
        n = len(addrs)
        out = np.zeros(n, dtype=np.int64)
        field_width = self.index_bits

        def fold_in(values: np.ndarray, width: int, position: int) -> None:
            # XOR a width-bit contribution at intermediate-index offset
            # ``position`` into the folded output, splitting it wherever
            # it straddles a fold boundary.
            remaining, shift = width, position
            chunk = values
            while remaining > 0:
                offset = shift % field_width
                take = min(field_width - offset, remaining)
                np.bitwise_xor(
                    out, (chunk & bit_mask(take)) << offset, out=out
                )
                chunk = chunk >> take
                shift += take
                remaining -= take

        fold_in(addrs & bit_mask(self.current_bits), self.current_bits, 0)
        position = self.current_bits
        if self.depth >= 1:
            lagged = np.zeros(n, dtype=np.int64)
            lagged[1:] = addrs[:-1] & bit_mask(self.last_bits)
            fold_in(lagged, self.last_bits, position)
            position += self.last_bits
            if self.older_bits:
                older_mask = bit_mask(self.older_bits)
                for back in range(2, self.depth + 1):
                    lagged = np.zeros(n, dtype=np.int64)
                    if back < n:
                        lagged[back:] = addrs[:-back] & older_mask
                    fold_in(lagged, self.older_bits, position)
                    position += self.older_bits
        return out

    def __str__(self) -> str:
        return (
            f"{self.depth}-{self.older_bits}-{self.last_bits}-"
            f"{self.current_bits}({self.folds})"
        )
