"""Return address stack (paper §4.2, §5.3).

"In Multiscalar processors, as in scalar processors, a reasonably deep RAS
is nearly perfect in predicting return addresses." The stack is a circular
hardware buffer: pushing beyond capacity overwrites the oldest entry, and
popping an empty stack yields no prediction.
"""

from __future__ import annotations

from repro.errors import PredictorConfigError


class ReturnAddressStack:
    """A fixed-depth circular return-address stack."""

    def __init__(self, depth: int = 32, address_bits: int = 32) -> None:
        if depth < 1:
            raise PredictorConfigError("RAS depth must be >= 1")
        self._depth = depth
        self._address_bits = address_bits
        self._entries: list[int] = [0] * depth
        self._top = 0  # index of the next free slot
        self._count = 0

    @property
    def depth(self) -> int:
        """Capacity of the stack."""
        return self._depth

    def __len__(self) -> int:
        return self._count

    def push(self, address: int) -> None:
        """Push a return address; overwrites the oldest entry when full."""
        self._entries[self._top] = address
        self._top = (self._top + 1) % self._depth
        if self._count < self._depth:
            self._count += 1

    def pop(self) -> int | None:
        """Pop and return the youngest address, or None when empty."""
        if self._count == 0:
            return None
        self._top = (self._top - 1) % self._depth
        self._count -= 1
        return self._entries[self._top]

    def peek(self) -> int | None:
        """Return the youngest address without popping, or None when empty."""
        if self._count == 0:
            return None
        return self._entries[self._top - 1]

    def clear(self) -> None:
        """Empty the stack (used on context resets in tests)."""
        self._top = 0
        self._count = 0

    def storage_bits(self) -> int:
        """Hardware cost: one address per slot."""
        return self._depth * self._address_bits
