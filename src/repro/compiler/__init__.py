"""The Multiscalar "compiler": partitions scalar CFGs into tasks.

The paper's tasks are produced by the Wisconsin Multiscalar compiler from
ordinary sequential programs. This package reproduces that role: it takes a
:class:`repro.cfg.graph.ProgramCFG`, partitions every function into tasks
that obey the four-exit header limit, assigns addresses, and emits both a
:class:`repro.isa.program.MultiscalarProgram` (the static executable) and a
:class:`CompiledProgram` (the executable plus the block-level structures the
trace executor needs).
"""

from repro.compiler.partitioner import TaskPartitioner, PartitionConfig
from repro.compiler.compiled import CompiledBlock, CompiledProgram
from repro.compiler.pipeline import compile_program

__all__ = [
    "TaskPartitioner",
    "PartitionConfig",
    "CompiledBlock",
    "CompiledProgram",
    "compile_program",
]
