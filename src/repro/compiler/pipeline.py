"""The compile pipeline: ProgramCFG -> partition -> layout -> CompiledProgram.

Two passes, like any assembler: the first pass partitions every function and
assigns byte addresses to blocks (4 bytes per instruction); the second builds
task headers, which need the task addresses of exit targets, callee entries
and return points.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.basicblock import TerminatorKind
from repro.cfg.graph import ControlFlowGraph, ProgramCFG
from repro.compiler.compiled import CompiledBlock, CompiledProgram
from repro.compiler.partitioner import (
    PartitionConfig,
    Region,
    TaskPartitioner,
)
from repro.errors import PartitionError
from repro.isa.controlflow import ControlFlowType
from repro.isa.program import MultiscalarProgram
from repro.isa.task import StaticTask, TaskExit, TaskHeader

_BYTES_PER_INSTRUCTION = 4


@dataclass
class _LaidOutFunction:
    """Partitioned function with block addresses assigned."""

    cfg: ControlFlowGraph
    regions: list[Region]
    block_address: dict[str, int]


def compile_program(
    program_cfg: ProgramCFG,
    name: str = "program",
    config: PartitionConfig | None = None,
) -> CompiledProgram:
    """Compile a scalar program CFG into a Multiscalar executable.

    Block labels must be globally unique across functions (the synthetic
    generator prefixes labels with the function name).
    """
    config = config or PartitionConfig()
    program_cfg.validate()

    laid_out, block_address = _layout(program_cfg, config)
    function_entry_task = {
        fn.cfg.function_name: block_address[fn.cfg.entry_label]
        for fn in laid_out
    }

    tasks: list[StaticTask] = []
    blocks: dict[str, CompiledBlock] = {}
    task_leader: dict[int, str] = {}
    for laid in laid_out:
        for region in laid.regions:
            task = _build_task(
                laid, region, block_address, function_entry_task
            )
            tasks.append(task)
            task_leader[task.address] = region.leader
            _compile_region_blocks(
                laid, region, task, block_address, blocks
            )

    entry = function_entry_task[program_cfg.main]
    executable = MultiscalarProgram(name=name, tasks=tasks, entry=entry)
    executable.tfg.validate()
    return CompiledProgram(
        program=executable,
        blocks=blocks,
        function_entry={
            fn.cfg.function_name: fn.cfg.entry_label for fn in laid_out
        },
        task_leader=task_leader,
    )


def _layout(
    program_cfg: ProgramCFG, config: PartitionConfig
) -> tuple[list[_LaidOutFunction], dict[str, int]]:
    """Partition all functions and assign global block addresses."""
    laid_out: list[_LaidOutFunction] = []
    block_address: dict[str, int] = {}
    cursor = 0x1000  # leave a null page, as a linker would
    for cfg in program_cfg.functions():
        regions = TaskPartitioner(cfg, config).partition()
        addresses: dict[str, int] = {}
        for region in regions:
            for label in region.blocks:
                if label in block_address:
                    raise PartitionError(
                        f"block label {label!r} is not globally unique"
                    )
                addresses[label] = cursor
                block_address[label] = cursor
                cursor += (
                    cfg.block(label).instruction_count
                    * _BYTES_PER_INSTRUCTION
                )
        laid_out.append(
            _LaidOutFunction(
                cfg=cfg, regions=regions, block_address=addresses
            )
        )
    return laid_out, block_address


def _build_task(
    laid: _LaidOutFunction,
    region: Region,
    block_address: dict[str, int],
    function_entry_task: dict[str, int],
) -> StaticTask:
    """Create the StaticTask (header included) for one region."""
    cfg = laid.cfg
    exits: list[TaskExit] = []
    for descriptor in region.exit_descriptors:
        kind = descriptor[0]
        if kind == "branch":
            exits.append(
                TaskExit(
                    cf_type=ControlFlowType.BRANCH,
                    target=block_address[descriptor[1]],
                )
            )
        elif kind == "call":
            _, callee, return_label = descriptor
            exits.append(
                TaskExit(
                    cf_type=ControlFlowType.CALL,
                    target=function_entry_task[callee],
                    return_address=block_address[return_label],
                )
            )
        elif kind == "return":
            exits.append(TaskExit(cf_type=ControlFlowType.RETURN))
        elif kind == "ibranch":
            exits.append(TaskExit(cf_type=ControlFlowType.INDIRECT_BRANCH))
        elif kind == "icall":
            block = cfg.block(descriptor[1])
            exits.append(
                TaskExit(
                    cf_type=ControlFlowType.INDIRECT_CALL,
                    return_address=block_address[
                        block.terminator.successors[0]
                    ],
                )
            )
        else:  # pragma: no cover - descriptor forms are produced above
            raise PartitionError(f"unknown exit descriptor {descriptor!r}")
    # The create mask unions every register any block of the task may
    # write (paper §2.1: "which registers may have new values created
    # within the task"); the use mask unions possible reads and feeds the
    # dependence-aware timing model.
    create_mask = 0
    use_mask = 0
    for label in region.blocks:
        annotations = cfg.block(label).annotations
        create_mask |= annotations.get("defs_mask", 0)
        use_mask |= annotations.get("uses_mask", 0)
    return StaticTask(
        address=block_address[region.leader],
        header=TaskHeader(
            exits=tuple(exits), create_mask=create_mask & 0xFFFF
        ),
        instruction_count=sum(
            cfg.block(label).instruction_count for label in region.blocks
        ),
        internal_branch_count=len(region.internal_branch_blocks),
        use_mask=use_mask & 0xFFFF,
        name=f"{cfg.function_name}:{region.leader}",
    )


def _compile_region_blocks(
    laid: _LaidOutFunction,
    region: Region,
    task: StaticTask,
    block_address: dict[str, int],
    out: dict[str, CompiledBlock],
) -> None:
    """Create CompiledBlocks for one region, resolving exit indices."""
    cfg = laid.cfg
    descriptor_index = {
        descriptor: index
        for index, descriptor in enumerate(region.exit_descriptors)
    }
    member = set(region.blocks)
    internal_branch = set(region.internal_branch_blocks)
    for label in region.blocks:
        block = cfg.block(label)
        terminator = block.terminator
        kind = terminator.kind
        successor_exit_index: tuple[int | None, ...] = ()
        terminator_exit_index: int | None = None
        if kind is TerminatorKind.RETURN:
            terminator_exit_index = descriptor_index[("return",)]
        elif kind is TerminatorKind.CALL:
            terminator_exit_index = descriptor_index[
                ("call", terminator.callee, terminator.successors[0])
            ]
        elif kind is TerminatorKind.INDIRECT_JUMP:
            terminator_exit_index = descriptor_index[("ibranch", label)]
        elif kind is TerminatorKind.INDIRECT_CALL:
            terminator_exit_index = descriptor_index[("icall", label)]
        else:  # JUMP / COND_BRANCH
            successor_exit_index = tuple(
                descriptor_index[("branch", successor)]
                if (successor not in member or successor == region.leader)
                else None
                for successor in terminator.successors
            )
        out[label] = CompiledBlock(
            label=label,
            function=cfg.function_name,
            address=block_address[label],
            task_address=task.address,
            instruction_count=block.instruction_count,
            terminator=terminator,
            successor_exit_index=successor_exit_index,
            terminator_exit_index=terminator_exit_index,
            is_internal_branch=label in internal_branch,
        )
