"""Task partitioning: group basic blocks into tasks with at most four exits.

The partitioner mirrors the constraints of the paper's executable format
(§2.1): a task is an arbitrary connected sub-graph of a function's CFG, every
control transfer leaving the task is one of at most four *exit points*, call
/ return / indirect transfers always terminate tasks, and every exit target
must itself be the start of a task.

Algorithm (per function, reachable blocks only):

1. Seed the *leader* set — blocks that must start a task: the function entry,
   every successor of a task-ending terminator (call return points, indirect
   jump case targets), and every block with two or more predecessors.
   Because multi-predecessor blocks are leaders, every non-leader has exactly
   one predecessor, so tasks are trees rooted at leaders.
2. Grow a region from each leader over arcs to non-leader blocks.
3. Enforce limits: while any region has more than four distinct exit points
   or more than ``max_blocks_per_task`` blocks, promote its deepest
   non-leader block to a leader and regrow. Promotion strictly shrinks a
   region and a single-block region has at most two exit points, so this
   terminates.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.cfg.analysis import reachable_blocks
from repro.cfg.basicblock import TerminatorKind
from repro.cfg.graph import ControlFlowGraph
from repro.errors import PartitionError
from repro.isa.controlflow import MAX_EXITS_PER_TASK

#: Exit descriptor: a hashable identity for one task exit point.
#: Forms: ("branch", target_label), ("call", callee, return_label),
#: ("return",), ("ibranch", block_label), ("icall", block_label).
ExitDescriptor = tuple


@dataclass(frozen=True)
class PartitionConfig:
    """Tunables for the partitioner.

    Attributes:
        max_blocks_per_task: Upper bound on blocks grouped into one task.
            Small caps produce many small tasks (compress-like); large caps
            produce fewer, bigger tasks.
        max_exits_per_task: Header exit limit; the ISA fixes this at 4.
    """

    max_blocks_per_task: int = 8
    max_exits_per_task: int = MAX_EXITS_PER_TASK

    def __post_init__(self) -> None:
        if self.max_blocks_per_task < 1:
            raise PartitionError("max_blocks_per_task must be >= 1")
        if not 1 <= self.max_exits_per_task <= MAX_EXITS_PER_TASK:
            raise PartitionError(
                f"max_exits_per_task must be in 1..{MAX_EXITS_PER_TASK}"
            )


@dataclass
class Region:
    """One task-to-be: a leader and the blocks grouped under it.

    ``blocks`` is in BFS order from the leader; ``exit_descriptors`` is in
    first-encounter order and becomes the header's exit list order.
    """

    leader: str
    blocks: list[str]
    exit_descriptors: list[ExitDescriptor]
    internal_branch_blocks: list[str]


class TaskPartitioner:
    """Partitions one function CFG into task regions."""

    def __init__(self, cfg: ControlFlowGraph, config: PartitionConfig) -> None:
        self._cfg = cfg
        self._config = config
        self._reachable = reachable_blocks(cfg)

    def partition(self) -> list[Region]:
        """Return the task regions of this function, in layout order.

        Layout order is: the entry's region first, then remaining regions in
        discovery (BFS over the region graph) order.
        """
        leaders = self._initial_leaders()
        while True:
            regions = self._grow_regions(leaders)
            oversized = self._find_violation(regions)
            if oversized is None:
                return self._layout_order(regions)
            promoted = self._pick_split_block(oversized)
            leaders.add(promoted)

    def _initial_leaders(self) -> set[str]:
        """Blocks that must start a task, before any split promotions."""
        leaders = {self._cfg.entry_label}
        pred_counts = {label: 0 for label in self._reachable}
        for label in self._reachable:
            block = self._cfg.block(label)
            for successor in block.terminator.successors:
                if successor in pred_counts:
                    pred_counts[successor] += 1
            if block.ends_task:
                # Call return points and indirect case targets begin tasks.
                leaders.update(
                    s for s in block.terminator.successors
                    if s in self._reachable
                )
        leaders.update(
            label for label, count in pred_counts.items() if count >= 2
        )
        return leaders

    def _grow_regions(self, leaders: set[str]) -> dict[str, Region]:
        """Grow a region from every reachable leader."""
        regions: dict[str, Region] = {}
        assigned: set[str] = set()
        for leader in sorted(leaders & self._reachable):
            region = self._grow_one(leader, leaders)
            regions[leader] = region
            for label in region.blocks:
                if label in assigned and label != leader:
                    raise PartitionError(
                        f"block {label!r} assigned to two regions"
                    )
                assigned.add(label)
        unassigned = self._reachable - assigned
        if unassigned:
            raise PartitionError(
                f"blocks never assigned to a region: {sorted(unassigned)}"
            )
        return regions

    def _grow_one(self, leader: str, leaders: set[str]) -> Region:
        """BFS from ``leader``, absorbing non-leader blocks, collecting exits."""
        blocks = [leader]
        member = {leader}
        descriptors: list[ExitDescriptor] = []
        seen_descriptors: set[ExitDescriptor] = set()
        internal_branches: list[str] = []
        queue = deque([leader])

        def note(descriptor: ExitDescriptor) -> None:
            if descriptor not in seen_descriptors:
                seen_descriptors.add(descriptor)
                descriptors.append(descriptor)

        while queue:
            label = queue.popleft()
            block = self._cfg.block(label)
            terminator = block.terminator
            kind = terminator.kind
            if kind is TerminatorKind.RETURN:
                note(("return",))
            elif kind is TerminatorKind.CALL:
                note(("call", terminator.callee, terminator.successors[0]))
            elif kind is TerminatorKind.INDIRECT_JUMP:
                note(("ibranch", label))
            elif kind is TerminatorKind.INDIRECT_CALL:
                note(("icall", label))
            else:  # JUMP or COND_BRANCH: arcs may be internal or exits
                internal_arcs = 0
                for successor in terminator.successors:
                    if successor in leaders or successor in member:
                        # Arc to a leader (or back into the region's own
                        # leader) leaves the task.
                        if successor in member and successor != leader:
                            internal_arcs += 1
                            continue
                        note(("branch", successor))
                    else:
                        member.add(successor)
                        blocks.append(successor)
                        queue.append(successor)
                        internal_arcs += 1
                if (
                    kind is TerminatorKind.COND_BRANCH
                    and internal_arcs == len(terminator.successors)
                ):
                    internal_branches.append(label)
        return Region(
            leader=leader,
            blocks=blocks,
            exit_descriptors=descriptors,
            internal_branch_blocks=internal_branches,
        )

    def _find_violation(self, regions: dict[str, Region]) -> Region | None:
        """Return some region violating the exit or size limit, else None."""
        for leader in sorted(regions):
            region = regions[leader]
            if len(region.exit_descriptors) > self._config.max_exits_per_task:
                return region
            if len(region.blocks) > self._config.max_blocks_per_task:
                return region
        return None

    def _pick_split_block(self, region: Region) -> str:
        """Choose the block to promote to leader when splitting ``region``.

        The last block in BFS order is the farthest from the leader;
        promoting it peels work off the bottom of the region.
        """
        for label in reversed(region.blocks):
            if label != region.leader:
                return label
        raise PartitionError(
            f"single-block region {region.leader!r} violates task limits; "
            "this indicates an ISA-incompatible basic block"
        )

    def _layout_order(self, regions: dict[str, Region]) -> list[Region]:
        """Order regions: entry region first, then BFS over region targets."""
        order: list[Region] = []
        visited: set[str] = set()
        queue = deque([self._cfg.entry_label])
        while queue:
            leader = queue.popleft()
            if leader in visited or leader not in regions:
                continue
            visited.add(leader)
            region = regions[leader]
            order.append(region)
            for label in region.blocks:
                for successor in self._cfg.block(label).terminator.successors:
                    if successor in regions and successor not in visited:
                        queue.append(successor)
        # Regions only reachable through calls/returns from elsewhere keep a
        # stable order after the connected ones.
        for leader in sorted(regions):
            if leader not in visited:
                order.append(regions[leader])
                visited.add(leader)
        return order
