"""Compiled-program structures shared by the compiler and the executor."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.basicblock import Terminator
from repro.errors import TaskFormatError
from repro.isa.program import MultiscalarProgram


@dataclass
class CompiledBlock:
    """A basic block after task assignment and address layout.

    Attributes:
        label: Globally unique block label.
        function: Name of the function this block belongs to.
        address: Byte address of the block's first instruction.
        task_address: Start address of the task containing this block.
        instruction_count: Instructions retired when the block executes.
        terminator: The block's terminator (with behaviours attached).
        successor_exit_index: For JUMP/COND_BRANCH terminators, one entry per
            successor arc: the task-header exit index if the arc leaves the
            task, or ``None`` for an internal arc.
        terminator_exit_index: For CALL/RETURN/INDIRECT_* terminators, the
            task-header exit index of the transfer (always an exit).
        is_internal_branch: True for conditional branches resolved entirely
            inside the task (both arcs internal) — these are the branches
            intra-task speculation predicts.
    """

    label: str
    function: str
    address: int
    task_address: int
    instruction_count: int
    terminator: Terminator
    successor_exit_index: tuple[int | None, ...] = ()
    terminator_exit_index: int | None = None
    is_internal_branch: bool = False


@dataclass
class CompiledProgram:
    """A Multiscalar executable plus the block-level map for execution.

    Attributes:
        program: The static executable (tasks, headers, TFG).
        blocks: All compiled blocks, keyed by globally unique label.
        function_entry: Function name -> entry block label.
        task_leader: Task start address -> leader block label.
    """

    program: MultiscalarProgram
    blocks: dict[str, CompiledBlock]
    function_entry: dict[str, str]
    task_leader: dict[int, str] = field(default_factory=dict)

    def entry_block(self, function: str) -> CompiledBlock:
        """Return the compiled entry block of ``function``."""
        try:
            label = self.function_entry[function]
        except KeyError:
            raise TaskFormatError(f"no compiled function {function!r}") from None
        return self.blocks[label]

    def block(self, label: str) -> CompiledBlock:
        """Return the compiled block with the given label."""
        try:
            return self.blocks[label]
        except KeyError:
            raise TaskFormatError(f"no compiled block {label!r}") from None
