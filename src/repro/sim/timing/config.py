"""Timing-model parameters."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PredictorConfigError


@dataclass(frozen=True)
class TimingConfig:
    """Parameters of the task-granularity Multiscalar timing model.

    The defaults model the paper's evaluation machine: "four 2-way
    out-of-order processing units" (§7) with single-cycle task dispatch.

    Attributes:
        n_units: Processing units in the ring.
        issue_width: Peak instructions per cycle per unit.
        task_startup_cycles: Pipeline fill cost when a task starts on a unit
            (header load, first fetch).
        intra_mispredict_penalty: Cycles lost per intra-task branch
            mispredict (bimodal predictor, §2.2).
        forward_fraction: Fraction of a task's execution that must trail its
            program-order predecessor, modelling inter-task register/memory
            forwarding. 0 = fully independent tasks; 1 = fully serial.
        dispatch_interval: Cycles between successive task dispatches while
            predictions flow (the sequencer's throughput).
        task_mispredict_penalty: Extra cycles to redirect the sequencer
            after a mispredicted task resolves at completion.
        commit_interval: Minimum cycles between successive task commits
            (head-pointer bump rate).
        dependence_aware: When True, the forwarding stall applies only
            between tasks with an actual register dependence (predecessor's
            header create mask intersects the successor's use mask);
            independent neighbours overlap freely. When False (default,
            matching the calibrated Table 4 model) every task pair pays the
            forwarding fraction.
    """

    n_units: int = 4
    issue_width: int = 2
    task_startup_cycles: int = 2
    intra_mispredict_penalty: int = 3
    forward_fraction: float = 0.62
    dispatch_interval: int = 1
    task_mispredict_penalty: int = 3
    commit_interval: int = 1
    dependence_aware: bool = False

    def __post_init__(self) -> None:
        if self.n_units < 1:
            raise PredictorConfigError("need >= 1 processing unit")
        if self.issue_width < 1:
            raise PredictorConfigError("issue width must be >= 1")
        if not 0.0 <= self.forward_fraction <= 1.0:
            raise PredictorConfigError(
                "forward_fraction must be in [0, 1]"
            )
        for name in (
            "task_startup_cycles",
            "intra_mispredict_penalty",
            "dispatch_interval",
            "task_mispredict_penalty",
            "commit_interval",
        ):
            if getattr(self, name) < 0:
                raise PredictorConfigError(f"{name} must be >= 0")
