"""Event-compressed timing evaluation as a max-plus (tropical) scan.

The task-granularity timing model (:mod:`repro.sim.timing.machine`) is a
chain of ``max``/``+`` recurrences per dynamic task::

    start_i  = max(dispatch_i, unit_free_i)
    finish_i = max(start_i + exec_i, finish_{i-1} + forward_i)
    commit_i = max(finish_i, commit_{i-1} + commit_interval)

with ``dispatch_{i+1}`` set by the prediction outcome (``+ interval`` on a
correct prediction, ``finish_i`` on a gated one, ``finish_i + penalty`` on
a mispredict). Once the per-task prediction outcomes are known — the
batched predictors supply them as a column — the whole chain is linear in
the *max-plus semiring*, so it can be evaluated without a per-task Python
loop.

Two exact reductions make that possible:

* **Ring elimination.** ``unit_free_i`` is the commit time of the task
  that last ran on the same unit, ``commit_{i-N}`` for an ``N``-unit
  ring, *except* that a squash clamps the unit-free times down to the
  restart point. The clamp is removable: if any task in ``[i-N, i-1]``
  mispredicted, ``dispatch_i`` already dominates the clamped unit-free
  time (dispatch is monotone and a mispredict at ``j`` forces
  ``dispatch_{j+1} = finish_j + penalty``, an upper bound of every
  clamped entry), so ``start_i = dispatch_i``; otherwise no clamp was
  live in the window and ``start_i = max(dispatch_i, commit_{i-N})``.
  The window condition is one cumulative-sum mask.

* **Chunked scan.** With state vector ``(dispatch, finish, commit,
  commit_{last N steps})`` each task is a max-plus matrix. Composing
  ``K`` of them per chunk *columnwise across all chunks at once* (pass
  1), propagating chunk-entry states sequentially (pass 2, ``n/K`` cheap
  steps), then re-running values inside chunks (pass 3) costs
  ``O(n * (3+N))`` numpy work with only ``K + n/K + K`` Python
  iterations — minimised at ``K ≈ sqrt(n)``.

The scan is validated bit-identical to the stepped reference over every
predictor scheme and several ring/penalty configurations by
``tests/test_sim_timing_vectorized.py``.
"""

from __future__ import annotations

import numpy as np

#: "Minus infinity" of the max-plus semiring. Chosen so one addition of
#: two sentinels lands exactly on INT64_MIN without wrapping.
_NEG = np.int64(-(1 << 62))

#: Per-step prediction outcome codes.
CODE_CORRECT = 0
CODE_GATED = 1
CODE_MISPREDICT = 2


def mispredict_window_mask(codes: np.ndarray, n_units: int) -> np.ndarray:
    """True where any of the previous ``n_units`` steps mispredicted.

    This is the ring-elimination condition: inside the mask the unit-free
    time is dominated by the dispatch chain, outside it the unit frees
    exactly at ``commit_{i-n_units}``.
    """
    n = len(codes)
    mispredicts = (codes == CODE_MISPREDICT).astype(np.int64)
    cumulative = np.concatenate(([0], np.cumsum(mispredicts)))
    positions = np.arange(n)
    window_lo = np.maximum(positions - n_units, 0)
    return (cumulative[positions] - cumulative[window_lo]) > 0


def max_plus_timing_scan(
    exec_cycles: np.ndarray,
    forward_stalls: np.ndarray,
    codes: np.ndarray,
    n_units: int,
    dispatch_interval: int,
    mispredict_penalty: int,
    commit_interval: int,
) -> tuple[int, int]:
    """Evaluate the timing recurrences over a whole trace at once.

    ``exec_cycles`` and ``forward_stalls`` are per-task cycle columns;
    ``codes`` holds :data:`CODE_CORRECT` / :data:`CODE_GATED` /
    :data:`CODE_MISPREDICT` per task. Returns ``(total_cycles,
    mispredict_stall_cycles)``, bit-identical to the stepped model.
    """
    n = len(exec_cycles)
    if n == 0:
        return 0, 0
    ring = int(n_units)
    d_step = np.int64(dispatch_interval)
    penalty = np.int64(mispredict_penalty)
    c_step = np.int64(commit_interval)
    masked = mispredict_window_mask(codes, ring)

    # Chunk geometry: K a multiple of n_units (the unit-slot rotation
    # must stay aligned at chunk boundaries), sized near sqrt(n).
    chunk = int(round((n / 6) ** 0.5)) // ring * ring
    chunk = max(chunk, ring)
    n_chunks = -(-n // chunk)
    padded = n_chunks * chunk
    state_dim = 3 + ring  # (dispatch, finish, commit, u_0 .. u_{N-1})

    # Padding steps are exact no-ops: exec = -inf kills the start term,
    # zero forward/commit/dispatch increments freeze the chains, and the
    # mask guards the unit term against sentinel arithmetic.
    exec_col = np.full(padded, _NEG, dtype=np.int64)
    exec_col[:n] = exec_cycles
    forward_col = np.zeros(padded, dtype=np.int64)
    forward_col[:n] = forward_stalls
    code_col = np.full(padded, CODE_CORRECT, dtype=np.int64)
    code_col[:n] = codes
    mask_col = np.ones(padded, dtype=bool)
    mask_col[:n] = masked
    commit_step_col = np.zeros(padded, dtype=np.int64)
    commit_step_col[:n] = c_step
    dispatch_step_col = np.zeros(padded, dtype=np.int64)
    dispatch_step_col[:n] = d_step

    # Per-step derived columns, computed once so the scan loops touch the
    # minimum operation count. ``exec_unit_col`` folds the window mask
    # into the unit term (masked steps contribute -inf); ``penalty_col``
    # folds the outcome codes into the dispatch update.
    exec_unit_col = np.where(mask_col, _NEG, exec_col)
    correct_col = code_col == CODE_CORRECT
    penalty_col = np.where(
        code_col == CODE_MISPREDICT, penalty, np.int64(0)
    )

    shape_2d = (n_chunks, chunk)

    def cols(values: np.ndarray, width: int) -> list[np.ndarray]:
        # Pre-sliced per-step views: list indexing inside the scan loops
        # is much cheaper than repeated 2-D slicing.
        grid = values.reshape(n_chunks, chunk, 1)
        if width == 1:
            return [grid[:, k] for k in range(chunk)]
        return [grid[:, k, 0] for k in range(chunk)]

    exec_b, exec_unit_b = cols(exec_col, 1), cols(exec_unit_col, 1)
    forward_b = cols(forward_col, 1)
    commit_step_b = cols(commit_step_col, 1)
    dispatch_step_b = cols(dispatch_step_col, 1)
    correct_b, penalty_b = cols(correct_col, 1), cols(penalty_col, 1)

    # Pass 1: compose each chunk's max-plus coefficients, columnwise
    # across all chunks. coef[j] maps entry-state component j to the
    # output; a "unit vector" is the max-plus identity row.
    def unit(component: int) -> np.ndarray:
        row = np.full((n_chunks, state_dim), _NEG, dtype=np.int64)
        row[:, component] = 0
        return row

    coef_d, coef_f, coef_c = unit(0), unit(1), unit(2)
    unit_coefs = [unit(3 + slot) for slot in range(ring)]
    for k in range(chunk):
        slot = k % ring
        new_f = np.maximum(
            np.maximum(
                coef_d + exec_b[k], unit_coefs[slot] + exec_unit_b[k]
            ),
            coef_f + forward_b[k],
        )
        new_c = np.maximum(new_f, coef_c + commit_step_b[k])
        new_d = np.where(
            correct_b[k],
            coef_d + dispatch_step_b[k],
            new_f + penalty_b[k],
        )
        coef_d, coef_f, coef_c = new_d, new_f, new_c
        unit_coefs[slot] = new_c

    # Pass 2: propagate the entry state of each chunk sequentially.
    coefs = np.stack([coef_d, coef_f, coef_c] + unit_coefs, axis=1)
    mats = list(coefs)
    states = np.empty((n_chunks + 1, state_dim), dtype=np.int64)
    states[0] = 0
    scratch = np.empty((state_dim, state_dim), dtype=np.int64)
    for chunk_index, mat in enumerate(mats):
        np.add(mat, states[chunk_index], out=scratch)
        scratch.max(axis=1, out=states[chunk_index + 1])

    # Pass 3: re-run the recurrence on values inside every chunk at once
    # to recover the per-step dispatch/finish needed for stall accounting.
    exec_v, exec_unit_v = cols(exec_col, 0), cols(exec_unit_col, 0)
    forward_v = cols(forward_col, 0)
    commit_step_v = cols(commit_step_col, 0)
    dispatch_step_v = cols(dispatch_step_col, 0)
    correct_v, penalty_v = cols(correct_col, 0), cols(penalty_col, 0)
    dispatch = states[:n_chunks, 0].copy()
    finish = states[:n_chunks, 1].copy()
    commit = states[:n_chunks, 2].copy()
    unit_vals = [states[:n_chunks, 3 + slot].copy() for slot in range(ring)]
    finish_all = np.empty(shape_2d, dtype=np.int64)
    dispatch_all = np.empty(shape_2d, dtype=np.int64)
    for k in range(chunk):
        slot = k % ring
        dispatch_all[:, k] = dispatch
        new_f = np.maximum(
            np.maximum(
                dispatch + exec_v[k], unit_vals[slot] + exec_unit_v[k]
            ),
            finish + forward_v[k],
        )
        new_c = np.maximum(new_f, commit + commit_step_v[k])
        new_d = np.where(
            correct_v[k], dispatch + dispatch_step_v[k], new_f + penalty_v[k]
        )
        finish_all[:, k] = new_f
        dispatch, finish, commit = new_d, new_f, new_c
        unit_vals[slot] = new_c

    total_cycles = int(states[n_chunks, 2])
    finish_flat = finish_all.reshape(-1)[:n]
    dispatch_flat = dispatch_all.reshape(-1)[:n]
    missed = codes == CODE_MISPREDICT
    stalls = int(
        np.maximum(
            0,
            finish_flat[missed]
            + penalty
            - dispatch_flat[missed]
            - d_step,
        ).sum()
    )
    return total_cycles, stalls
