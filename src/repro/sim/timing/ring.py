"""The circular queue of processing units (paper §2.2, Figure 2).

"The processing units are arranged in a ring [...] The ring operates as a
circular queue with a head and a tail pointer. Tasks commit in strictly FIFO
order." For the task-granularity model the ring only needs to answer one
question per dispatch: when does the unit about to receive task *i* become
free — i.e., when did its previous occupant (task *i − n_units*) commit?
"""

from __future__ import annotations

from repro.errors import SimulationError


class ProcessingRing:
    """Tracks per-unit commit times for round-robin task placement."""

    def __init__(self, n_units: int) -> None:
        if n_units < 1:
            raise SimulationError("a ring needs at least one unit")
        self._n_units = n_units
        self._unit_free_at = [0] * n_units
        self._next_unit = 0
        self._last_commit = 0

    @property
    def n_units(self) -> int:
        """Number of processing units in the ring."""
        return self._n_units

    @property
    def last_commit_time(self) -> int:
        """Cycle at which the most recently committed task retired."""
        return self._last_commit

    def unit_free_time(self) -> int:
        """Cycle at which the unit next in round-robin order is free."""
        return self._unit_free_at[self._next_unit]

    def occupy_and_commit(self, commit_time: int) -> None:
        """Advance the tail onto the next unit; record when it will retire.

        In the analytic model a task's unit is busy from dispatch until the
        task commits, so recording the commit time both occupies the unit
        and schedules its release.
        """
        if commit_time < self._last_commit:
            raise SimulationError(
                "tasks must commit in FIFO order "
                f"({commit_time} < {self._last_commit})"
            )
        self._unit_free_at[self._next_unit] = commit_time
        self._next_unit = (self._next_unit + 1) % self._n_units
        self._last_commit = commit_time

    def squash_speculative(self, restart_time: int) -> None:
        """Free every unit holding squashed (uncommitted) work.

        After a task misprediction resolves, all younger tasks are
        discarded; their units become available at the restart time.
        """
        for unit in range(self._n_units):
            if self._unit_free_at[unit] > restart_time:
                self._unit_free_at[unit] = restart_time
