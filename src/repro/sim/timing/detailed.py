"""Cycle-stepped detailed timing model.

The analytic model in :mod:`repro.sim.timing.machine` computes task times
with a closed-form recurrence. This module simulates the same machine
cycle by cycle with explicit microarchitectural state — a global sequencer
with a dispatch port, processing units with busy/stalled status, a FIFO
commit port, and squash handling — the way the paper's "detailed timing
simulator" worked. It is slower but reports occupancy statistics the
analytic model cannot (unit utilisation, window occupancy), and serves as
a cross-check: both models must agree on IPC to within a modest margin
(enforced by tests).

Model per task, as in the analytic version: execution takes
``startup + ceil(insns / width) + intra_mispredicts * penalty`` cycles; a
task cannot complete until its program-order predecessor has run the
forwarding fraction of its own execution; commit is FIFO at one task per
``commit_interval``; a task mispredict redirects the sequencer when the
mispredicted task completes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.predictors.base import NextTaskPredictor
from repro.sim.timing.config import TimingConfig
from repro.synth.workloads import Workload

_IDLE, _EXECUTING, _WAIT_FORWARD, _DONE = range(4)


class _Unit:
    """One processing unit's cycle-visible state."""

    __slots__ = ("state", "record", "remaining", "busy_cycles")

    def __init__(self) -> None:
        self.state = _IDLE
        self.record = -1
        self.remaining = 0
        self.busy_cycles = 0


@dataclass(frozen=True)
class DetailedTimingResult:
    """Outcome of a cycle-stepped run.

    Beyond the analytic model's counters, reports machine-occupancy
    statistics gathered per cycle.
    """

    cycles: int
    instructions: int
    tasks: int
    task_mispredicts: int
    unit_utilisation: float
    mean_window_occupancy: float

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0


def simulate_timing_detailed(
    workload: Workload,
    predictor: NextTaskPredictor,
    config: TimingConfig | None = None,
    limit: int | None = None,
    max_cycles: int | None = None,
    vectorize: bool = True,
) -> DetailedTimingResult:
    """Replay a trace through the cycle-stepped machine model.

    With ``vectorize=True`` (default) the loop advances with
    event-compressed cycle skips: between two machine events every
    cycle is a no-op for every phase, so the span is accounted in one
    jump (busy counters, occupancy statistics and remaining-cycle
    decrements scale by the span length) and only event cycles run the
    phase logic. ``vectorize=False`` steps every cycle; both modes are
    exactly equivalent, event cycles execute identical phase code.
    """
    config = config or TimingConfig()
    trace = workload.trace if limit is None else workload.trace.head(limit)
    task_addrs = trace.task_addr.tolist()
    actual_exits = trace.exit_index.tolist()
    cf_codes = trace.cf_type.tolist()
    next_addrs = trace.next_addr.tolist()
    instructions = trace.instructions.tolist()
    intra_misses = trace.internal_mispredicts.tolist()
    n_records = len(task_addrs)
    if max_cycles is None:
        # Generous ceiling: fully serial execution plus penalties.
        max_cycles = 50 * sum(instructions) + 10_000

    exec_cycles = [
        config.task_startup_cycles
        + -(-instructions[i] // config.issue_width)
        + intra_misses[i] * config.intra_mispredict_penalty
        for i in range(n_records)
    ]
    # Cycle at which each task's forwarding obligation to its successor is
    # met: after it has executed (1 - forward_fraction) of nothing... the
    # successor may finish only after predecessor_finish + fraction of the
    # successor's own execution has elapsed past it. We implement the same
    # rule as the analytic model: finish_i >= finish_{i-1} +
    # forward_fraction * exec_i, as a WAIT_FORWARD stall at the end of
    # execution.
    finish_time = [-1] * n_records

    units = [_Unit() for _ in range(config.n_units)]
    head = 0          # next record to commit
    next_dispatch = 0  # next record to hand to a unit
    dispatch_ready_at = 0
    next_commit_ok_at = 0
    committed = 0
    task_mispredicts = 0
    # Prediction bookkeeping: resolve at dispatch (the §3.1 idealisation —
    # structures update immediately), but the *timing* consequence lands
    # when the mispredicted task finishes.
    redirect_after_record = -1  # record whose completion redirects
    occupancy_accum = 0
    busy_accum = 0

    forward_fraction = config.forward_fraction

    cycle = 0
    while committed < n_records:
        if vectorize:
            # Event-compressed advance: find the earliest cycle at which
            # any phase can change machine state; every cycle before it
            # is a statistical no-op (units keep executing, nothing
            # transitions), accounted for in one jump.
            horizon = None
            commit_eligible = False
            idle_free = False
            for unit in units:
                state = unit.state
                if state == _EXECUTING:
                    due = cycle + unit.remaining
                    if horizon is None or due < horizon:
                        horizon = due
                elif state == _WAIT_FORWARD:
                    record = unit.record
                    if record == 0 or finish_time[record - 1] >= 0:
                        earliest = (
                            0 if record == 0
                            else finish_time[record - 1]
                            + int(
                                forward_fraction * exec_cycles[record]
                            )
                        )
                        due = max(cycle + 1, earliest)
                        if horizon is None or due < horizon:
                            horizon = due
                elif state == _DONE:
                    if unit.record == head:
                        commit_eligible = True
                else:
                    idle_free = True
            if commit_eligible and head < n_records:
                due = max(cycle + 1, next_commit_ok_at)
                if horizon is None or due < horizon:
                    horizon = due
            if (
                idle_free
                and next_dispatch < n_records
                and redirect_after_record < 0
            ):
                due = max(cycle + 1, dispatch_ready_at)
                if horizon is None or due < horizon:
                    horizon = due
            if horizon is None:
                horizon = max_cycles + 1  # deadlock: hit the ceiling
            skipped = min(horizon, max_cycles + 1) - cycle - 1
            if skipped > 0:
                active = 0
                busy = 0
                for unit in units:
                    if unit.state == _EXECUTING:
                        unit.busy_cycles += skipped
                        unit.remaining -= skipped
                        busy += 1
                        active += 1
                    elif unit.state == _WAIT_FORWARD:
                        active += 1
                occupancy_accum += skipped * active
                busy_accum += skipped * busy
                cycle += skipped

        cycle += 1
        if cycle > max_cycles:
            raise SimulationError(
                "detailed timing model exceeded its cycle ceiling; "
                "check configuration"
            )

        # --- execute phase -------------------------------------------------
        for unit in units:
            if unit.state == _EXECUTING:
                unit.busy_cycles += 1
                unit.remaining -= 1
                if unit.remaining <= 0:
                    unit.state = _WAIT_FORWARD
            if unit.state == _WAIT_FORWARD:
                record = unit.record
                predecessor_done = (
                    record == 0 or finish_time[record - 1] >= 0
                )
                if predecessor_done:
                    earliest = (
                        0 if record == 0
                        else finish_time[record - 1]
                        + int(config.forward_fraction * exec_cycles[record])
                    )
                    if cycle >= earliest:
                        unit.state = _DONE
                        finish_time[record] = cycle
                        if record == redirect_after_record:
                            # Mispredict resolves: redirect the sequencer.
                            # (Wrong-path successors were never dispatched
                            # — the trace holds only the actual path — so
                            # the squash is implicit in the dispatch
                            # stall, as in the analytic model.)
                            dispatch_ready_at = (
                                cycle + config.task_mispredict_penalty
                            )
                            redirect_after_record = -1

        # --- commit phase --------------------------------------------------
        if head < n_records and cycle >= next_commit_ok_at:
            for unit in units:
                if unit.state == _DONE and unit.record == head:
                    unit.state = _IDLE
                    unit.record = -1
                    committed += 1
                    head += 1
                    next_commit_ok_at = cycle + config.commit_interval
                    break

        # --- dispatch phase ------------------------------------------------
        if (
            next_dispatch < n_records
            and redirect_after_record < 0
            and cycle >= dispatch_ready_at
        ):
            free = next(
                (unit for unit in units if unit.state == _IDLE), None
            )
            if free is not None:
                record = next_dispatch
                free.state = _EXECUTING
                free.record = record
                free.remaining = exec_cycles[record]
                next_dispatch += 1
                dispatch_ready_at = cycle + config.dispatch_interval
                predicted = predictor.predict(task_addrs[record])
                predictor.update(
                    task_addrs[record],
                    actual_exits[record],
                    cf_codes[record],
                    next_addrs[record],
                )
                if predicted != next_addrs[record]:
                    task_mispredicts += 1
                    redirect_after_record = record

        # --- statistics ----------------------------------------------------
        active = sum(
            1 for unit in units if unit.state in (_EXECUTING, _WAIT_FORWARD)
        )
        occupancy_accum += active
        busy_accum += sum(
            1 for unit in units if unit.state == _EXECUTING
        )

    return DetailedTimingResult(
        cycles=cycle,
        instructions=sum(instructions),
        tasks=n_records,
        task_mispredicts=task_mispredicts,
        unit_utilisation=busy_accum / (cycle * config.n_units),
        mean_window_occupancy=occupancy_accum / cycle,
    )
