"""Task-granularity timing simulation of a Multiscalar processor.

Reproduces the role of the paper's "detailed timing simulator" (§3.1,
Table 4): a global sequencer dispatches predicted tasks onto a ring of
processing units; tasks execute speculatively, forward values in program
order, and commit in FIFO order; a task misprediction squashes all younger
work and redirects the sequencer when the mispredicted task completes.

The model is task-granular — per-task execution latency is derived from the
trace's instruction and intra-task-mispredict counts rather than simulating
each instruction — and is calibrated so the perfect-prediction bound lands
in the paper's 1.8–2.8 IPC band. Table 4's *comparisons* (Simple < GLOBAL /
PER < PATH < Perfect, with PATH gaining ~5–12% where its accuracy advantage
is largest) are the reproduction target.
"""

from repro.sim.timing.config import TimingConfig
from repro.sim.timing.detailed import (
    DetailedTimingResult,
    simulate_timing_detailed,
)
from repro.sim.timing.machine import TimingResult, simulate_timing

__all__ = [
    "TimingConfig",
    "TimingResult",
    "simulate_timing",
    "DetailedTimingResult",
    "simulate_timing_detailed",
]
