"""The Multiscalar timing model: sequencer + ring + FIFO commit.

For each dynamic task *i* the model computes three times:

* ``start_i = max(dispatch_i, unit_free_i)`` — the sequencer hands the task
  to the next ring unit once both the prediction pipeline and the unit are
  ready;
* ``finish_i = max(start_i + exec_i, finish_{i-1} + forward_i)`` — execution
  takes ``exec_i`` cycles, but a fraction of the task (``forward_fraction``)
  cannot complete until its program-order predecessor has forwarded
  registers and memory;
* ``commit_i = max(finish_i, commit_{i-1} + commit_interval)`` — strictly
  FIFO retirement.

``exec_i = startup + ceil(instructions / issue_width) +
intra_mispredicts × penalty`` comes from the trace.

Prediction enters through the dispatch time of the *next* task: a correct
prediction lets the sequencer dispatch ``dispatch_interval`` cycles later;
a misprediction is discovered only when task *i* completes, so the correct
successor dispatches at ``finish_i + task_mispredict_penalty`` and all
younger (wrong-path) work is squashed — which is precisely how better task
predictors buy IPC in Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.predictors.base import NextTaskPredictor
from repro.sim.functional import batched_task_prediction_column
from repro.sim.timing.config import TimingConfig
from repro.sim.timing.ring import ProcessingRing
from repro.sim.timing.scan import (
    CODE_CORRECT,
    CODE_GATED,
    CODE_MISPREDICT,
    max_plus_timing_scan,
)
from repro.synth.workloads import Workload
from repro.utils.memo import DerivedColumnCache, int64_column

#: Cycle columns per (trace, config knobs) — identical for every
#: predictor scheme swept over the same trace.
_CYCLE_CACHE = DerivedColumnCache()


@dataclass(frozen=True)
class TimingResult:
    """Outcome of a timing run.

    Attributes:
        cycles: Total cycles to commit the whole trace.
        instructions: Instructions retired.
        tasks: Dynamic tasks committed.
        task_mispredicts: Next-task predictions that were wrong.
        intra_mispredicts: Intra-task branch mispredicts (from the trace).
    """

    cycles: int
    instructions: int
    tasks: int
    task_mispredicts: int
    intra_mispredicts: int
    mispredict_stall_cycles: int = 0

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def task_mispredict_rate(self) -> float:
        """Fraction of tasks whose successor was mispredicted."""
        return self.task_mispredicts / self.tasks if self.tasks else 0.0

    @property
    def mispredict_stall_fraction(self) -> float:
        """Share of total cycles spent waiting on sequencer redirects."""
        return (
            self.mispredict_stall_cycles / self.cycles if self.cycles
            else 0.0
        )


def _batched_timing(
    workload: Workload,
    predictor: NextTaskPredictor,
    trace,
    config: TimingConfig,
    confidence_gate,
) -> TimingResult | None:
    """Column-wise timing run, or None without exact batched forms.

    Phase A resolves every per-task prediction outcome as numpy columns
    (the batched predictors never mutate their objects); phase B
    evaluates the timing recurrences in one max-plus scan
    (:mod:`repro.sim.timing.scan`). Bit-identical to the stepped loop.
    """
    predicted = batched_task_prediction_column(workload, predictor, trace)
    if predicted is None:
        return None
    correct = predicted == int64_column(trace.next_addr)
    gated = None
    if confidence_gate is not None:
        gate_fn = getattr(confidence_gate, "batch_gate_columns", None)
        if gate_fn is None:
            return None
        confident = gate_fn(trace.task_addr, correct)
        if confident is None:
            return None
        gated = ~confident

    instructions = int64_column(trace.instructions)
    intra_misses = int64_column(trace.internal_mispredicts)

    def cycle_columns() -> tuple[np.ndarray, np.ndarray]:
        exec_col = (
            config.task_startup_cycles
            + -(-instructions // config.issue_width)  # ceil division
            + intra_misses * config.intra_mispredict_penalty
        )
        forward_col = (config.forward_fraction * exec_col).astype(np.int64)
        return exec_col, forward_col

    exec_cycles, forward_stalls = _CYCLE_CACHE.get(
        (trace.instructions, trace.internal_mispredicts),
        (
            "cycles",
            config.task_startup_cycles,
            config.issue_width,
            config.intra_mispredict_penalty,
            config.forward_fraction,
        ),
        cycle_columns,
    )
    if config.dependence_aware:

        def dependence_mask() -> np.ndarray | None:
            program_tasks = workload.compiled.program.tfg
            addr_table = np.array(
                sorted(task.address for task in program_tasks),
                dtype=np.int64,
            )
            create_table = np.zeros(len(addr_table), dtype=np.int64)
            use_table = np.zeros(len(addr_table), dtype=np.int64)
            for task in program_tasks:
                row = int(np.searchsorted(addr_table, task.address))
                create_table[row] = task.header.create_mask
                use_table[row] = task.use_mask
            addrs = int64_column(trace.task_addr)
            rows = np.searchsorted(addr_table, addrs)
            rows = np.minimum(rows, len(addr_table) - 1)
            if np.any(addr_table[rows] != addrs):
                return None  # unknown task: let the stepped loop raise
            prev_create = np.empty(len(addrs), dtype=np.int64)
            prev_create[0] = 0xFFFF  # pre-trace state feeds task 0
            prev_create[1:] = create_table[rows[:-1]]
            return (prev_create & use_table[rows]) != 0

        dependent = _CYCLE_CACHE.get(
            (trace.task_addr, workload), "dependence", dependence_mask
        )
        if dependent is None:
            return None
        forward_stalls = np.where(dependent, forward_stalls, 0)

    codes = np.where(correct, CODE_CORRECT, CODE_MISPREDICT)
    if gated is not None:
        codes = np.where(gated, CODE_GATED, codes)
    cycles, stalls = max_plus_timing_scan(
        exec_cycles,
        forward_stalls,
        codes,
        config.n_units,
        config.dispatch_interval,
        config.task_mispredict_penalty,
        config.commit_interval,
    )
    return TimingResult(
        cycles=cycles,
        instructions=int(instructions.sum()),
        tasks=len(instructions),
        task_mispredicts=int((codes == CODE_MISPREDICT).sum()),
        intra_mispredicts=int(intra_misses.sum()),
        mispredict_stall_cycles=stalls,
    )


def simulate_timing(
    workload: Workload,
    predictor: NextTaskPredictor,
    config: TimingConfig | None = None,
    limit: int | None = None,
    confidence_gate=None,
    vectorize: bool = True,
) -> TimingResult:
    """Replay the workload's trace through the timing model.

    ``predictor`` supplies next-task predictions exactly as in the
    functional simulator (predict, then update with the actual outcome —
    the §3.1 idealisations).

    ``confidence_gate`` optionally enables speculation control: an object
    with ``is_high_confidence(task_addr)`` and ``update(task_addr,
    correct)`` (e.g. :class:`repro.predictors.confidence.
    ResettingConfidenceEstimator`). A low-confidence prediction is not
    acted on — the sequencer waits for the task to resolve (losing
    overlap) instead of speculating (risking a squash). High-confidence
    predictions dispatch as usual.

    When the predictor (and the gate, if any) advertise exact batched
    forms, the run is evaluated as numpy columns plus a max-plus scan —
    same results, no per-task Python loop. ``vectorize=False`` forces
    the stepped loop (required when the caller inspects predictor state
    afterwards, since batched runs never mutate the objects).
    """
    config = config or TimingConfig()
    trace = workload.trace if limit is None else workload.trace.head(limit)
    if vectorize and len(trace.task_addr):
        result = _batched_timing(
            workload, predictor, trace, config, confidence_gate
        )
        if result is not None:
            return result
    task_addrs = trace.task_addr.tolist()
    actual_exits = trace.exit_index.tolist()
    cf_codes = trace.cf_type.tolist()
    next_addrs = trace.next_addr.tolist()
    instructions = trace.instructions.tolist()
    intra_misses = trace.internal_mispredicts.tolist()

    ring = ProcessingRing(config.n_units)
    predict = predictor.predict
    update = predictor.update

    dependence_masks: dict[int, tuple[int, int]] | None = None
    if config.dependence_aware:
        dependence_masks = {
            task.address: (task.header.create_mask, task.use_mask)
            for task in workload.compiled.program.tfg
        }

    issue_width = config.issue_width
    startup = config.task_startup_cycles
    intra_penalty = config.intra_mispredict_penalty
    forward_fraction = config.forward_fraction
    dispatch_interval = config.dispatch_interval
    mispredict_penalty = config.task_mispredict_penalty
    commit_interval = config.commit_interval

    dispatch = 0
    prev_finish = 0
    prev_commit = 0
    prev_create_mask = 0xFFFF  # the pre-trace machine state feeds task 0
    total_instructions = 0
    total_intra_misses = 0
    task_mispredicts = 0
    mispredict_stalls = 0

    n_records = len(task_addrs)
    for i in range(n_records):
        addr = task_addrs[i]
        insns = instructions[i]
        intra = intra_misses[i]
        total_instructions += insns
        total_intra_misses += intra

        exec_cycles = (
            startup
            + -(-insns // issue_width)  # ceil division
            + intra * intra_penalty
        )
        start = max(dispatch, ring.unit_free_time())
        if dependence_masks is None:
            forward_stall = int(forward_fraction * exec_cycles)
        else:
            create_mask, use_mask = dependence_masks[addr]
            dependent = bool(prev_create_mask & use_mask)
            forward_stall = (
                int(forward_fraction * exec_cycles) if dependent else 0
            )
            prev_create_mask = create_mask
        finish = max(start + exec_cycles, prev_finish + forward_stall)
        commit = max(finish, prev_commit + commit_interval)
        ring.occupy_and_commit(commit)

        next_addr = next_addrs[i]
        predicted = predict(addr)
        update(addr, actual_exits[i], cf_codes[i], next_addr)
        correct = predicted == next_addr
        if confidence_gate is not None:
            gated = not confidence_gate.is_high_confidence(addr)
            confidence_gate.update(addr, correct)
            if gated:
                # Speculation control: don't act on a low-confidence
                # prediction — wait for the task to resolve. No squash and
                # no redirect penalty, but all overlap with the successor
                # is lost.
                dispatch = finish
                prev_finish = finish
                prev_commit = commit
                continue
        if correct:
            dispatch = dispatch + dispatch_interval
        else:
            task_mispredicts += 1
            restart = finish + mispredict_penalty
            ring.squash_speculative(restart)
            mispredict_stalls += max(
                0, restart - (dispatch + dispatch_interval)
            )
            dispatch = restart
        prev_finish = finish
        prev_commit = commit

    return TimingResult(
        cycles=prev_commit,
        instructions=total_instructions,
        tasks=n_records,
        task_mispredicts=task_mispredicts,
        intra_mispredicts=total_intra_misses,
        mispredict_stall_cycles=mispredict_stalls,
    )
