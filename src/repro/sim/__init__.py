"""Simulators: trace-driven prediction accuracy and task-level timing.

:mod:`repro.sim.functional` reproduces the paper's functional-simulation
methodology (§3.1); :mod:`repro.sim.timing` reproduces the detailed timing
simulation behind Table 4's IPC numbers at task granularity.
"""

from repro.sim.functional import (
    simulate_exit_prediction,
    simulate_indirect_target_prediction,
    simulate_task_prediction,
)
from repro.sim.result import (
    ExitPredictionStats,
    TargetPredictionStats,
    TaskPredictionStats,
)
from repro.sim.timing import TimingConfig, TimingResult, simulate_timing

__all__ = [
    "simulate_exit_prediction",
    "simulate_indirect_target_prediction",
    "simulate_task_prediction",
    "ExitPredictionStats",
    "TargetPredictionStats",
    "TaskPredictionStats",
    "TimingConfig",
    "TimingResult",
    "simulate_timing",
]
