"""Trace-driven functional simulation of inter-task prediction.

Implements the paper's methodology (§3.1) exactly:

* **Update timing** — predictor structures are updated immediately after
  each prediction; no staleness is modelled.
* **Pollution** — simulation never proceeds past a mispredicted task, so
  history always reflects the actual path (equivalent to a recovery
  mechanism that repairs prediction state perfectly). Concretely, every
  ``predict`` is followed by an ``update`` with the actual outcome.

Three entry points mirror the paper's three measurement kinds: exit
prediction (Figures 6/7/10/11), indirect target prediction (Figures 8/12),
and full next-task address prediction (Table 3).

Each simulator has two execution strategies that produce bit-identical
statistics:

* a **generic loop** that drives any predictor through its
  ``predict``/``update`` interface, one trace record at a time; and
* a **batched kernel** used when the predictor advertises an exact
  vectorized equivalent — the ideal (alias-free) predictors and target
  buffers expose their per-step table keys as dense integer ids
  (``batch_plan`` / ``batch_slot_ids``), and stateless predictors expose
  whole-column predictions (``predict_column``). The kernels replace
  per-step tuple hashing and method dispatch with numpy preprocessing
  plus a tight integer loop over only the steps that can miss.

Pass ``vectorize=False`` to force the generic loop (the equivalence tests
do exactly that). Batched kernels never mutate the predictor object; a
predictor that must be inspected after simulation should be driven with
``vectorize=False``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.predictors.automata import AutomatonTable
from repro.predictors.base import ExitPredictor, NextTaskPredictor
from repro.predictors.pht import PackedPatternTable
from repro.sim.result import (
    ExitPredictionStats,
    TargetPredictionStats,
    TaskPredictionStats,
)
from repro.synth.trace import CF_TYPE_FROM_CODE
from repro.synth.workloads import Workload
from repro.utils.memo import DerivedColumnCache, int64_column

#: Exit-count columns per (workload, trace address column) — shared by
#: every predictor scheme swept over the same trace.
_EXIT_COUNT_CACHE = DerivedColumnCache()

#: Codes of INDIRECT_BRANCH / INDIRECT_CALL in trace arrays.
_INDIRECT_CODES = (3, 4)

#: Hysteresis bounds of a target-buffer entry (see ``_TargetEntry``).
_TARGET_COUNTER_MAX = 3


def _exit_counts(workload: Workload) -> dict[int, int]:
    """Map task address -> number of header exits."""
    return workload.exit_counts()


def exit_count_column(
    workload: Workload, task_addrs: np.ndarray
) -> np.ndarray:
    """Per-step header-exit counts as a numpy column.

    Vectorizes the address -> exit-count mapping once per trace instead
    of a dict lookup per step, and memoises the column per (workload,
    address column) — the result is shared, do not mutate it. Raises
    :class:`SimulationError` if the trace references a task the program
    doesn't define.
    """
    return _EXIT_COUNT_CACHE.get(
        (workload, task_addrs),
        "exit-count",
        lambda: _exit_count_column(workload, task_addrs),
    )


def _exit_count_column(
    workload: Workload, task_addrs: np.ndarray
) -> np.ndarray:
    addrs = int64_column(task_addrs)
    if addrs.size == 0:
        return np.zeros(0, dtype=np.int64)
    counts = _exit_counts(workload)
    if not counts:
        raise SimulationError(
            f"trace references unknown task {int(addrs[0]):#x}"
        )
    keys = np.fromiter(counts.keys(), dtype=np.int64, count=len(counts))
    vals = np.fromiter(counts.values(), dtype=np.int64, count=len(counts))
    order = np.argsort(keys)
    keys, vals = keys[order], vals[order]
    pos = np.minimum(np.searchsorted(keys, addrs), len(keys) - 1)
    mismatched = np.flatnonzero(keys[pos] != addrs)
    if mismatched.size:
        missing = int(addrs[mismatched[0]])
        raise SimulationError(
            f"trace references unknown task {missing:#x}"
        )
    return vals[pos]


def _check_single_exit_legality(
    task_addrs: np.ndarray,
    actual_exits: np.ndarray,
    multiway: np.ndarray,
) -> None:
    """A single-exit task can only ever take exit 0 in a legal trace."""
    bad = np.flatnonzero(~multiway & (actual_exits != 0))
    if bad.size:
        step = int(bad[0])
        raise SimulationError(
            f"single-exit task {int(task_addrs[step]):#x} took exit "
            f"{int(actual_exits[step])}"
        )


def _automaton_scan_kernel(
    group_ids: np.ndarray,
    actual_exits: np.ndarray,
    prediction_caps: np.ndarray,
    table: AutomatonTable,
) -> tuple[int, int]:
    """Replay tabulated automata over pre-grouped multiway steps.

    ``group_ids`` are dense table-key ids (one automaton per id);
    ``prediction_caps`` holds ``n_exits - 1`` per step (predictions are
    clamped into the task's legal exit range); ``table`` is the
    automaton's enumerated state machine. Every entry starts in the
    tabulated initial state, which is also what an untouched entry
    predicts — a first touch reads prediction 0 exactly like the
    dict-of-automata reference, whether the entry was pre-created by a
    ``predict`` or is made on the fly by ``update``. Returns
    ``(misses, states_touched)`` — bit-identical to the step-by-step
    loop.
    """
    if not len(group_ids):
        return 0, 0
    packed = PackedPatternTable(table, int(group_ids.max()) + 1)
    pre_states = packed.replay(group_ids, actual_exits)
    predictions = np.minimum(
        packed.predictions_of(pre_states), prediction_caps
    )
    misses = int((predictions != actual_exits).sum())
    return misses, packed.states_touched()


def batched_exit_prediction_column(
    predictor: ExitPredictor,
    task_addrs: np.ndarray,
    actual_exits: np.ndarray,
    n_exits_col: np.ndarray,
) -> np.ndarray | None:
    """Per-step predicted exits via the predictor's batched kernel.

    Returns the full int64 column a sequence of ``predict``/``update``
    pairs would produce — 0 at single-exit steps, clamped into the legal
    range at multiway ones — without mutating the predictor, or None when
    it advertises no exact batched form. This is the exit-choice half of
    the batched task predictors and the timing simulator's fast path.
    """
    multiway = np.asarray(n_exits_col) > 1
    plan_fn = getattr(predictor, "batch_plan", None)
    if plan_fn is not None:
        plan = plan_fn(task_addrs, actual_exits)
        if plan is None:
            return None
        _check_single_exit_legality(task_addrs, actual_exits, multiway)
        group_ids, table = plan
        steps = np.flatnonzero(multiway)
        predicted = np.zeros(len(task_addrs), dtype=np.int64)
        if steps.size:
            packed = PackedPatternTable(
                table, int(group_ids[steps].max()) + 1
            )
            pre_states = packed.replay(
                group_ids[steps],
                int64_column(actual_exits)[steps],
            )
            predicted[steps] = np.minimum(
                packed.predictions_of(pre_states),
                int64_column(n_exits_col)[steps] - 1,
            )
        return predicted
    column_fn = getattr(predictor, "predict_column", None)
    if column_fn is not None:
        return np.asarray(
            column_fn(task_addrs, n_exits_col), dtype=np.int64
        )
    return None


def _batched_exit_stats(
    predictor: ExitPredictor,
    task_addrs: np.ndarray,
    actual_exits: np.ndarray,
    n_exits_col: np.ndarray,
) -> ExitPredictionStats | None:
    """Run a batched kernel if the predictor supports one, else None."""
    multiway = n_exits_col > 1
    plan_fn = getattr(predictor, "batch_plan", None)
    if plan_fn is not None:
        plan = plan_fn(task_addrs, actual_exits)
        if plan is None:
            return None
        _check_single_exit_legality(task_addrs, actual_exits, multiway)
        group_ids, table = plan
        steps = np.flatnonzero(multiway)
        misses, states = _automaton_scan_kernel(
            group_ids[steps],
            actual_exits[steps].astype(np.int64),
            n_exits_col[steps].astype(np.int64) - 1,
            table,
        )
        return ExitPredictionStats(
            trials=len(task_addrs),
            misses=misses,
            multiway_trials=int(steps.size),
            multiway_misses=misses,
            states_touched=states,
            storage_bits=predictor.storage_bits(),
        )
    column_fn = getattr(predictor, "predict_column", None)
    if column_fn is not None:
        predicted = np.asarray(
            column_fn(task_addrs, n_exits_col), dtype=np.int64
        )
        wrong = predicted != int64_column(actual_exits)
        bad = np.flatnonzero(~multiway & wrong)
        if bad.size:
            step = int(bad[0])
            raise SimulationError(
                f"single-exit task {int(task_addrs[step]):#x} took exit "
                f"{int(actual_exits[step])}"
            )
        misses = int((wrong & multiway).sum())
        return ExitPredictionStats(
            trials=len(task_addrs),
            misses=misses,
            multiway_trials=int(multiway.sum()),
            multiway_misses=misses,
            states_touched=predictor.states_touched(),
            storage_bits=predictor.storage_bits(),
        )
    return None


def simulate_exit_prediction(
    workload: Workload,
    predictor: ExitPredictor,
    limit: int | None = None,
    vectorize: bool = True,
) -> ExitPredictionStats:
    """Run ``predictor`` over the workload's trace; return accuracy stats.

    Uses the predictor's batched kernel when it advertises an exact one
    (see the module docstring); set ``vectorize=False`` to force the
    step-by-step loop.
    """
    trace = workload.trace if limit is None else workload.trace.head(limit)
    n_exits_col = exit_count_column(workload, trace.task_addr)
    if vectorize:
        stats = _batched_exit_stats(
            predictor, trace.task_addr, trace.exit_index, n_exits_col
        )
        if stats is not None:
            return stats

    task_addrs = trace.task_addr.tolist()
    actual_exits = trace.exit_index.tolist()
    exit_counts = n_exits_col.tolist()

    predict = predictor.predict
    update = predictor.update
    trials = len(task_addrs)
    misses = 0
    multiway_trials = 0
    multiway_misses = 0
    for addr, actual, n_exits in zip(task_addrs, actual_exits, exit_counts):
        predicted = predict(addr, n_exits)
        if n_exits > 1:
            multiway_trials += 1
            if predicted != actual:
                misses += 1
                multiway_misses += 1
        elif predicted != actual:  # cannot happen for legal traces
            raise SimulationError(
                f"single-exit task {addr:#x} took exit {actual}"
            )
        update(addr, n_exits, actual)
    return ExitPredictionStats(
        trials=trials,
        misses=misses,
        multiway_trials=multiway_trials,
        multiway_misses=multiway_misses,
        states_touched=predictor.states_touched(),
        storage_bits=predictor.storage_bits(),
    )


def _target_group_kernel(
    group_ids: np.ndarray, next_addrs: np.ndarray
) -> tuple[int, int]:
    """Replay hysteresis target entries over pre-grouped indirect steps.

    ``group_ids`` are dense buffer-slot ids at each indirect exit, in
    trace order. Returns ``(misses, entries_touched)`` — bit-identical to
    driving a buffer's ``predict``/``update`` pair per indirect step.
    """
    if not len(group_ids):
        return 0, 0
    n_groups = int(group_ids.max()) + 1
    target_of = [0] * n_groups
    counter_of = [0] * n_groups
    seen = bytearray(n_groups)
    misses = 0
    entries = 0
    for group, actual in zip(group_ids.tolist(), next_addrs.tolist()):
        if seen[group]:
            stored = target_of[group]
            if stored != actual:
                misses += 1
                counter = counter_of[group]
                if counter > 0:
                    counter_of[group] = counter - 1
                else:
                    target_of[group] = actual
                    counter_of[group] = 1
            elif counter_of[group] < _TARGET_COUNTER_MAX:
                counter_of[group] += 1
        else:
            # Compulsory miss: predict() returns None, update() allocates.
            seen[group] = 1
            entries += 1
            misses += 1
            target_of[group] = actual
            counter_of[group] = 1
    return misses, entries


def simulate_indirect_target_prediction(
    workload: Workload,
    buffer,
    limit: int | None = None,
    vectorize: bool = True,
) -> TargetPredictionStats:
    """Measure a TTB/CTTB on the workload's indirect exits.

    ``buffer`` is any object with the target-buffer interface
    (``predict``/``update``/``observe_step``/``entries_touched``/
    ``storage_bits``). Every retired task is fed to ``observe_step`` so
    path-indexed buffers track program progress; predictions happen only at
    INDIRECT_BRANCH / INDIRECT_CALL exits. Buffers that advertise
    ``batch_slot_ids`` run through a batched kernel instead (identical
    results); ``vectorize=False`` forces the step loop.
    """
    trace = workload.trace if limit is None else workload.trace.head(limit)
    indirect_mask = np.isin(trace.cf_type, _INDIRECT_CODES)
    indirect_steps = np.flatnonzero(indirect_mask)

    if vectorize:
        batch_fn = getattr(buffer, "batch_slot_ids", None)
        if batch_fn is not None:
            if getattr(buffer, "observes_steps", True):
                # Path-indexed slots depend on every step; compute the
                # full column, then keep the indirect rows.
                slot_ids = batch_fn(trace.task_addr)
                if slot_ids is not None:
                    slot_ids = slot_ids[indirect_steps]
            else:
                # History-free slots: only the indirect rows matter.
                slot_ids = batch_fn(trace.task_addr[indirect_steps])
            if slot_ids is not None:
                misses, entries = _target_group_kernel(
                    slot_ids,
                    trace.next_addr[indirect_steps].astype(np.int64),
                )
                return TargetPredictionStats(
                    trials=int(indirect_steps.size),
                    misses=misses,
                    entries_touched=entries,
                    storage_bits=buffer.storage_bits(),
                )

    trials = int(indirect_steps.size)
    misses = 0
    if not getattr(buffer, "observes_steps", True):
        # The buffer ignores non-indirect steps; only visit indirect ones.
        task_addrs = trace.task_addr[indirect_steps].tolist()
        next_addrs = trace.next_addr[indirect_steps].tolist()
        for addr, next_addr in zip(task_addrs, next_addrs):
            if buffer.predict(addr) != next_addr:
                misses += 1
            buffer.update(addr, next_addr)
    else:
        task_addrs = trace.task_addr.tolist()
        next_addrs = trace.next_addr.tolist()
        flags = indirect_mask.tolist()
        for addr, is_indirect, next_addr in zip(
            task_addrs, flags, next_addrs
        ):
            if is_indirect:
                if buffer.predict(addr) != next_addr:
                    misses += 1
                buffer.update(addr, next_addr)
            buffer.observe_step(addr)
    return TargetPredictionStats(
        trials=trials,
        misses=misses,
        entries_touched=buffer.entries_touched(),
        storage_bits=buffer.storage_bits(),
    )


def batched_task_prediction_column(
    workload: Workload,
    predictor: NextTaskPredictor,
    trace,
) -> np.ndarray | None:
    """Per-step predicted next-task addresses, or None.

    Composes the predictor's exit-choice column (when it has an exit
    predictor) with its batched address resolution
    (``batch_predicted_addrs``). The predictor object is not mutated;
    only freshly constructed predictors may be batched. Shared by
    :func:`simulate_task_prediction` and the timing simulator's fast
    path.
    """
    batch_fn = getattr(predictor, "batch_predicted_addrs", None)
    if batch_fn is None:
        return None
    predicted_exits = None
    exit_predictor = getattr(predictor, "exit_predictor", None)
    if exit_predictor is not None:
        n_exits_col = exit_count_column(workload, trace.task_addr)
        predicted_exits = batched_exit_prediction_column(
            exit_predictor, trace.task_addr, trace.exit_index, n_exits_col
        )
        if predicted_exits is None:
            return None
    return batch_fn(
        trace.task_addr,
        predicted_exits,
        trace.exit_index,
        trace.cf_type,
        trace.next_addr,
    )


def simulate_task_prediction(
    workload: Workload,
    predictor: NextTaskPredictor,
    limit: int | None = None,
    vectorize: bool = True,
) -> TaskPredictionStats:
    """Measure full next-task-address prediction accuracy (Table 3).

    Uses the predictor's batched column when it advertises an exact one
    (see the module docstring); ``vectorize=False`` forces the loop.
    """
    trace = workload.trace if limit is None else workload.trace.head(limit)
    if vectorize:
        predicted = batched_task_prediction_column(
            workload, predictor, trace
        )
        if predicted is not None:
            wrong = predicted != int64_column(trace.next_addr)
            n_codes = max(CF_TYPE_FROM_CODE) + 1
            code_trials = np.bincount(trace.cf_type, minlength=n_codes)
            code_misses = np.bincount(
                trace.cf_type[wrong], minlength=n_codes
            )
            type_names = {
                code: str(cf_type)
                for code, cf_type in CF_TYPE_FROM_CODE.items()
            }
            return TaskPredictionStats(
                trials=len(trace.task_addr),
                address_misses=int(wrong.sum()),
                misses_by_type={
                    type_names[code]: int(count)
                    for code, count in enumerate(code_misses)
                    if count
                },
                trials_by_type={
                    type_names[code]: int(count)
                    for code, count in enumerate(code_trials)
                    if count
                },
                storage_bits=predictor.storage_bits(),
            )

    task_addrs = trace.task_addr.tolist()
    actual_exits = trace.exit_index.tolist()
    cf_codes = trace.cf_type.tolist()
    next_addrs = trace.next_addr.tolist()

    # The per-type trial counts don't depend on the predictor; count them
    # vectorized and keep the inner loop free of string conversions by
    # indexing miss counters with the raw control-flow code.
    n_codes = max(CF_TYPE_FROM_CODE) + 1
    code_trials = np.bincount(trace.cf_type, minlength=n_codes)
    misses_by_code = [0] * n_codes

    predict = predictor.predict
    update = predictor.update
    misses = 0
    for addr, actual_exit, cf_code, next_addr in zip(
        task_addrs, actual_exits, cf_codes, next_addrs
    ):
        if predict(addr) != next_addr:
            misses += 1
            misses_by_code[cf_code] += 1
        update(addr, actual_exit, cf_code, next_addr)

    type_names = {
        code: str(cf_type) for code, cf_type in CF_TYPE_FROM_CODE.items()
    }
    trials_by_type = {
        type_names[code]: int(count)
        for code, count in enumerate(code_trials)
        if count
    }
    misses_by_type = {
        type_names[code]: count
        for code, count in enumerate(misses_by_code)
        if count
    }
    return TaskPredictionStats(
        trials=len(task_addrs),
        address_misses=misses,
        misses_by_type=misses_by_type,
        trials_by_type=trials_by_type,
        storage_bits=predictor.storage_bits(),
    )
