"""Trace-driven functional simulation of inter-task prediction.

Implements the paper's methodology (§3.1) exactly:

* **Update timing** — predictor structures are updated immediately after
  each prediction; no staleness is modelled.
* **Pollution** — simulation never proceeds past a mispredicted task, so
  history always reflects the actual path (equivalent to a recovery
  mechanism that repairs prediction state perfectly). Concretely, every
  ``predict`` is followed by an ``update`` with the actual outcome.

Three entry points mirror the paper's three measurement kinds: exit
prediction (Figures 6/7/10/11), indirect target prediction (Figures 8/12),
and full next-task address prediction (Table 3).
"""

from __future__ import annotations

from collections import Counter

from repro.errors import SimulationError
from repro.predictors.base import ExitPredictor, NextTaskPredictor
from repro.sim.result import (
    ExitPredictionStats,
    TargetPredictionStats,
    TaskPredictionStats,
)
from repro.synth.trace import CF_TYPE_FROM_CODE
from repro.synth.workloads import Workload

#: Codes of INDIRECT_BRANCH / INDIRECT_CALL in trace arrays.
_INDIRECT_CODES = (3, 4)


def _exit_counts(workload: Workload) -> dict[int, int]:
    """Map task address -> number of header exits."""
    return workload.exit_counts()


def simulate_exit_prediction(
    workload: Workload,
    predictor: ExitPredictor,
    limit: int | None = None,
) -> ExitPredictionStats:
    """Run ``predictor`` over the workload's trace; return accuracy stats."""
    trace = workload.trace if limit is None else workload.trace.head(limit)
    n_exits_of = _exit_counts(workload)
    task_addrs = trace.task_addr.tolist()
    actual_exits = trace.exit_index.tolist()

    predict = predictor.predict
    update = predictor.update
    trials = len(task_addrs)
    misses = 0
    multiway_trials = 0
    multiway_misses = 0
    for addr, actual in zip(task_addrs, actual_exits):
        n_exits = n_exits_of[addr]
        predicted = predict(addr, n_exits)
        if n_exits > 1:
            multiway_trials += 1
            if predicted != actual:
                misses += 1
                multiway_misses += 1
        elif predicted != actual:  # cannot happen for legal traces
            raise SimulationError(
                f"single-exit task {addr:#x} took exit {actual}"
            )
        update(addr, n_exits, actual)
    return ExitPredictionStats(
        trials=trials,
        misses=misses,
        multiway_trials=multiway_trials,
        multiway_misses=multiway_misses,
        states_touched=predictor.states_touched(),
        storage_bits=predictor.storage_bits(),
    )


def simulate_indirect_target_prediction(
    workload: Workload,
    buffer,
    limit: int | None = None,
) -> TargetPredictionStats:
    """Measure a TTB/CTTB on the workload's indirect exits.

    ``buffer`` is any object with the target-buffer interface
    (``predict``/``update``/``observe_step``/``entries_touched``/
    ``storage_bits``). Every retired task is fed to ``observe_step`` so
    path-indexed buffers track program progress; predictions happen only at
    INDIRECT_BRANCH / INDIRECT_CALL exits.
    """
    trace = workload.trace if limit is None else workload.trace.head(limit)
    task_addrs = trace.task_addr.tolist()
    cf_codes = trace.cf_type.tolist()
    next_addrs = trace.next_addr.tolist()

    trials = 0
    misses = 0
    for addr, cf_code, next_addr in zip(task_addrs, cf_codes, next_addrs):
        if cf_code in _INDIRECT_CODES:
            trials += 1
            if buffer.predict(addr) != next_addr:
                misses += 1
            buffer.update(addr, next_addr)
        buffer.observe_step(addr)
    return TargetPredictionStats(
        trials=trials,
        misses=misses,
        entries_touched=buffer.entries_touched(),
        storage_bits=buffer.storage_bits(),
    )


def simulate_task_prediction(
    workload: Workload,
    predictor: NextTaskPredictor,
    limit: int | None = None,
) -> TaskPredictionStats:
    """Measure full next-task-address prediction accuracy (Table 3)."""
    trace = workload.trace if limit is None else workload.trace.head(limit)
    task_addrs = trace.task_addr.tolist()
    actual_exits = trace.exit_index.tolist()
    cf_codes = trace.cf_type.tolist()
    next_addrs = trace.next_addr.tolist()

    predict = predictor.predict
    update = predictor.update
    misses = 0
    misses_by_type: Counter = Counter()
    trials_by_type: Counter = Counter()
    for addr, actual_exit, cf_code, next_addr in zip(
        task_addrs, actual_exits, cf_codes, next_addrs
    ):
        type_name = str(CF_TYPE_FROM_CODE[cf_code])
        trials_by_type[type_name] += 1
        if predict(addr) != next_addr:
            misses += 1
            misses_by_type[type_name] += 1
        update(addr, actual_exit, cf_code, next_addr)
    return TaskPredictionStats(
        trials=len(task_addrs),
        address_misses=misses,
        misses_by_type=dict(misses_by_type),
        trials_by_type=dict(trials_by_type),
        storage_bits=predictor.storage_bits(),
    )
