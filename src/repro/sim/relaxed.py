"""Relaxed-idealisation simulation: history pollution and repair.

The main functional simulator applies the paper's §3.1 idealisations. This
module drops the *pollution* idealisation: when an exit prediction is
wrong, the sequencer keeps predicting down the wrong path for a while
(bounded by the number of speculative tasks the ring can hold), shifting
wrong-path task addresses into the history register, before the mispredict
resolves and the repair policy runs.

Wrong-path task addresses are derived the way the hardware would derive
them: follow the predicted exit's header target; a wrong path ends early
if it reaches an exit whose target the header does not give (returns and
indirect transfers).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.predictors.speculative import SpeculativePathPredictor
from repro.synth.workloads import Workload


@dataclass(frozen=True)
class RelaxedPredictionStats:
    """Outcome of a speculative-history run.

    Attributes:
        trials: Dynamic task predictions of the committed (actual) path.
        misses: Wrong exit predictions on the committed path.
        wrong_path_predictions: Extra predictions issued down wrong paths
            (pure pollution; they have no accuracy of their own).
    """

    trials: int
    misses: int
    wrong_path_predictions: int

    @property
    def miss_rate(self) -> float:
        """Committed-path miss rate (comparable to the ideal simulator's)."""
        return self.misses / self.trials if self.trials else 0.0


def simulate_speculative_exit_prediction(
    workload: Workload,
    predictor: SpeculativePathPredictor,
    wrong_path_depth: int = 4,
    limit: int | None = None,
) -> RelaxedPredictionStats:
    """Run a speculative-history predictor with wrong-path pollution.

    ``wrong_path_depth`` bounds how many wrong-path tasks are fetched and
    predicted before the mispredict resolves — in hardware this is at most
    the number of speculative processing units.
    """
    trace = workload.trace if limit is None else workload.trace.head(limit)
    info: dict[int, tuple[int, tuple]] = {}
    for task in workload.compiled.program.tfg:
        info[task.address] = (
            task.n_exits,
            tuple(e.target for e in task.header.exits),
        )

    task_addrs = trace.task_addr.tolist()
    actual_exits = trace.exit_index.tolist()

    trials = 0
    misses = 0
    wrong_path_predictions = 0
    for addr, actual in zip(task_addrs, actual_exits):
        n_exits, targets = info[addr]
        predicted = predictor.predict(addr, n_exits)
        trials += 1
        wrong = predicted != actual
        if wrong:
            misses += 1
            wrong_path_predictions += _pollute(
                predictor, info, targets[predicted], wrong_path_depth
            )
        predictor.resolve(addr, n_exits, actual, was_wrong_path=wrong)
    return RelaxedPredictionStats(
        trials=trials,
        misses=misses,
        wrong_path_predictions=wrong_path_predictions,
    )


def _pollute(
    predictor: SpeculativePathPredictor,
    info: dict[int, tuple[int, tuple]],
    wrong_target: int | None,
    depth: int,
) -> int:
    """Predict down the wrong path, polluting history; return step count.

    Wrong-path predictions are never resolved (the hardware squashes those
    tasks before completion), so they train nothing — they only shift
    addresses into the speculative history register.
    """
    steps = 0
    current = wrong_target
    while current is not None and steps < depth:
        entry = info.get(current)
        if entry is None:
            break
        n_exits, targets = entry
        predicted = predictor.predict_wrong_path(current, n_exits)
        steps += 1
        current = targets[predicted]
    return steps
