"""Relaxed-idealisation simulation: history pollution and repair.

The main functional simulator applies the paper's §3.1 idealisations. This
module drops the *pollution* idealisation: when an exit prediction is
wrong, the sequencer keeps predicting down the wrong path for a while
(bounded by the number of speculative tasks the ring can hold), shifting
wrong-path task addresses into the history register, before the mispredict
resolves and the repair policy runs.

Wrong-path task addresses are derived the way the hardware would derive
them: follow the predicted exit's header target; a wrong path ends early
if it reaches an exit whose target the header does not give (returns and
indirect transfers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa.controlflow import MAX_EXITS_PER_TASK
from repro.predictors.automata import tabulate_automaton
from repro.predictors.folding import DolcSpec, _ALIGN_SHIFT
from repro.predictors.pht import PackedPatternTable
from repro.predictors.speculative import SpeculativePathPredictor
from repro.synth.workloads import Workload
from repro.utils.bits import bit_mask
from repro.utils.memo import DerivedColumnCache, int64_column

#: Header columns per program, shared by every relaxed run over it.
_HEADER_CACHE = DerivedColumnCache()

#: Sentinel for "this exit's target is not in the header" (the walk stops).
_NO_TARGET = -1


@dataclass(frozen=True)
class RelaxedPredictionStats:
    """Outcome of a speculative-history run.

    Attributes:
        trials: Dynamic task predictions of the committed (actual) path.
        misses: Wrong exit predictions on the committed path.
        wrong_path_predictions: Extra predictions issued down wrong paths
            (pure pollution; they have no accuracy of their own).
    """

    trials: int
    misses: int
    wrong_path_predictions: int

    @property
    def miss_rate(self) -> float:
        """Committed-path miss rate (comparable to the ideal simulator's)."""
        return self.misses / self.trials if self.trials else 0.0


class _HeaderColumns:
    """Per-program header facts for the batched wrong-path walk."""

    __slots__ = ("addrs", "n_exits", "targets")

    def __init__(self, program) -> None:
        tasks = sorted(program.tfg, key=lambda task: task.address)
        self.addrs = np.array(
            [task.address for task in tasks], dtype=np.int64
        )
        self.n_exits = np.array(
            [task.n_exits for task in tasks], dtype=np.int64
        )
        max_exits = int(self.n_exits.max()) if tasks else 1
        self.targets = np.full(
            (len(tasks), max_exits), _NO_TARGET, dtype=np.int64
        )
        for row, task in enumerate(tasks):
            for col, e in enumerate(task.header.exits):
                if e.target is not None:
                    self.targets[row, col] = e.target

    def rows_of(self, addrs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(row, known)`` per address; row is clamped when unknown."""
        rows = np.searchsorted(self.addrs, addrs)
        rows = np.minimum(rows, max(len(self.addrs) - 1, 0))
        known = (
            self.addrs[rows] == addrs if len(self.addrs)
            else np.zeros(len(addrs), dtype=bool)
        )
        return rows, known


def _dolc_index_rows(
    spec: DolcSpec,
    current: np.ndarray,
    window: np.ndarray | None,
    n_path: np.ndarray | None,
) -> np.ndarray:
    """Vectorized :meth:`DolcSpec.index` over per-row path windows.

    ``window`` holds each row's path register contents (most recent
    last, ``spec.depth`` columns); ``n_path`` is how many of those
    entries are real (cold-start rows have fewer — absent tasks
    contribute zero bits, as in the scalar method).
    """
    out = np.zeros(len(current), dtype=np.int64)
    field_width = spec.index_bits

    def fold_in(values: np.ndarray, width: int, position: int) -> None:
        remaining, shift = width, position
        chunk = values
        while remaining > 0:
            offset = shift % field_width
            take = min(field_width - offset, remaining)
            np.bitwise_xor(
                out, (chunk & bit_mask(take)) << offset, out=out
            )
            chunk = chunk >> take
            shift += take
            remaining -= take

    fold_in(
        (current >> _ALIGN_SHIFT) & bit_mask(spec.current_bits),
        spec.current_bits,
        0,
    )
    position = spec.current_bits
    if spec.depth >= 1:
        last = np.where(n_path >= 1, window[:, -1], 0)
        fold_in(
            (last >> _ALIGN_SHIFT) & bit_mask(spec.last_bits),
            spec.last_bits,
            position,
        )
        position += spec.last_bits
        if spec.older_bits:
            older_mask = bit_mask(spec.older_bits)
            for back in range(2, spec.depth + 1):
                older = np.where(n_path >= back, window[:, -back], 0)
                fold_in(
                    (older >> _ALIGN_SHIFT) & older_mask,
                    spec.older_bits,
                    position,
                )
                position += spec.older_bits
    return out


def _batched_speculative_stats(
    workload: Workload,
    predictor: SpeculativePathPredictor,
    wrong_path_depth: int,
    trace,
) -> RelaxedPredictionStats | None:
    """Columnwise speculative run, or None without an exact batched form.

    Only the ``"perfect"`` repair policy is batchable: perfect repair
    restores the committed-path history after every mispredict, so the
    committed prediction stream is a straight PHT replay over the
    D-O-L-C index column, and each wrong-path excursion can be replayed
    afterwards against the PHT state of its origin step (wrong-path
    predictions never train, so excursions don't interact). ``"squash"``
    and ``"none"`` leave pollution in the history register, which couples
    every step to the trace's miss pattern — those stay on the stepped
    loop, which is also the reference this kernel is tested against.
    """
    if predictor.repair_policy != "perfect":
        return None
    spec = predictor.spec
    table = tabulate_automaton(predictor.pht_factory, MAX_EXITS_PER_TASK)
    if table is None:
        return None

    headers = _HEADER_CACHE.get(
        (workload,),
        "relaxed-headers",
        lambda: _HeaderColumns(workload.compiled.program),
    )
    addrs = int64_column(trace.task_addr)
    actual_exits = int64_column(trace.exit_index)
    n = len(addrs)
    if n == 0:
        return RelaxedPredictionStats(0, 0, 0)
    rows, known = headers.rows_of(addrs)
    if not known.all():
        return None  # let the stepped loop raise its KeyError
    n_exits_col = headers.n_exits[rows]

    # Committed stream: perfect repair keeps the path register equal to
    # the committed-path tail at every step, so the index column is the
    # plain D-O-L-C fold and the PHT replay is exact.
    index_col = spec.index_column(trace.task_addr)
    multiway = n_exits_col > 1
    steps = np.flatnonzero(multiway)
    predicted = np.zeros(n, dtype=np.int64)
    pre_states = np.zeros(steps.size, dtype=np.int64)
    if steps.size:
        packed = PackedPatternTable(
            table, int(index_col[steps].max()) + 1
        )
        pre_states = packed.replay(index_col[steps], actual_exits[steps])
        predicted[steps] = np.minimum(
            packed.predictions_of(pre_states), n_exits_col[steps] - 1
        )
    wrong = predicted != actual_exits
    misses = int(wrong.sum())

    # Wrong-path walks: replayed level by level across all misses at
    # once. A walk at origin step i reads PHT entries as trained by
    # multiway steps j < i (step i itself trains at resolve, *after* its
    # walk), answered per level with one combined-key searchsorted over
    # the committed update stream.
    post_states = table.transitions[
        pre_states, actual_exits[steps]
    ].astype(np.int64)
    stride = np.int64(n + 1)
    update_keys = index_col[steps] * stride + steps
    update_order = np.argsort(update_keys)
    update_keys = update_keys[update_order]
    update_states = post_states[update_order]
    update_index = index_col[steps][update_order]

    origin = np.flatnonzero(wrong)
    wrong_path_predictions = 0
    if origin.size and wrong_path_depth > 0:
        current = headers.targets[rows[origin], predicted[origin]]
        depth = spec.depth
        if depth:
            # Path register contents just after step i's own predict:
            # the last `depth` committed addresses, most recent last.
            window = np.zeros((origin.size, depth), dtype=np.int64)
            for k in range(depth):
                lag = depth - 1 - k
                valid = origin >= lag
                window[valid, k] = addrs[origin[valid] - lag]
            n_path = np.minimum(origin + 1, depth)
        else:
            window = None
            n_path = None
        for _ in range(wrong_path_depth):
            live = current != _NO_TARGET
            if not live.any():
                break
            current = current[live]
            origin = origin[live]
            if depth:
                window = window[live]
                n_path = n_path[live]
            walk_rows, walk_known = headers.rows_of(current)
            if not walk_known.all():
                keep = walk_known
                current = current[keep]
                origin = origin[keep]
                walk_rows = walk_rows[keep]
                if depth:
                    window = window[keep]
                    n_path = n_path[keep]
                if not len(current):
                    break
            walk_exits = headers.n_exits[walk_rows]
            index = _dolc_index_rows(spec, current, window, n_path)
            query = index * stride + origin
            pos = np.searchsorted(update_keys, query) - 1
            hit = (pos >= 0) & (update_index[np.maximum(pos, 0)] == index)
            states = np.where(
                hit, update_states[np.maximum(pos, 0)], 0
            )
            walk_predicted = np.where(
                walk_exits > 1,
                np.minimum(
                    table.predictions[states],
                    np.maximum(walk_exits - 1, 0),
                ),
                0,
            )
            wrong_path_predictions += len(current)
            if depth:
                window = np.concatenate(
                    (window[:, 1:], current[:, None]), axis=1
                )
                n_path = np.minimum(n_path + 1, depth)
            current = headers.targets[walk_rows, walk_predicted]

    return RelaxedPredictionStats(
        trials=n,
        misses=misses,
        wrong_path_predictions=wrong_path_predictions,
    )


def simulate_speculative_exit_prediction(
    workload: Workload,
    predictor: SpeculativePathPredictor,
    wrong_path_depth: int = 4,
    limit: int | None = None,
    vectorize: bool = True,
) -> RelaxedPredictionStats:
    """Run a speculative-history predictor with wrong-path pollution.

    ``wrong_path_depth`` bounds how many wrong-path tasks are fetched and
    predicted before the mispredict resolves — in hardware this is at most
    the number of speculative processing units.

    With ``vectorize=True`` (default) and the ``"perfect"`` repair
    policy, the run is evaluated as a batched PHT replay plus a
    level-synchronous wrong-path walk — bit-identical statistics, no
    per-task Python loop, and the predictor object is not mutated.
    Other repair policies (and ``vectorize=False``) use the stepped
    loop, which mutates the predictor as real hardware would.
    """
    trace = workload.trace if limit is None else workload.trace.head(limit)
    if vectorize:
        stats = _batched_speculative_stats(
            workload, predictor, wrong_path_depth, trace
        )
        if stats is not None:
            return stats
    info: dict[int, tuple[int, tuple]] = {}
    for task in workload.compiled.program.tfg:
        info[task.address] = (
            task.n_exits,
            tuple(e.target for e in task.header.exits),
        )

    task_addrs = trace.task_addr.tolist()
    actual_exits = trace.exit_index.tolist()

    trials = 0
    misses = 0
    wrong_path_predictions = 0
    for addr, actual in zip(task_addrs, actual_exits):
        n_exits, targets = info[addr]
        predicted = predictor.predict(addr, n_exits)
        trials += 1
        wrong = predicted != actual
        if wrong:
            misses += 1
            wrong_path_predictions += _pollute(
                predictor, info, targets[predicted], wrong_path_depth
            )
        predictor.resolve(addr, n_exits, actual, was_wrong_path=wrong)
    return RelaxedPredictionStats(
        trials=trials,
        misses=misses,
        wrong_path_predictions=wrong_path_predictions,
    )


def _pollute(
    predictor: SpeculativePathPredictor,
    info: dict[int, tuple[int, tuple]],
    wrong_target: int | None,
    depth: int,
) -> int:
    """Predict down the wrong path, polluting history; return step count.

    Wrong-path predictions are never resolved (the hardware squashes those
    tasks before completion), so they train nothing — they only shift
    addresses into the speculative history register.
    """
    steps = 0
    current = wrong_target
    while current is not None and steps < depth:
        entry = info.get(current)
        if entry is None:
            break
        n_exits, targets = entry
        predicted = predictor.predict_wrong_path(current, n_exits)
        steps += 1
        current = targets[predicted]
    return steps
