"""Result records produced by the functional simulators."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ExitPredictionStats:
    """Outcome of an exit-prediction run (Figures 6, 7, 10, 11).

    Attributes:
        trials: Dynamic task predictions made (every trace record).
        misses: Predictions whose exit index was wrong.
        multiway_trials: Predictions for tasks with more than one exit —
            single-exit tasks are trivially correct.
        multiway_misses: Of those, how many missed.
        states_touched: Distinct predictor states exercised (Figure 11).
        storage_bits: Hardware budget of the configuration (0 for ideal).
    """

    trials: int
    misses: int
    multiway_trials: int
    multiway_misses: int
    states_touched: int
    storage_bits: int

    @property
    def miss_rate(self) -> float:
        """Miss rate over all dynamic tasks."""
        return self.misses / self.trials if self.trials else 0.0

    @property
    def multiway_miss_rate(self) -> float:
        """Miss rate over multi-exit tasks only."""
        if not self.multiway_trials:
            return 0.0
        return self.multiway_misses / self.multiway_trials


@dataclass(frozen=True)
class TargetPredictionStats:
    """Outcome of an indirect-target prediction run (Figures 8, 12).

    Attributes:
        trials: Indirect-exit records predicted.
        misses: Wrong or absent target predictions.
        entries_touched: Distinct buffer slots exercised.
        storage_bits: Hardware budget of the buffer (0 for ideal).
    """

    trials: int
    misses: int
    entries_touched: int
    storage_bits: int

    @property
    def miss_rate(self) -> float:
        """Target miss rate over indirect exits."""
        return self.misses / self.trials if self.trials else 0.0


@dataclass(frozen=True)
class TaskPredictionStats:
    """Outcome of a full next-task-address prediction run (Table 3).

    Attributes:
        trials: Dynamic task predictions made.
        address_misses: Predictions whose next-task address was wrong.
        misses_by_type: Address misses broken down by the *actual* exit's
            control-flow type name.
        trials_by_type: Trials broken down the same way.
        storage_bits: Total hardware budget of the predictor.
    """

    trials: int
    address_misses: int
    misses_by_type: dict[str, int] = field(default_factory=dict)
    trials_by_type: dict[str, int] = field(default_factory=dict)
    storage_bits: int = 0

    @property
    def address_miss_rate(self) -> float:
        """Next-address miss rate over all dynamic tasks."""
        return self.address_misses / self.trials if self.trials else 0.0

    def miss_rate_for(self, cf_type_name: str) -> float:
        """Address miss rate restricted to one control-flow type."""
        trials = self.trials_by_type.get(cf_type_name, 0)
        if not trials:
            return 0.0
        return self.misses_by_type.get(cf_type_name, 0) / trials
