"""PUR rules: worker-purity race detector for cell callables.

The parallel engine pickles each :class:`~repro.evalx.parallel.Cell`'s
``fn`` by reference and runs it in worker processes. Two things break
that contract:

* **Shared mutable module state** (PUR001). A module-level dict/list/set
  written by code reachable from a cell function diverges between the
  serial path (one process, writes accumulate across cells) and the
  pooled path (each worker has its own copy) — and under a future
  thread-based executor it would be a data race outright. The detector
  builds a call graph seeded at every function passed as a Cell's ``fn``
  and flags module-level mutable globals that reachable code mutates.
* **Unpicklable callables** (PUR002). Lambdas and nested functions
  cannot be pickled by reference; handing one to a Cell works serially
  and explodes only when ``--jobs`` first fans out.

Intentional per-process memo caches (value depends only on the key)
belong in the baseline with a justification, not silenced wholesale.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.analysis.core import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    register_rule,
)
from repro.analysis.rules._shared import (
    ImportMap,
    dotted_call_name,
    local_names,
    walk_scopes,
)

#: Constructors whose result is shared mutable state when module-level.
_MUTABLE_CTORS = frozenset(
    {"dict", "list", "set", "defaultdict", "deque", "OrderedDict",
     "Counter", "bytearray"}
)

#: Methods that mutate their receiver (dict/list/set union).
_MUTATING_METHODS = frozenset(
    {"append", "extend", "insert", "add", "update", "clear", "pop",
     "popitem", "remove", "discard", "setdefault", "sort", "reverse",
     "appendleft", "extendleft", "popleft", "subtract",
     "intersection_update", "difference_update",
     "symmetric_difference_update"}
)


def _is_mutable_ctor(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = dotted_call_name(node.func)
        if dotted is None:
            return False
        return dotted.split(".")[-1] in _MUTABLE_CTORS
    return False


@dataclass
class _FunctionFacts:
    """Per-function summary used by the reachability pass."""

    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Globals of the *same* module this function mutates.
    global_writes: dict[str, int] = field(default_factory=dict)
    #: Globals of *other* project modules mutated via ``alias.G[...]``.
    foreign_writes: dict[tuple[str, str], int] = field(default_factory=dict)
    #: Callees: ("local", name) or ("module", dotted_module, attr).
    calls: set[tuple] = field(default_factory=set)


@dataclass
class _ModuleFacts:
    """Per-module summary: globals, functions, imports, cell seeds."""

    module: ModuleInfo
    imports: ImportMap
    mutable_globals: dict[str, int] = field(default_factory=dict)
    #: Module-level functions by bare name.
    functions: dict[str, _FunctionFacts] = field(default_factory=dict)
    #: Bare names of functions defined *inside* other functions.
    nested_functions: set[str] = field(default_factory=set)


def _mutation_base(node: ast.AST) -> ast.expr | None:
    """The object a statement mutates, or None.

    Covers ``base[...] = v``, ``del base[...]``, ``base[...] += v``,
    ``base.method(...)`` for mutating methods, and ``base += v``.
    """
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if isinstance(target, ast.Subscript):
                return target.value
        if isinstance(node, ast.AugAssign) and isinstance(
            node.target, ast.Name
        ):
            return node.target
    if isinstance(node, ast.Delete):
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                return target.value
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _MUTATING_METHODS:
            return node.func.value
    return None


def _collect_module_facts(
    module: ModuleInfo, project: Project
) -> _ModuleFacts:
    facts = _ModuleFacts(module=module, imports=ImportMap.of(module.tree))

    for stmt in module.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is not None and _is_mutable_ctor(value):
            for target in targets:
                if isinstance(target, ast.Name):
                    facts.mutable_globals[target.id] = stmt.lineno

    for qualname, scope, _body in walk_scopes(module.tree):
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if ".<locals>." in qualname:
            facts.nested_functions.add(scope.name)
        fn = _FunctionFacts(qualname=qualname, node=scope)
        locals_ = local_names(scope)
        for node in ast.walk(scope):
            base = _mutation_base(node)
            if base is not None:
                if (
                    isinstance(base, ast.Name)
                    and base.id not in locals_
                ):
                    fn.global_writes.setdefault(base.id, node.lineno)
                elif isinstance(base, ast.Attribute) and isinstance(
                    base.value, ast.Name
                ):
                    alias = base.value.id
                    target_module = facts.imports.modules.get(alias)
                    if target_module is not None:
                        fn.foreign_writes.setdefault(
                            (target_module, base.attr), node.lineno
                        )
            if isinstance(node, ast.Call):
                dotted = dotted_call_name(node.func)
                if dotted is None:
                    continue
                head, _, rest = dotted.partition(".")
                if not rest:
                    if head in facts.imports.names:
                        target_mod, attr = facts.imports.names[head]
                        fn.calls.add(("module", target_mod, attr))
                    else:
                        fn.calls.add(("local", head))
                elif "." not in rest:
                    target_module = facts.imports.modules.get(head)
                    if target_module is not None:
                        fn.calls.add(("module", target_module, rest))
        # ``global G`` plus any store counts as a rebinding write too.
        declared_global: set[str] = set()
        for node in ast.walk(scope):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        if declared_global:
            for node in ast.walk(scope):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Store)
                    and node.id in declared_global
                ):
                    fn.global_writes.setdefault(node.id, node.lineno)
        # Functions can shadow each other across scopes; module-level
        # defs win the bare-name slot (they are what imports resolve to).
        if ".<locals>." not in qualname:
            facts.functions[scope.name] = fn
        else:
            facts.functions.setdefault(scope.name, fn)
    return facts


def _cell_fn_seeds(
    facts: _ModuleFacts,
) -> Iterator[tuple[str, str, ast.expr]]:
    """Every ``Cell(fn=...)`` argument: (module_dotted, fn_name, node).

    Resolves the ``Cell`` constructor loosely — any call whose final name
    segment is ``Cell`` — so fixtures and future relocations both work.
    The second positional argument is ``fn`` per the Cell dataclass.
    """
    for node in ast.walk(facts.module.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = dotted_call_name(node.func)
        if dotted is None or dotted.split(".")[-1] != "Cell":
            continue
        fn_arg: ast.expr | None = None
        for keyword in node.keywords:
            if keyword.arg == "fn":
                fn_arg = keyword.value
        if fn_arg is None and len(node.args) >= 2:
            fn_arg = node.args[1]
        if fn_arg is None:
            continue
        if isinstance(fn_arg, ast.Name):
            name = fn_arg.id
            if name in facts.imports.names:
                target_mod, attr = facts.imports.names[name]
                yield target_mod, attr, fn_arg
            else:
                yield facts.module.dotted, name, fn_arg
        elif isinstance(fn_arg, ast.Attribute) and isinstance(
            fn_arg.value, ast.Name
        ):
            target_module = facts.imports.modules.get(fn_arg.value.id)
            if target_module is not None:
                yield target_module, fn_arg.attr, fn_arg
            else:
                yield facts.module.dotted, fn_arg.attr, fn_arg
        else:
            # Lambdas / calls: PUR002's department, not reachability's.
            yield facts.module.dotted, "<anonymous>", fn_arg


class _ProjectFacts:
    """Lazily collected per-module facts plus the reachability engine."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self._facts: dict[str, _ModuleFacts] = {}

    def facts_for(self, dotted: str) -> _ModuleFacts | None:
        if dotted not in self._facts:
            module = self.project.module(dotted)
            if module is None:
                return None
            self._facts[dotted] = _collect_module_facts(
                module, self.project
            )
        return self._facts[dotted]

    def reachable(
        self, seeds: list[tuple[str, str]]
    ) -> list[tuple[_ModuleFacts, _FunctionFacts]]:
        """BFS over the project call graph from the seed functions."""
        seen: set[tuple[str, str]] = set()
        queue = list(seeds)
        out: list[tuple[_ModuleFacts, _FunctionFacts]] = []
        while queue:
            dotted, name = queue.pop(0)
            if (dotted, name) in seen:
                continue
            seen.add((dotted, name))
            facts = self.facts_for(dotted)
            if facts is None:
                continue
            fn = facts.functions.get(name)
            if fn is None:
                continue
            out.append((facts, fn))
            for call in sorted(fn.calls, key=repr):
                if call[0] == "local":
                    queue.append((dotted, call[1]))
                else:
                    queue.append((call[1], call[2]))
        return out


@register_rule
class SharedMutableGlobals(Rule):
    id = "PUR001"
    title = "module global mutated by cell-reachable code"
    rationale = (
        "Cell functions run in worker processes; writes to module-level "
        "mutable globals happen per process, so serial and --jobs runs "
        "see different state (and threads would race). Pass state in "
        "through kwargs, or baseline genuine per-process memo caches."
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        pfacts = _ProjectFacts(project)
        seeds: list[tuple[str, str]] = []
        for module in project.modules:
            facts = pfacts.facts_for(module.dotted)
            if facts is None:
                continue
            for target_mod, fn_name, _node in _cell_fn_seeds(facts):
                seeds.append((target_mod, fn_name))
        reported: set[tuple[str, str]] = set()
        for facts, fn in pfacts.reachable(seeds):
            for name, _line in sorted(fn.global_writes.items()):
                global_line = facts.mutable_globals.get(name)
                if global_line is None:
                    continue
                key = (facts.module.relpath, name)
                if key in reported:
                    continue
                reported.add(key)
                yield Finding(
                    rule=self.id,
                    path=facts.module.relpath,
                    line=global_line,
                    col=0,
                    message=(
                        f"module global {name!r} is mutated by "
                        f"{fn.qualname}(), which is reachable from a "
                        "Cell fn; worker processes each get their own "
                        "copy, so shared state diverges"
                    ),
                    symbol=name,
                )
            for (mod_dotted, name), line in sorted(
                fn.foreign_writes.items()
            ):
                target = pfacts.facts_for(mod_dotted)
                if target is None:
                    continue
                global_line = target.mutable_globals.get(name)
                if global_line is None:
                    continue
                key = (target.module.relpath, name)
                if key in reported:
                    continue
                reported.add(key)
                yield Finding(
                    rule=self.id,
                    path=target.module.relpath,
                    line=global_line,
                    col=0,
                    message=(
                        f"module global {name!r} is mutated by "
                        f"{fn.qualname}() (cross-module), reachable "
                        "from a Cell fn"
                    ),
                    symbol=name,
                )


@register_rule
class UnpicklableCellCallable(Rule):
    id = "PUR002"
    title = "Cell fn is not picklable by reference"
    rationale = (
        "ProcessPoolExecutor pickles cell functions by module-qualified "
        "name; lambdas and functions nested inside other functions have "
        "no importable name, so --jobs N crashes where serial runs pass. "
        "Cell fns must be module-level."
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        facts = _collect_module_facts(module, project)
        for target_mod, fn_name, node in _cell_fn_seeds(facts):
            bad_reason: str | None = None
            if isinstance(node, ast.Lambda) or fn_name == "<anonymous>":
                bad_reason = "a lambda/anonymous callable"
            elif target_mod == module.dotted:
                fn = facts.functions.get(fn_name)
                if fn is not None and ".<locals>." in fn.qualname:
                    bad_reason = (
                        f"nested function {fn.qualname!r}"
                    )
            if bad_reason is not None:
                yield Finding(
                    rule=self.id,
                    path=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"Cell fn is {bad_reason}, which cannot be "
                        "pickled by reference; define it at module level"
                    ),
                    symbol=fn_name,
                )
