"""LSE rules: lease-protocol conformance for the sweep service.

The worker protocol is acquire → heartbeat-renew → publish → release,
with one safety rule layered on top: a worker that may have lost its
lease must *abandon* the cell, not publish, because a checkpoint record
or fail marker written by a non-owner races the worker that re-leased
the cell. The repo encodes "may have lost" as a ``lost``
:class:`threading.Event` set by the heartbeat thread after repeated
renewal failures, so ownership is re-confirmed by the fall-through of
``if lost.is_set(): ...abandon...`` (or the truthy arm of a ``renew``
call) immediately before each publication.

These rules check that ordering path-sensitively on the CFG:

* **LSE001** — a publication (``store.save``/``write_fail``/
  ``save_result``) reachable from a cell execution with no ownership
  re-confirmation on some path in between.
* **LSE002** — a publication reachable after the lease was already
  released on some path (release must be the *last* protocol step).
* **LSE003** — ``queue.renew`` called outside a heartbeat thread
  target: renewals from the executor thread defeat the liveness
  signal (a wedged executor would keep its own lease alive).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.cfg import CFG, build_cfg, function_defs
from repro.analysis.core import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    register_rule,
)
from repro.analysis.dataflow import (
    Analysis,
    State,
    run_forward,
    strip_not,
)
from repro.analysis.rules._shared import dotted_call_name
from repro.analysis.rules.atomicity import node_calls

#: State keys (no Python identifier can collide with these).
_OWN = "<ownership>"
_REL = "<released>"

UNCONFIRMED = "unconfirmed"
RELEASED = "released"

#: The in-process cell executors; running one starts the window in
#: which the heartbeat may declare the lease lost.
_EXEC_NAMES = frozenset({"_run_cell_instrumented"})


def _own_calls(fn: ast.AST) -> Iterator[ast.Call]:
    """Calls in a function's own body, not inside nested defs/classes."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _call_parts(call: ast.Call) -> tuple[str, ...]:
    dotted = dotted_call_name(call.func)
    return tuple(dotted.split(".")) if dotted is not None else ()


def _is_exec(call: ast.Call) -> bool:
    parts = _call_parts(call)
    return bool(parts) and parts[-1] in _EXEC_NAMES


def _is_publish(call: ast.Call) -> bool:
    """Durable publication of a leased cell's outcome."""
    parts = _call_parts(call)
    if not parts:
        return False
    if parts[-1] in ("write_fail", "save_result"):
        return True
    return parts[-1] == "save" and "store" in parts[:-1]


def _is_queue_call(call: ast.Call, method: str) -> bool:
    parts = _call_parts(call)
    return (
        len(parts) >= 2
        and parts[-1] == method
        and "queue" in parts[:-1]
    )


def _confirms_ownership(cond: ast.expr, truthy: bool) -> bool:
    """Whether this branch arm proves the lease is still held.

    ``lost.is_set()`` being false confirms; ``queue.renew(...)``
    returning true confirms.
    """
    if not isinstance(cond, ast.Call):
        return False
    if (
        isinstance(cond.func, ast.Attribute)
        and cond.func.attr == "is_set"
        and not truthy
    ):
        return True
    return _is_queue_call(cond, "renew") and truthy


class _OwnershipFlow(Analysis):
    """Tracks may-be-stale ownership after a cell execution."""

    def transfer(self, node_index: int, cfg: CFG, state: State) -> State:
        node = cfg.nodes[node_index]
        if any(_is_exec(call) for call in node_calls(node)):
            new = dict(state)
            new[_OWN] = frozenset({UNCONFIRMED})
            return new
        return state

    def refine(
        self, cond: ast.expr, polarity: bool, state: State
    ) -> State:
        inner, flipped = strip_not(cond)
        truthy = polarity != flipped
        if _confirms_ownership(inner, truthy) and UNCONFIRMED in state.get(
            _OWN, frozenset()
        ):
            new = dict(state)
            new[_OWN] = frozenset()
            return new
        return state


class _ReleaseFlow(Analysis):
    """Tracks whether the lease may already have been released."""

    def transfer(self, node_index: int, cfg: CFG, state: State) -> State:
        node = cfg.nodes[node_index]
        if any(
            _is_queue_call(call, "release")
            for call in node_calls(node)
        ):
            new = dict(state)
            new[_REL] = frozenset({RELEASED})
            return new
        return state


class _LSERule(Rule):
    scope = ("evalx",)

    def _finding(
        self,
        module: ModuleInfo,
        qualname: str,
        node: ast.AST,
        message: str,
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            symbol=qualname,
        )


@register_rule
class PublishWithoutReconfirm(_LSERule):
    id = "LSE001"
    title = "publication without ownership re-confirmation"
    rationale = (
        "Between running a cell and publishing its outcome the "
        "heartbeat may have declared the lease lost (stolen after "
        "expiry); publishing anyway races the worker that re-leased "
        "the cell. Re-check ``lost.is_set()`` (or a truthy ``renew``) "
        "on every path into ``store.save``/``write_fail``, and abandon "
        "instead when ownership is gone."
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        for qualname, fn in function_defs(module.tree):
            cfg = build_cfg(fn)
            states = run_forward(cfg, _OwnershipFlow())
            for node in cfg.nodes:
                if node.stmt is None:
                    continue
                state = states[node.index]
                if UNCONFIRMED not in state.get(_OWN, frozenset()):
                    continue
                for call in node_calls(node):
                    if _is_publish(call):
                        yield self._finding(
                            module,
                            qualname,
                            call,
                            "outcome published on a path with no "
                            "ownership re-check since the cell ran; "
                            "the lease may have been stolen — guard "
                            "with `if lost.is_set(): abandon` (or a "
                            "truthy renew) immediately before "
                            "publishing",
                        )


@register_rule
class ReleaseBeforePublish(_LSERule):
    id = "LSE002"
    title = "lease released before the outcome was published"
    rationale = (
        "Releasing the lease re-opens the cell: another worker can "
        "lease and run it while this one is still writing the record "
        "or fail marker. Release must be the final protocol step, "
        "after every publication."
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        for qualname, fn in function_defs(module.tree):
            cfg = build_cfg(fn)
            states = run_forward(cfg, _ReleaseFlow())
            for node in cfg.nodes:
                if node.stmt is None:
                    continue
                state = states[node.index]
                if RELEASED not in state.get(_REL, frozenset()):
                    continue
                for call in node_calls(node):
                    if _is_publish(call):
                        yield self._finding(
                            module,
                            qualname,
                            call,
                            "outcome published on a path where the "
                            "lease was already released; the cell is "
                            "re-leasable while this worker still "
                            "writes — publish first, release last "
                            "(in the finally block)",
                        )


@register_rule
class RenewOutsideHeartbeat(_LSERule):
    id = "LSE003"
    title = "lease renew outside a heartbeat thread"
    rationale = (
        "Renewals exist to prove the worker process is alive and "
        "making progress; calling ``queue.renew`` from the executor "
        "path lets a wedged executor keep its own lease fresh forever, "
        "defeating expiry+steal. Renew only from a dedicated "
        "``threading.Thread(target=...)`` heartbeat."
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        # Pass 1: every function registered as a Thread target anywhere
        # in the project may legitimately renew.
        heartbeat_targets: set[str] = set()
        for module in project.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                parts = _call_parts(node)
                if not parts or parts[-1] != "Thread":
                    continue
                for keyword in node.keywords:
                    if keyword.arg != "target":
                        continue
                    target = keyword.value
                    if isinstance(target, ast.Attribute):
                        heartbeat_targets.add(target.attr)
                    elif isinstance(target, ast.Name):
                        heartbeat_targets.add(target.id)
        # Pass 2: flag renew calls in any other function (the queue
        # module itself implements the protocol and is exempt).
        for module in project.modules:
            if not self.applies_to(module):
                continue
            if module.relpath.endswith("service/queue.py"):
                continue
            for qualname, fn in function_defs(module.tree):
                if qualname.rpartition(".")[2] in heartbeat_targets:
                    continue
                for node in _own_calls(fn):
                    if _is_queue_call(node, "renew"):
                        yield self._finding(
                            module,
                            qualname,
                            node,
                            "queue.renew called outside a heartbeat "
                            "thread target; executor-path renewals "
                            "keep a wedged worker's lease alive and "
                            "defeat expiry+steal — move renewals into "
                            "a threading.Thread(target=...) heartbeat",
                        )
