"""ENV rules: fault/checkpoint env-var handoff ordering.

Pooled runs hand two pieces of state to subprocess workers through the
environment: the fault plan (``REPRO_FAULTS``) and the checkpoint
directory (``REPRO_CHECKPOINT_DIR``). ``ProcessPoolExecutor`` workers
inherit the parent's environment when they are *spawned* — at the first
submit — so both variables must be armed before any submission, stay
untouched while the pool is live, and be restored only after the last
submission. Mutating them mid-fan-out gives different workers different
plans (a nondeterministic sweep), and arming without restoring leaks
the handoff into every later run in the same process.

* **ENV001** — a handoff variable is mutated on a CFG path *between*
  executor submissions (a submit happened before, another is still
  reachable after).
* **ENV002** — a handoff variable is armed with no restore
  (``os.environ.pop`` / reassignment of the saved previous value)
  reachable on any path, outside the modules whose whole job is
  arming the environment (the faults module, the CLI mains, the
  tuner).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.cfg import CFG, CFGNode, build_cfg, function_defs
from repro.analysis.core import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    register_rule,
)
from repro.analysis.dataflow import Analysis, State, run_forward
from repro.analysis.rules._shared import dotted_call_name
from repro.analysis.rules.atomicity import node_calls, own_exprs

#: Canonical handoff keys and the constant names the repo binds them to.
_KEY_ALIASES = {
    "REPRO_FAULTS": "REPRO_FAULTS",
    "REPRO_CHECKPOINT_DIR": "REPRO_CHECKPOINT_DIR",
    "ENV_VAR": "REPRO_FAULTS",
    "_FAULT_ENV_VAR": "REPRO_FAULTS",
    "CHECKPOINT_ENV": "REPRO_CHECKPOINT_DIR",
}

#: Modules whose purpose is arming the environment for child processes
#: (suffix-matched on the dotted name, so fixture trees qualify too).
_ARMING_ALLOWED = (
    "evalx.faults",
    "evalx.__main__",
    "evalx.service.__main__",
    "evalx.tune",
)

#: Calls that fan work out to pool workers.
_SUBMIT_NAMES = frozenset({"submit", "execute_cells"})

_SUBMITTED = "<submitted>"
_SAVED = "saved-env"


def _handoff_key(expr: ast.expr) -> str | None:
    """The canonical handoff key an env subscript/argument names."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return _KEY_ALIASES.get(expr.value)
    if isinstance(expr, ast.Name):
        return _KEY_ALIASES.get(expr.id)
    if isinstance(expr, ast.Attribute):
        return _KEY_ALIASES.get(expr.attr)
    return None


def _is_environ(expr: ast.expr) -> bool:
    dotted = dotted_call_name(expr)
    return dotted in ("os.environ", "environ")


def _env_subscript_key(expr: ast.expr) -> str | None:
    """Key of an ``os.environ[<key>]`` subscript, when a handoff key."""
    if isinstance(expr, ast.Subscript) and _is_environ(expr.value):
        return _handoff_key(expr.slice)
    return None


class _EnvOp:
    """One mutation of a handoff variable at one CFG node."""

    def __init__(
        self, node: CFGNode, key: str, anchor: ast.AST, arming: bool
    ) -> None:
        self.node = node
        self.key = key
        self.anchor = anchor
        self.arming = arming


def _env_ops(node: CFGNode, state: State) -> list[_EnvOp]:
    """Handoff mutations performed at this node.

    ``arming`` distinguishes installing a new value from restoring a
    previously saved one: ``os.environ.pop`` and ``del`` are restores,
    as is reassignment of a variable that dataflow-carries the saved
    ``os.environ.get(...)`` snapshot.
    """
    stmt = node.stmt
    ops: list[_EnvOp] = []
    if stmt is None:
        return ops
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            key = _env_subscript_key(target)
            if key is None:
                continue
            restoring = (
                isinstance(stmt.value, ast.Name)
                and _SAVED in state.get(stmt.value.id, frozenset())
            )
            ops.append(_EnvOp(node, key, stmt, arming=not restoring))
    if isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            key = _env_subscript_key(target)
            if key is not None:
                ops.append(_EnvOp(node, key, stmt, arming=False))
    for call in node_calls(node):
        dotted = dotted_call_name(call.func)
        if dotted is None:
            continue
        parts = dotted.split(".")
        if not call.args:
            continue
        key = _handoff_key(call.args[0])
        if key is None:
            continue
        if parts[-1] == "pop" and len(parts) >= 2 and _is_environ(
            call.func.value  # type: ignore[union-attr]
        ):
            ops.append(_EnvOp(node, key, call, arming=False))
        elif parts[-1] in ("setdefault", "putenv") and (
            parts[0] == "os" or _is_environ_receiver(call)
        ):
            ops.append(_EnvOp(node, key, call, arming=True))
    return ops


def _is_environ_receiver(call: ast.Call) -> bool:
    return isinstance(call.func, ast.Attribute) and _is_environ(
        call.func.value
    )


def _is_submit(call: ast.Call) -> bool:
    dotted = dotted_call_name(call.func)
    if dotted is None:
        return False
    return dotted.rpartition(".")[2] in _SUBMIT_NAMES


class _HandoffFlow(Analysis):
    """Tags saved-env snapshots and the first executor submission."""

    def transfer(self, node_index: int, cfg: CFG, state: State) -> State:
        node = cfg.nodes[node_index]
        new: State | None = None
        stmt = node.stmt
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
            and dotted_call_name(stmt.value.func)
            in ("os.environ.get", "environ.get", "os.getenv", "getenv")
        ):
            new = dict(state)
            new[stmt.targets[0].id] = frozenset({_SAVED})
        if any(_is_submit(call) for call in node_calls(node)):
            new = dict(state) if new is None else new
            new[_SUBMITTED] = frozenset({"yes"})
        return state if new is None else new


def _function_flows(
    module: ModuleInfo,
) -> Iterator[tuple[str, CFG, list[State]]]:
    for qualname, fn in function_defs(module.tree):
        cfg = build_cfg(fn)
        yield qualname, cfg, run_forward(cfg, _HandoffFlow())


class _ENVRule(Rule):
    scope = ("evalx", "synth")

    def _finding(
        self,
        module: ModuleInfo,
        qualname: str,
        anchor: ast.AST,
        message: str,
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=module.relpath,
            line=getattr(anchor, "lineno", 1),
            col=getattr(anchor, "col_offset", 0),
            message=message,
            symbol=qualname,
        )


@register_rule
class HandoffMutatedMidFanout(_ENVRule):
    id = "ENV001"
    title = "env handoff mutated between executor submissions"
    rationale = (
        "Spawned pool workers snapshot the environment at submission; "
        "changing REPRO_FAULTS/REPRO_CHECKPOINT_DIR after one submit "
        "and before another hands different workers different plans — "
        "a nondeterministic sweep. Arm the handoff once before the "
        "first submit and restore it only after the last."
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        for qualname, cfg, states in _function_flows(module):
            submit_nodes = {
                node.index
                for node in cfg.nodes
                if node.stmt is not None
                and any(_is_submit(call) for call in node_calls(node))
            }
            if not submit_nodes:
                continue
            for node in cfg.nodes:
                if node.stmt is None:
                    continue
                state = states[node.index]
                for op in _env_ops(node, state):
                    if "yes" not in state.get(
                        _SUBMITTED, frozenset()
                    ):
                        continue
                    if cfg.reaches(node.index, submit_nodes):
                        yield self._finding(
                            module,
                            qualname,
                            op.anchor,
                            f"{op.key} mutated on a path between "
                            "executor submissions; workers spawned "
                            "after this point see a different handoff "
                            "than earlier ones — move the mutation "
                            "before the first submit or after the "
                            "last",
                        )


@register_rule
class HandoffArmedWithoutRestore(_ENVRule):
    id = "ENV002"
    title = "env handoff armed without a reachable restore"
    rationale = (
        "Arming REPRO_FAULTS/REPRO_CHECKPOINT_DIR without restoring "
        "the previous value leaks the handoff into every subsequent "
        "run in the same process (and its children). Save the prior "
        "value, arm, and restore in a finally block."
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        dotted = module.dotted
        for allowed in _ARMING_ALLOWED:
            if dotted == allowed or dotted.endswith("." + allowed):
                return
        for qualname, cfg, states in _function_flows(module):
            arming: list[_EnvOp] = []
            restores: dict[str, set[int]] = {}
            for node in cfg.nodes:
                if node.stmt is None:
                    continue
                for op in _env_ops(node, states[node.index]):
                    if op.arming:
                        arming.append(op)
                    else:
                        restores.setdefault(op.key, set()).add(
                            node.index
                        )
            for op in arming:
                targets = restores.get(op.key, set())
                if targets and cfg.reaches(op.node.index, targets):
                    continue
                yield self._finding(
                    module,
                    qualname,
                    op.anchor,
                    f"{op.key} armed with no restore on any "
                    "subsequent path; the handoff leaks into later "
                    "runs in this process — snapshot the previous "
                    "value and restore it in a finally block",
                )
