"""DET rules: determinism lint for simulation code.

Serial/parallel bit-identity (the engine's headline guarantee) requires
every cell computation to be a pure function of its arguments. Anything
that reads ambient nondeterminism — global RNG state, wall clocks, or
hash-order iteration — can silently break that, and only shows up as a
flaky one-bit diff under ``--jobs N``. These rules flag the sources at
their call sites, inside the packages that run (or feed) simulations:
``sim``, ``predictors``, ``synth``, and ``evalx.experiments``.

Seeded randomness goes through :class:`repro.utils.rng.SeededRng`;
iteration over sets must be wrapped in ``sorted(...)``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    register_rule,
)
from repro.analysis.rules._shared import (
    ImportMap,
    dotted_call_name,
    enclosing_qualnames,
    resolve_dotted,
    walk_scopes,
)

#: Sub-packages whose code runs inside (or generates inputs for) cells.
SIMULATION_SCOPE = ("sim", "predictors", "synth", "evalx.experiments")

#: ``random`` module functions that read/write the hidden global state.
_GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "shuffle", "sample", "seed", "getrandbits", "gauss", "normalvariate",
        "expovariate", "betavariate", "triangular", "vonmisesvariate",
        "paretovariate", "weibullvariate", "lognormvariate", "randbytes",
    }
)

#: ``numpy.random`` names that do *not* touch the legacy global state.
_NP_RANDOM_OK = frozenset(
    {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox",
     "MT19937", "SFC64", "BitGenerator"}
)

#: Wall-clock reads, fully resolved through imports.
_WALL_CLOCK = frozenset(
    {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)


def _resolved_calls(
    module: ModuleInfo,
) -> Iterator[tuple[ast.Call, str]]:
    """Every call in the module with its import-resolved dotted name."""
    imports = ImportMap.of(module.tree)
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            dotted = dotted_call_name(node.func)
            if dotted is not None:
                yield node, resolve_dotted(dotted, imports)


class _SimulationRule(Rule):
    scope = SIMULATION_SCOPE


@register_rule
class UnseededStdlibRandom(_SimulationRule):
    id = "DET001"
    title = "unseeded stdlib random call"
    rationale = (
        "Module-level random.* functions draw from hidden global state, "
        "so results depend on import order and whatever ran before; use "
        "repro.utils.rng.SeededRng seeded from the workload profile."
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        qualnames = enclosing_qualnames(module.tree)
        for call, dotted in _resolved_calls(module):
            head, _, func = dotted.rpartition(".")
            if head == "random" and func in _GLOBAL_RANDOM_FUNCS:
                yield Finding(
                    rule=self.id,
                    path=module.relpath,
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        f"random.{func}() uses the global RNG; inject a "
                        "repro.utils.rng.SeededRng instead"
                    ),
                    symbol=qualnames.get(id(call), "<module>"),
                )


@register_rule
class LegacyNumpyRandom(_SimulationRule):
    id = "DET002"
    title = "legacy numpy global-state RNG call"
    rationale = (
        "np.random.* legacy functions share one global BitGenerator "
        "across the process; worker pools and import order change the "
        "draw sequence. Use np.random.default_rng(seed) locally."
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        qualnames = enclosing_qualnames(module.tree)
        for call, dotted in _resolved_calls(module):
            if not dotted.startswith("numpy.random."):
                continue
            func = dotted.split(".", 2)[2]
            if func.split(".")[0] in _NP_RANDOM_OK:
                continue
            yield Finding(
                rule=self.id,
                path=module.relpath,
                line=call.lineno,
                col=call.col_offset,
                message=(
                    f"np.random.{func}() mutates the legacy global RNG; "
                    "use np.random.default_rng(seed) scoped to the caller"
                ),
                symbol=qualnames.get(id(call), "<module>"),
            )


@register_rule
class WallClockInSimulation(_SimulationRule):
    id = "DET003"
    title = "wall-clock read in simulation code"
    rationale = (
        "Clock reads inside simulation/generation code leak real time "
        "into results or cache decisions, so two identical runs can "
        "diverge; measure time only in the harness (evalx.metrics)."
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        qualnames = enclosing_qualnames(module.tree)
        for call, dotted in _resolved_calls(module):
            if dotted in _WALL_CLOCK:
                yield Finding(
                    rule=self.id,
                    path=module.relpath,
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        f"{dotted}() reads the wall clock inside "
                        "simulation code; results must not depend on "
                        "real time"
                    ),
                    symbol=qualnames.get(id(call), "<module>"),
                )


def _is_set_expr(node: ast.expr, set_names: set[str]) -> bool:
    """Whether an expression statically evaluates to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        dotted = dotted_call_name(node.func)
        if dotted in ("set", "frozenset"):
            return True
        # s.union(...) etc. on a known set stays a set.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr
            in ("union", "intersection", "difference",
                "symmetric_difference", "copy")
            and _is_set_expr(node.func.value, set_names)
        ):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    return False


#: Builtins whose output order mirrors their input's iteration order.
_ORDER_LEAKING_CALLS = frozenset({"list", "tuple", "enumerate", "iter"})


@register_rule
class SetIterationOrder(_SimulationRule):
    id = "DET004"
    title = "iteration over an unordered set"
    rationale = (
        "Set iteration order follows hash seeding and insertion history; "
        "anything derived from it (trace contents, sweep order feeding "
        "stateful predictors) varies between runs. Iterate sorted(s)."
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        for qualname, scope, _body in walk_scopes(module.tree):
            set_names = self._set_locals(scope)
            for node in self._scope_nodes(scope):
                yield from self._check_node(
                    node, set_names, module, qualname
                )

    @staticmethod
    def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
        """Nodes belonging to this scope (stop at nested defs)."""
        stack = [scope]
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
                ) and child is not node:
                    continue
                stack.append(child)

    def _set_locals(self, scope: ast.AST) -> set[str]:
        """Names whose every assignment in this scope is a set expression."""
        assigned: dict[str, list[ast.expr]] = {}
        for node in self._scope_nodes(scope):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    assigned.setdefault(target.id, []).append(value)
        names: set[str] = set()
        # Fixed point: s = set(); s = s | other …
        for _ in range(2):
            names = {
                name
                for name, values in assigned.items()
                if all(_is_set_expr(v, names) for v in values)
            }
        return names

    def _check_node(
        self,
        node: ast.AST,
        set_names: set[str],
        module: ModuleInfo,
        qualname: str,
    ) -> Iterator[Finding]:
        suspects: list[tuple[ast.expr, str]] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            suspects.append((node.iter, "for-loop over"))
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for gen in node.generators:
                suspects.append((gen.iter, "comprehension over"))
        elif isinstance(node, ast.Call):
            dotted = dotted_call_name(node.func)
            if dotted in _ORDER_LEAKING_CALLS and node.args:
                suspects.append((node.args[0], f"{dotted}() over"))
        for expr, context in suspects:
            if _is_set_expr(expr, set_names):
                yield Finding(
                    rule=self.id,
                    path=module.relpath,
                    line=expr.lineno,
                    col=expr.col_offset,
                    message=(
                        f"{context} a set: iteration order is "
                        "nondeterministic; use sorted(...) to fix the "
                        "order"
                    ),
                    symbol=qualname,
                )
