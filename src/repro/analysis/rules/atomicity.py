"""FS rules: atomic-write discipline for shared service directories.

Every durable artifact the distributed sweep service shares between
processes — checkpoint records, leases, job records and results, queue
manifests, fail markers, trace-cache entries — must be published with
one of exactly two idioms:

* **tmp + replace**: write a pid-unique *sibling* temp file, then
  ``os.replace`` it over the destination (atomic on POSIX, same
  filesystem by construction when the temp is a sibling);
* **O_EXCL create**: ``open(path, "x")`` for claim-style files where
  exactly one creator must win (leases).

A bare ``open(path, "w")``/``write_text`` on a shared path is a torn
read waiting to happen: any concurrent reader can observe a truncated
or half-written file. The FS rules check the discipline
flow-sensitively — a path variable's provenance (shared root, sibling
temp, unknown) is tracked through assignments, ``with`` bindings,
branches and loops via the CFG/dataflow engine, and helper effects
(``fsync_write_text``) come from project call summaries.

* **FS001** — direct overwrite-mode write to a shared path.
* **FS002** — ``os.replace`` publication whose temp content was never
  fsynced (durability-critical modules only): after a crash+power cut
  the rename can survive while the data does not, publishing an empty
  record.
* **FS003** — read-modify-write of a shared file with no lease
  acquire/renew in sight: two concurrent writers silently drop one
  update.
* **FS004** — ``os.replace`` onto a shared path whose source is not a
  pid-unique sibling temp (cross-filesystem rename, or concurrent
  writers truncating each other's temp).
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator

from repro.analysis.cfg import CFG, CFGNode, build_cfg, function_defs
from repro.analysis.core import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    register_rule,
)
from repro.analysis.dataflow import (
    Analysis,
    State,
    SummaryMap,
    expr_is_shared,
    run_forward,
    summarize_paths,
)
from repro.analysis.rules._shared import dotted_call_name

# Abstract tags a path variable can carry.
SHARED = "shared"  #: under a shared service root
TMP = "tmp"  #: sibling temp derived from a shared path
TMP_NOPID = "tmp-nopid"  #: sibling temp whose name is not pid-unique
WRITTEN = "written"  #: file content written through this path
SYNCED = "synced"  #: os.fsync'd after the write

#: Whole-state flags (keyed under names no Python identifier can shadow).
_READ_FLAG = "<read-shared>"
_LEASE_FLAG = "<lease-held>"

#: Writer calls that truncate/overwrite their target.
_WRITE_METHODS = frozenset({"write_text", "write_bytes"})
_NUMPY_WRITERS = frozenset({"save", "savez", "savez_compressed"})


def _mode_of(call: ast.Call) -> str | None:
    """The literal mode of an ``open(...)`` call (None when dynamic)."""
    mode: ast.expr | None = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


def _tmpish_name(arg: ast.expr) -> tuple[bool, bool]:
    """(is_tmp_name, is_pid_unique) for a ``with_name`` argument."""
    texts: list[str] = []
    has_pid = False
    for node in ast.walk(arg):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            texts.append(node.value)
        if isinstance(node, ast.Attribute) and node.attr == "getpid":
            has_pid = True
        if isinstance(node, ast.Name) and node.id == "getpid":
            has_pid = True
    joined = "".join(texts)
    is_tmp = joined.startswith(".") or ".tmp" in joined or "tmp-" in joined
    return is_tmp, has_pid


def own_exprs(node: CFGNode) -> list[ast.expr]:
    """The expressions evaluated *at* this CFG node (no nested bodies)."""
    stmt = node.stmt
    if stmt is None:
        return []
    if node.kind == "cond":
        return [node.expr] if node.expr is not None else []
    if node.kind == "for" and isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if node.kind == "with" and isinstance(stmt, (ast.With, ast.AsyncWith)):
        out: list[ast.expr] = []
        for item in stmt.items:
            out.append(item.context_expr)
        return out
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(
        stmt,
        (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
    ):
        return []
    # Simple statements: every expression they contain is their own.
    return [
        child for child in ast.walk(stmt) if isinstance(child, ast.expr)
    ]


def node_calls(node: CFGNode) -> list[ast.Call]:
    """Every call evaluated at this node, in source order."""
    calls: list[ast.Call] = []
    seen: set[int] = set()
    for expr in own_exprs(node):
        for child in ast.walk(expr):
            if isinstance(child, ast.Call) and id(child) not in seen:
                seen.add(id(child))
                calls.append(child)
    return calls


class PathFlow(Analysis):
    """Tracks path provenance + write/sync status through one function."""

    def __init__(self, summaries: SummaryMap) -> None:
        self.summaries = summaries

    # -- expression kinds ---------------------------------------------

    def kind_of(self, expr: ast.expr, state: State) -> frozenset[str]:
        if isinstance(expr, ast.Name):
            return state.get(expr.id, frozenset())
        if isinstance(expr, ast.Call):
            dotted = dotted_call_name(expr.func)
            if dotted is not None:
                name = dotted.rpartition(".")[2]
                if self.summaries.is_producer(name):
                    return frozenset({SHARED})
                if name in ("with_name", "with_suffix") and isinstance(
                    expr.func, ast.Attribute
                ):
                    base = self.kind_of(expr.func.value, state)
                    if SHARED in base or TMP in base:
                        if not expr.args:
                            return base
                        is_tmp, has_pid = _tmpish_name(expr.args[0])
                        if is_tmp:
                            tags = {TMP}
                            if not has_pid:
                                tags.add(TMP_NOPID)
                            return frozenset(tags)
                        return frozenset({SHARED})
            return frozenset()
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Div):
            left = self.kind_of(expr.left, state)
            if SHARED in left:
                return frozenset({SHARED})
            return frozenset()
        if isinstance(expr, ast.Attribute):
            if expr.attr == "directory":
                return frozenset({SHARED})
            if expr.attr == "parent":
                return self.kind_of(expr.value, state)
        if expr_is_shared(expr, self.summaries):
            return frozenset({SHARED})
        return frozenset()

    # -- transfer -----------------------------------------------------

    def transfer(self, node_index: int, cfg: CFG, state: State) -> State:
        node = cfg.nodes[node_index]
        stmt = node.stmt
        if stmt is None:
            return state
        new: State = dict(state)

        def add_tags(name: str, tags: set[str]) -> None:
            new[name] = new.get(name, frozenset()) | frozenset(tags)

        def path_var_of_handle(handle: str) -> str | None:
            for tag in new.get(handle, frozenset()):
                if tag.startswith("handleof:"):
                    return tag.split(":", 1)[1]
            return None

        # ``with open(p, mode) as h`` binds a handle.
        if node.kind == "with" and isinstance(
            stmt, (ast.With, ast.AsyncWith)
        ):
            for item in stmt.items:
                self._bind_handle(
                    item.optional_vars, item.context_expr, new
                )
        # Assignments: strong update for single-name targets.
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                if not self._bind_handle(target, stmt.value, new):
                    new[target.id] = self.kind_of(stmt.value, state)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                new[stmt.target.id] = self.kind_of(stmt.value, state)

        for call in node_calls(node):
            dotted = dotted_call_name(call.func)
            if dotted is None:
                continue
            name = dotted.rpartition(".")[2]
            receiver = (
                call.func.value
                if isinstance(call.func, ast.Attribute)
                else None
            )
            if name in _WRITE_METHODS and isinstance(receiver, ast.Name):
                add_tags(receiver.id, {WRITTEN})
            elif name == "write" and isinstance(receiver, ast.Name):
                path_var = path_var_of_handle(receiver.id)
                if path_var is not None:
                    add_tags(path_var, {WRITTEN})
            elif name == "dump" and len(call.args) >= 2:
                sink = call.args[1]
                if isinstance(sink, ast.Name):
                    path_var = path_var_of_handle(sink.id)
                    if path_var is not None:
                        add_tags(path_var, {WRITTEN})
            elif name == "fsync":
                self._apply_fsync(call, new, path_var_of_handle)
            elif name in ("read_text", "read_bytes") and isinstance(
                receiver, ast.Name
            ):
                kinds = self.kind_of(receiver, state)
                if SHARED in kinds:
                    add_tags(_READ_FLAG, {SHARED})
            elif name in ("acquire", "renew"):
                add_tags(_LEASE_FLAG, {"held"})
            else:
                summary = self.summaries.get(name)
                if summary is not None:
                    for position, arg in enumerate(call.args):
                        if not isinstance(arg, ast.Name):
                            continue
                        if position in summary.writes_params:
                            add_tags(arg.id, {WRITTEN})
                        if position in summary.syncs_params:
                            add_tags(arg.id, {SYNCED})
        return new

    def _bind_handle(
        self, target: ast.expr | None, value: ast.expr, state: State
    ) -> bool:
        """Record ``h -> handleof:p`` for ``h = open(p, ...)``."""
        if not isinstance(target, ast.Name):
            return False
        if (
            isinstance(value, ast.Call)
            and dotted_call_name(value.func) == "open"
            and value.args
            and isinstance(value.args[0], ast.Name)
        ):
            state[target.id] = frozenset(
                {f"handleof:{value.args[0].id}"}
            )
            return True
        return False

    @staticmethod
    def _apply_fsync(
        call: ast.Call,
        state: State,
        path_var_of_handle: Callable[[str], str | None],
    ) -> None:
        if not call.args:
            return
        arg = call.args[0]
        target: str | None = None
        if (
            isinstance(arg, ast.Call)
            and isinstance(arg.func, ast.Attribute)
            and arg.func.attr == "fileno"
            and isinstance(arg.func.value, ast.Name)
        ):
            target = path_var_of_handle(arg.func.value.id)
        elif isinstance(arg, ast.Name):
            target = path_var_of_handle(arg.id) or arg.id
        if target is not None:
            state[target] = state.get(target, frozenset()) | frozenset(
                {SYNCED}
            )


def _is_os_replace(call: ast.Call) -> bool:
    dotted = dotted_call_name(call.func)
    return dotted in ("os.replace", "replace")


def analyses_for_module(
    module: ModuleInfo, summaries: SummaryMap
) -> Iterator[tuple[str, CFG, PathFlow, list[State]]]:
    """(qualname, cfg, analysis, per-node IN states) for each function."""
    for qualname, fn in function_defs(module.tree):
        cfg = build_cfg(fn)
        analysis = PathFlow(summaries)
        states = run_forward(cfg, analysis)
        yield qualname, cfg, analysis, states


class _FSRule(Rule):
    """Shared driver: run the path-flow analysis, dispatch to check()."""

    scope = ("evalx", "synth")

    def check_project(self, project: Project) -> Iterator[Finding]:
        summaries = summarize_paths(project)
        for module in project.modules:
            if not self.applies_to(module):
                continue
            for qualname, cfg, analysis, states in analyses_for_module(
                module, summaries
            ):
                for node in cfg.nodes:
                    if node.stmt is None:
                        continue
                    yield from self.check_node(
                        module,
                        qualname,
                        cfg,
                        analysis,
                        node,
                        states[node.index],
                    )

    def check_node(
        self,
        module: ModuleInfo,
        qualname: str,
        cfg: CFG,
        analysis: PathFlow,
        node: CFGNode,
        state: State,
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def _finding(
        self,
        module: ModuleInfo,
        qualname: str,
        node: ast.AST,
        message: str,
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            symbol=qualname,
        )


@register_rule
class NonAtomicSharedWrite(_FSRule):
    id = "FS001"
    title = "overwrite-mode write to a shared service path"
    rationale = (
        "Shared-directory artifacts (checkpoint records, job records, "
        "manifests, leases) are read concurrently by other processes; "
        "open(path, 'w')/write_text on the destination lets readers "
        "observe truncated or half-written files. Publish via a "
        "pid-unique sibling temp + os.replace, or open(path, 'x') for "
        "claim files."
    )

    def check_node(
        self,
        module: ModuleInfo,
        qualname: str,
        cfg: CFG,
        analysis: PathFlow,
        node: CFGNode,
        state: State,
    ) -> Iterator[Finding]:
        for call in node_calls(node):
            dotted = dotted_call_name(call.func)
            if dotted is None:
                continue
            name = dotted.rpartition(".")[2]
            target: ast.expr | None = None
            how = ""
            if dotted in ("open", "io.open"):
                mode = _mode_of(call)
                if mode is None or "w" not in mode:
                    continue
                if call.args:
                    target = call.args[0]
                how = f"open(..., {mode!r})"
            elif name in _WRITE_METHODS and isinstance(
                call.func, ast.Attribute
            ):
                target = call.func.value
                how = f".{name}(...)"
            elif (
                name in _NUMPY_WRITERS
                and dotted.startswith(("np.", "numpy."))
                and call.args
            ):
                target = call.args[0]
                how = f"{name}(...)"
            if target is None:
                continue
            kinds = analysis.kind_of(target, state)
            if SHARED in kinds and TMP not in kinds:
                yield self._finding(
                    module,
                    qualname,
                    call,
                    f"{how} overwrites a shared service path in place; "
                    "concurrent readers can observe a torn file — write "
                    "a pid-unique sibling temp and os.replace it, or "
                    "use open(path, 'x') for claim files",
                )


@register_rule
class ReplaceWithoutFsync(_FSRule):
    id = "FS002"
    title = "os.replace publication without fsync on the temp"
    rationale = (
        "The rename can be durable while the temp's data blocks are "
        "not: after a crash + power loss the store can hold a "
        "zero-length or partial record under a committed name. "
        "Durability-critical records (checkpoint store, job state "
        "machine, queue manifests, fail markers) must flush+fsync the "
        "temp before os.replace."
    )
    #: Only the modules whose records are durable state; the trace
    #: cache (checksummed, regenerated on damage) and lease files
    #: (advisory liveness, rewritten every heartbeat) are exempt.
    scope = ("evalx.checkpoint", "evalx.service")

    def check_node(
        self,
        module: ModuleInfo,
        qualname: str,
        cfg: CFG,
        analysis: PathFlow,
        node: CFGNode,
        state: State,
    ) -> Iterator[Finding]:
        for call in node_calls(node):
            if not _is_os_replace(call) or len(call.args) < 2:
                continue
            src, dst = call.args[0], call.args[1]
            if SHARED not in analysis.kind_of(dst, state):
                continue
            if not isinstance(src, ast.Name):
                continue
            tags = state.get(src.id, frozenset())
            if WRITTEN in tags and SYNCED not in tags:
                yield self._finding(
                    module,
                    qualname,
                    call,
                    f"temp file {src.id!r} is os.replace'd into a "
                    "durable record without fsync; a crash can publish "
                    "an empty/partial file under a committed name — "
                    "flush and os.fsync the handle before the rename "
                    "(see repro.utils.fsio)",
                )


@register_rule
class SharedReadModifyWrite(_FSRule):
    id = "FS003"
    title = "read-modify-write of a shared file without a lease"
    rationale = (
        "Reading a shared record, deciding, and writing it back is a "
        "lost-update race unless the writer holds a lease (or is the "
        "protocol's designated single writer). Acquire/renew a lease "
        "around the cycle, or restructure so each writer owns its own "
        "file."
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        for finding in super().check_project(project):
            # The lease queue itself implements the claim protocol its
            # read/replace cycle exists to provide.
            if finding.path.endswith("evalx/service/queue.py"):
                continue
            yield finding

    def check_node(
        self,
        module: ModuleInfo,
        qualname: str,
        cfg: CFG,
        analysis: PathFlow,
        node: CFGNode,
        state: State,
    ) -> Iterator[Finding]:
        if SHARED not in state.get(_READ_FLAG, frozenset()):
            return
        if "held" in state.get(_LEASE_FLAG, frozenset()):
            return
        for call in node_calls(node):
            is_write = False
            if _is_os_replace(call) and len(call.args) >= 2:
                is_write = SHARED in analysis.kind_of(
                    call.args[1], state
                )
            else:
                dotted = dotted_call_name(call.func)
                if dotted is not None:
                    name = dotted.rpartition(".")[2]
                    if name in _WRITE_METHODS and isinstance(
                        call.func, ast.Attribute
                    ):
                        is_write = SHARED in analysis.kind_of(
                            call.func.value, state
                        )
            if is_write:
                yield self._finding(
                    module,
                    qualname,
                    call,
                    "this function reads a shared file and writes one "
                    "back without acquiring or renewing a lease; "
                    "concurrent writers lose updates — hold a lease "
                    "across the read-modify-write cycle",
                )


@register_rule
class UnsafeReplaceSource(_FSRule):
    id = "FS004"
    title = "os.replace source is not a pid-unique sibling temp"
    rationale = (
        "os.replace is only atomic within one filesystem, and a temp "
        "name shared by concurrent writers lets them truncate each "
        "other mid-publication. Derive the temp from the destination "
        "(path.with_name) and embed os.getpid() in its name."
    )

    def check_node(
        self,
        module: ModuleInfo,
        qualname: str,
        cfg: CFG,
        analysis: PathFlow,
        node: CFGNode,
        state: State,
    ) -> Iterator[Finding]:
        for call in node_calls(node):
            if not _is_os_replace(call) or len(call.args) < 2:
                continue
            src, dst = call.args[0], call.args[1]
            if SHARED not in analysis.kind_of(dst, state):
                continue
            src_kinds = analysis.kind_of(src, state)
            if TMP not in src_kinds:
                yield self._finding(
                    module,
                    qualname,
                    call,
                    "os.replace onto a shared path from a source that "
                    "is not a sibling temp of the destination; a "
                    "cross-filesystem rename is not atomic — derive "
                    "the temp via dst.with_name('.<name>.tmp-<pid>')",
                )
            elif TMP_NOPID in src_kinds:
                yield self._finding(
                    module,
                    qualname,
                    call,
                    "publication temp name is not pid-unique; two "
                    "concurrent writers share the same temp and can "
                    "truncate each other mid-write — embed os.getpid() "
                    "in the temp name",
                )
