"""PROT rules: driver-protocol conformance for experiment modules.

Every module under an ``experiments`` package is an experiment driver
and must speak the engine's protocol (:mod:`repro.evalx.parallel`):

* be registered in the sibling ``registry`` module's ``*_IDS`` tuples,
  so the CLI can reach it (PROT001);
* expose the ``cells(...)``/``combine(...)`` pair, so the scheduler can
  fan it out and ``--jobs`` applies (PROT002);
* have a ``combine`` that tolerates :class:`CellFailure` gap payloads,
  so ``--keep-going`` degrades gracefully instead of crashing during
  result assembly (PROT003).

Shared helpers (``common``) and ``__init__`` are exempt; a deliberately
monolithic driver (e.g. a scoreboard that re-runs other experiments)
belongs in the baseline with its reason.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    register_rule,
)

#: Modules under experiments/ that are not drivers.
_EXEMPT_STEMS = frozenset({"__init__", "common"})


def _driver_modules(project: Project) -> Iterator[ModuleInfo]:
    for module in project.modules:
        segments = module.segments()
        if len(segments) >= 2 and segments[-2] == "experiments":
            stem = segments[-1]
            if stem not in _EXEMPT_STEMS and not stem.startswith("_"):
                yield module


def _registered_ids(module: ModuleInfo, project: Project) -> set[str] | None:
    """Ids listed in the sibling registry's ``*_IDS`` assignments.

    Returns None when no registry module is visible (partial scans,
    fixtures without one) — PROT001 then stays silent rather than
    flagging everything.
    """
    registry_dotted = ".".join(module.segments()[:-2] + ("registry",))
    registry = project.module(registry_dotted)
    if registry is None:
        return None
    ids: set[str] = set()
    found = False
    for stmt in registry.tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        names = [
            t.id for t in stmt.targets if isinstance(t, ast.Name)
        ]
        if not any(name.endswith("_IDS") for name in names):
            continue
        found = True
        for node in ast.walk(stmt.value):
            if isinstance(node, ast.Constant) and isinstance(
                node.value, str
            ):
                ids.add(node.value)
    return ids if found else None


def _module_functions(module: ModuleInfo) -> dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt
        for stmt in module.tree.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _handles_cell_failure(
    combine: ast.FunctionDef, functions: dict[str, ast.FunctionDef]
) -> bool:
    """Whether combine (or local helpers it calls) checks for gaps.

    Accepts any reference to ``is_failure`` or ``CellFailure`` in the
    transitive closure of same-module calls starting at ``combine``.
    """
    seen: set[str] = set()
    queue = [combine]
    while queue:
        fn = queue.pop(0)
        if fn.name in seen:
            continue
        seen.add(fn.name)
        for node in ast.walk(fn):
            if isinstance(node, ast.Name) and node.id in (
                "is_failure", "CellFailure"
            ):
                return True
            if isinstance(node, ast.Attribute) and node.attr in (
                "is_failure", "CellFailure"
            ):
                return True
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Name
            ):
                callee = functions.get(node.func.id)
                if callee is not None:
                    queue.append(callee)
    return False


class _DriverRule(Rule):
    scope = ("experiments",)


@register_rule
class UnregisteredDriver(_DriverRule):
    id = "PROT001"
    title = "experiment driver missing from the registry"
    rationale = (
        "A driver module the registry doesn't list can't be run from the "
        "CLI, silently drops out of 'all'/'extensions' sweeps, and its "
        "shape tests go stale. Add its id to EXPERIMENT_IDS or "
        "EXTENSION_IDS."
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        for module in _driver_modules(project):
            ids = _registered_ids(module, project)
            if ids is None:
                continue
            stem = module.segments()[-1]
            if stem not in ids:
                yield Finding(
                    rule=self.id,
                    path=module.relpath,
                    line=1,
                    col=0,
                    message=(
                        f"driver {stem!r} is not listed in the "
                        "registry's *_IDS tuples; it is unreachable "
                        "from the CLI"
                    ),
                    symbol=stem,
                )


@register_rule
class MissingCellsCombine(_DriverRule):
    id = "PROT002"
    title = "driver lacks the cells/combine protocol"
    rationale = (
        "Monolithic run() drivers execute serially only: --jobs, "
        "--keep-going, retries, per-cell timeouts and metrics all pass "
        "them by. Split the grid into cells() and assemble in combine()."
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        for module in _driver_modules(project):
            functions = _module_functions(module)
            missing = [
                name for name in ("cells", "combine")
                if name not in functions
            ]
            if missing:
                stem = module.segments()[-1]
                yield Finding(
                    rule=self.id,
                    path=module.relpath,
                    line=1,
                    col=0,
                    message=(
                        f"driver {stem!r} does not define "
                        f"{' or '.join(missing)}; the parallel engine "
                        "cannot schedule it"
                    ),
                    symbol=stem,
                )


@register_rule
class CombineIgnoresFailures(_DriverRule):
    id = "PROT003"
    title = "combine() does not handle CellFailure gaps"
    rationale = (
        "Under --keep-going a failed cell's result slot holds a "
        "CellFailure; a combine that indexes into it crashes during "
        "assembly, losing every *successful* cell's work. combine must "
        "check is_failure() and render gaps."
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        for module in _driver_modules(project):
            functions = _module_functions(module)
            combine = functions.get("combine")
            if combine is None:
                continue  # PROT002's finding already covers this driver
            if not _handles_cell_failure(combine, functions):
                stem = module.segments()[-1]
                yield Finding(
                    rule=self.id,
                    path=module.relpath,
                    line=combine.lineno,
                    col=combine.col_offset,
                    message=(
                        f"{stem}.combine() never checks is_failure/"
                        "CellFailure; a --keep-going gap payload would "
                        "crash result assembly"
                    ),
                    symbol=f"{stem}.combine",
                )
