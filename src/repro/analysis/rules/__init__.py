"""Rule families for the repro static-analysis pass.

Importing this package registers every rule with the framework's
registry (see :func:`repro.analysis.core.register_rule`):

* :mod:`repro.analysis.rules.determinism` — ``DET001..DET004``
* :mod:`repro.analysis.rules.purity` — ``PUR001..PUR002``
* :mod:`repro.analysis.rules.protocol` — ``PROT001..PROT003``
* :mod:`repro.analysis.rules.bitwidth` — ``NPW001..NPW003``
* :mod:`repro.analysis.rules.checkpointing` — ``CKP001..CKP002``
* :mod:`repro.analysis.rules.vectorization` — ``VEC001..VEC002``
"""

from repro.analysis.rules import (  # noqa: F401  (register on import)
    bitwidth,
    checkpointing,
    determinism,
    protocol,
    purity,
    vectorization,
)
