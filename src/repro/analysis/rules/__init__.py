"""Rule families for the repro static-analysis pass.

Importing this package registers every rule with the framework's
registry (see :func:`repro.analysis.core.register_rule`):

* :mod:`repro.analysis.rules.determinism` — ``DET001..DET004``
* :mod:`repro.analysis.rules.purity` — ``PUR001..PUR002``
* :mod:`repro.analysis.rules.protocol` — ``PROT001..PROT003``
* :mod:`repro.analysis.rules.bitwidth` — ``NPW001..NPW003``
* :mod:`repro.analysis.rules.checkpointing` — ``CKP001..CKP002``
* :mod:`repro.analysis.rules.vectorization` — ``VEC001..VEC002``
* :mod:`repro.analysis.rules.atomicity` — ``FS001..FS004``
* :mod:`repro.analysis.rules.lease` — ``LSE001..LSE003``
* :mod:`repro.analysis.rules.envorder` — ``ENV001..ENV002``

The FS/LSE/ENV families are flow-sensitive: they run the CFG +
dataflow engine (:mod:`repro.analysis.cfg`,
:mod:`repro.analysis.dataflow`) instead of a flat AST walk.
"""

from repro.analysis.rules import (  # noqa: F401  (register on import)
    atomicity,
    bitwidth,
    checkpointing,
    determinism,
    envorder,
    lease,
    protocol,
    purity,
    vectorization,
)
