"""CKP rules: checkpoint-store and chaos-harness hygiene.

The checkpoint store (:mod:`repro.evalx.checkpoint`) fingerprints every
cell by canonicalizing its kwargs; a kwarg the canonicalizer rejects
means the cell silently loses crash-safety (it runs but is never
persisted or resumed). CKP001 flags the statically detectable cases at
the ``Cell(...)`` construction site, where the fix is cheapest.

The fault injector (:mod:`repro.evalx.faults`) is inert unless a plan is
explicitly installed — that guarantee is what lets chaos code ship in
the production scheduler. CKP002 flags any code path that arms the
injector outside the sanctioned opt-ins (the injector module itself and
the ``--inject-faults`` CLI path), where an accidental install would
corrupt real experiment runs.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    register_rule,
)
from repro.analysis.rules._shared import (
    ImportMap,
    dotted_call_name,
    enclosing_qualnames,
    resolve_dotted,
)

#: Modules allowed to arm the fault injector: the injector itself and
#: the CLI entry points that implement the explicit ``--inject-faults``
#: opt-in (single-host evalx and the sweep-service worker). Tests live
#: outside the scanned roots.
_FAULT_INSTALL_ALLOWED = (
    "repro.evalx.faults",
    "repro.evalx.__main__",
    "repro.evalx.service.__main__",
    "repro.evalx.tune",
)

#: The env var whose presence arms the injector (kept in sync with
#: :data:`repro.evalx.faults.ENV_VAR` by a unit test).
_FAULT_ENV_VAR = "REPRO_FAULTS"


def _unfingerprintable_reason(node: ast.expr) -> str | None:
    """Why a kwargs value expression defeats canonicalization, if it does.

    Mirrors :func:`repro.evalx.checkpoint.canonical_value` statically:
    literals made of None/bool/int/float/str, lists/tuples and str-keyed
    dicts are fine; names, calls and attribute loads are unknowable and
    pass (the runtime check still covers them). Only constructs that can
    *never* canonicalize are flagged.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set (unordered; not JSON-canonical)"
    if isinstance(node, ast.GeneratorExp):
        return "a generator expression (not picklable or canonical)"
    if isinstance(node, ast.Lambda):
        return "a lambda (has no stable import path)"
    if isinstance(node, ast.Constant) and isinstance(
        node.value, (bytes, complex)
    ):
        return f"a {type(node.value).__name__} literal (not JSON-canonical)"
    if isinstance(node, ast.Dict):
        for key in node.keys:
            if key is None:
                continue  # ``**spread``: contents unknowable, pass
            if isinstance(key, ast.Constant) and not isinstance(
                key.value, str
            ):
                return (
                    f"a dict with non-str key {key.value!r} "
                    "(fingerprints require str-keyed dicts)"
                )
        for value in node.values:
            reason = _unfingerprintable_reason(value)
            if reason is not None:
                return reason
    if isinstance(node, (ast.List, ast.Tuple)):
        for item in node.elts:
            reason = _unfingerprintable_reason(item)
            if reason is not None:
                return reason
    return None


@register_rule
class UnfingerprintableCellKwargs(Rule):
    id = "CKP001"
    title = "cell kwargs defeat checkpoint fingerprinting"
    rationale = (
        "A Cell whose kwargs cannot be canonicalized still runs, but is "
        "silently excluded from checkpoint/resume — a killed sweep "
        "re-runs it from scratch every time. Keep kwargs to "
        "None/bool/int/float/str, lists/tuples, str-keyed dicts, or "
        "dataclasses of those."
    )
    scope = ("evalx.experiments",)

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        qualnames = enclosing_qualnames(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_call_name(node.func)
            if dotted is None or dotted.rpartition(".")[2] != "Cell":
                continue
            kwargs_value = None
            for keyword in node.keywords:
                if keyword.arg == "kwargs":
                    kwargs_value = keyword.value
            if len(node.args) >= 3 and kwargs_value is None:
                kwargs_value = node.args[2]
            if kwargs_value is None:
                continue
            reason = _unfingerprintable_reason(kwargs_value)
            if reason is not None:
                yield Finding(
                    rule=self.id,
                    path=module.relpath,
                    line=kwargs_value.lineno,
                    col=kwargs_value.col_offset,
                    message=(
                        f"Cell kwargs contain {reason}; this cell can "
                        "never be checkpointed or resumed"
                    ),
                    symbol=qualnames.get(id(node), "<module>"),
                )


@register_rule
class FaultInjectionWithoutOptIn(Rule):
    id = "CKP002"
    title = "fault injector armed outside the explicit opt-in"
    rationale = (
        "Chaos faults (raise/hang/kill/corrupt) must stay inert unless "
        "the user passed --inject-faults; arming the injector from "
        "library code would sabotage real experiment runs. Only the "
        "injector module and the CLI opt-in path may install a plan."
    )
    scope = None  # the whole tree: an accidental install anywhere is a bug

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        if module.dotted in _FAULT_INSTALL_ALLOWED:
            return
        qualnames = enclosing_qualnames(module.tree)
        imports = ImportMap.of(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                dotted = dotted_call_name(node.func)
                if dotted is None:
                    continue
                resolved = resolve_dotted(dotted, imports)
                if resolved == "repro.evalx.faults.install" or (
                    resolved.endswith(".install")
                    and resolved.startswith("repro.evalx.faults.")
                ):
                    yield Finding(
                        rule=self.id,
                        path=module.relpath,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            "faults.install() arms the chaos injector; "
                            "only the --inject-faults CLI path may do "
                            "this"
                        ),
                        symbol=qualnames.get(id(node), "<module>"),
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if self._is_fault_env_store(target, imports):
                        yield Finding(
                            rule=self.id,
                            path=module.relpath,
                            line=node.lineno,
                            col=node.col_offset,
                            message=(
                                f"assigning os.environ[{_FAULT_ENV_VAR!r}]"
                                " arms the chaos injector; only the "
                                "--inject-faults CLI path may do this"
                            ),
                            symbol=qualnames.get(id(node), "<module>"),
                        )

    @staticmethod
    def _is_fault_env_store(target: ast.expr, imports: ImportMap) -> bool:
        """Whether a store target is ``os.environ["REPRO_FAULTS"]``."""
        if not isinstance(target, ast.Subscript):
            return False
        container = dotted_call_name(target.value)
        if container is None:
            return False
        if resolve_dotted(container, imports) != "os.environ":
            return False
        key = target.slice
        return (
            isinstance(key, ast.Constant) and key.value == _FAULT_ENV_VAR
        )
