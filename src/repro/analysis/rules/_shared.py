"""AST helpers shared by the rule implementations.

These are deliberately *local* inferences: names are resolved through a
module's own import statements and assignments, never by executing
anything. That keeps the analyzer deterministic, fast, and safe to run
on broken working trees — at the cost of missing aliases smuggled
through data structures, which the rules accept as out of scope.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.analysis.astutil import dotted_call_name  # noqa: F401  (re-export)


@dataclass
class ImportMap:
    """A module's import statements, resolved to dotted names.

    Attributes:
        modules: local alias -> imported module ("np" -> "numpy").
        names: local name -> (module, attr) for ``from m import a [as b]``.
    """

    modules: dict[str, str] = field(default_factory=dict)
    names: dict[str, tuple[str, str]] = field(default_factory=dict)

    @classmethod
    def of(cls, tree: ast.Module) -> ImportMap:
        imports = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        # ``import a.b as c`` binds c -> a.b
                        imports.modules[alias.asname] = alias.name
                    else:
                        # ``import a.b`` binds a -> a
                        top = alias.name.split(".")[0]
                        imports.modules[top] = top
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:
                    continue  # relative imports: not resolvable here
                for alias in node.names:
                    local = alias.asname or alias.name
                    imports.names[local] = (node.module, alias.name)
        return imports


def resolve_dotted(dotted: str, imports: ImportMap) -> str:
    """Expand a call's dotted name through the module's imports.

    ``np.random.rand`` -> ``numpy.random.rand``; a bare ``time`` imported
    via ``from time import time`` -> ``time.time``. Unresolvable names
    come back unchanged.
    """
    head, _, rest = dotted.partition(".")
    if head in imports.modules:
        base = imports.modules[head]
        return f"{base}.{rest}" if rest else base
    if head in imports.names:
        module, attr = imports.names[head]
        expanded = f"{module}.{attr}"
        return f"{expanded}.{rest}" if rest else expanded
    return dotted


def walk_scopes(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.AST, list[ast.stmt]]]:
    """Yield ``(qualname, scope_node, body)`` for the module and each def.

    The module itself comes first with qualname ``"<module>"``. Class
    bodies are traversed for the defs inside them but are not scopes of
    their own (class-level statements execute at import, i.e. in the
    module scope for our purposes).
    """
    yield "<module>", tree, tree.body

    def visit(node: ast.AST, prefix: str) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield qualname, child, child.body
                yield from visit(child, f"{qualname}.<locals>.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")
            else:
                yield from visit(child, prefix)

    yield from visit(tree, "")


def enclosing_qualnames(tree: ast.Module) -> dict[int, str]:
    """Map ``id(node)`` -> qualname of the def/module enclosing it.

    Each scope claims only its own nodes: descent stops at nested
    function/lambda boundaries, which the inner scope's own entry in
    :func:`walk_scopes` covers.
    """
    table: dict[int, str] = {}
    for qualname, scope, _body in walk_scopes(tree):
        stack = [scope]
        while stack:
            node = stack.pop()
            table[id(node)] = qualname
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
                ):
                    continue  # owned by the inner scope's walk
                stack.append(child)
    return table


def local_names(scope: ast.AST) -> set[str]:
    """Names bound locally in a function scope (params + stores).

    Over-approximates: any Name stored anywhere in the body counts, plus
    parameters, ``for`` targets and ``with ... as`` targets. Names
    declared ``global`` are excluded.
    """
    names: set[str] = set()
    globals_declared: set[str] = set()
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        for arg in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *filter(None, (args.vararg, args.kwarg)),
        ):
            names.add(arg.arg)
    for node in ast.walk(scope):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            names.add(node.id)
        elif isinstance(node, ast.Global):
            globals_declared.update(node.names)
    return names - globals_declared


def call_dtype_name(call: ast.Call) -> str | None:
    """Extract the dtype keyword of a call as a plain name, if present."""
    for keyword in call.keywords:
        if keyword.arg == "dtype":
            return _dtype_name(keyword.value)
    return None


def _dtype_name(node: ast.expr) -> str | None:
    """Normalise a dtype expression (``np.int32``, ``"int32"``, ``bool``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def dtype_of_astype(call: ast.Call) -> str | None:
    """dtype name of an ``x.astype(...)`` call, or None."""
    if (
        isinstance(call.func, ast.Attribute)
        and call.func.attr == "astype"
        and call.args
    ):
        return _dtype_name(call.args[0])
    return None
