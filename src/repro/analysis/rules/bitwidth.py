"""NPW rules: numpy bit-width lint for shift/pack/accumulate kernels.

The vectorized kernels pack multi-field history keys into integer words
(:mod:`repro.utils.windows`). numpy integer arithmetic wraps silently on
overflow — there is no Python-int promotion — so three idioms deserve a
machine check:

* shifting a narrow (< 64-bit) integer array (NPW001): the shifted bits
  fall off the end without a word-width guard ever firing;
* integer/bool reductions without an explicit ``dtype`` (NPW002):
  ``sum``/``cumsum`` accumulate in a platform-dependent width (C long —
  32-bit on Windows), so a kernel can be correct on Linux and wrong on
  another platform;
* variable-amount shifts with no word-width guard in sight (NPW003):
  ``word << bits`` is only safe when something bounds the accumulated
  bit count below the dtype width.

Inference is function-local: a name counts as a numpy array of dtype D
when it is assigned from an array constructor with ``dtype=D`` or an
``.astype(D)`` in the same scope.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    register_rule,
)
from repro.analysis.rules._shared import (
    ImportMap,
    call_dtype_name,
    dotted_call_name,
    dtype_of_astype,
    resolve_dotted,
    walk_scopes,
)

_NARROW_INT = frozenset(
    {"int8", "int16", "int32", "uint8", "uint16", "uint32"}
)
_WIDE_INT = frozenset({"int64", "uint64", "int_", "intp", "longlong"})
_BOOL = frozenset({"bool", "bool_"})

#: numpy constructors that produce arrays and accept dtype=.
_ARRAY_CTORS = frozenset(
    {"zeros", "ones", "empty", "full", "array", "asarray", "arange",
     "fromiter", "zeros_like", "ones_like", "empty_like", "full_like",
     "frombuffer", "fromfile"}
)

#: Array methods that preserve the receiver's dtype.
_DTYPE_PRESERVING = frozenset({"copy", "reshape", "ravel", "flatten", "T"})

#: Word-width constants whose presence in a comparison counts as a guard.
_GUARD_CONSTANTS = frozenset({31, 32, 62, 63, 64})


def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    stack = [scope]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.append(child)


class _DtypeScope:
    """Function-local numpy dtype inference."""

    def __init__(self, scope: ast.AST, imports: ImportMap) -> None:
        self.imports = imports
        self.names: dict[str, str] = {}
        # Two passes so chains like a = np.zeros(...); b = a.copy() work
        # regardless of statement order quirks in the walk.
        for _ in range(2):
            for node in _scope_nodes(scope):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name):
                        dtype = self.dtype_of(node.value)
                        if dtype is not None:
                            self.names[target.id] = dtype

    def dtype_of(self, node: ast.expr) -> str | None:
        """Inferred numpy dtype of an expression, or None if unknown."""
        if isinstance(node, ast.Name):
            return self.names.get(node.id)
        if isinstance(node, ast.Call):
            astype = dtype_of_astype(node)
            if astype is not None:
                return astype
            dotted = dotted_call_name(node.func)
            if dotted is not None:
                resolved = resolve_dotted(dotted, self.imports)
                if (
                    resolved.startswith("numpy.")
                    and resolved.split(".")[-1] in _ARRAY_CTORS
                ):
                    return call_dtype_name(node) or "unknown-numpy"
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _DTYPE_PRESERVING
            ):
                return self.dtype_of(node.func.value)
        if isinstance(node, ast.BinOp):
            # Arithmetic keeps the wider operand's dtype; good enough to
            # propagate "this is still a numpy array of width W".
            left = self.dtype_of(node.left)
            right = self.dtype_of(node.right)
            return left or right
        if isinstance(node, ast.Subscript):
            return self.dtype_of(node.value)
        return None


def _has_width_guard(scope: ast.AST) -> bool:
    """Whether any comparison in the scope mentions a word-width constant."""
    for node in _scope_nodes(scope):
        if isinstance(node, ast.Compare):
            for comparator in (node.left, *node.comparators):
                for sub in ast.walk(comparator):
                    if isinstance(sub, ast.Constant) and (
                        sub.value in _GUARD_CONSTANTS
                    ):
                        return True
    return False


class _BitwidthRule(Rule):
    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        imports = ImportMap.of(module.tree)
        for qualname, scope, _body in walk_scopes(module.tree):
            dtypes = _DtypeScope(scope, imports)
            yield from self.check_scope(
                module, qualname, scope, dtypes, imports
            )

    def check_scope(
        self,
        module: ModuleInfo,
        qualname: str,
        scope: ast.AST,
        dtypes: _DtypeScope,
        imports: ImportMap,
    ) -> Iterator[Finding]:
        raise NotImplementedError


@register_rule
class NarrowShift(_BitwidthRule):
    id = "NPW001"
    title = "left-shift on a narrow numpy integer array"
    rationale = (
        "numpy integers wrap silently: shifting an int32/uint16 array "
        "drops high bits with no error, corrupting packed history keys. "
        "Widen to int64 before packing."
    )

    def check_scope(
        self,
        module: ModuleInfo,
        qualname: str,
        scope: ast.AST,
        dtypes: _DtypeScope,
        imports: ImportMap,
    ) -> Iterator[Finding]:
        for node in _scope_nodes(scope):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, ast.LShift
            ):
                dtype = dtypes.dtype_of(node.left)
                if dtype in _NARROW_INT:
                    yield Finding(
                        rule=self.id,
                        path=module.relpath,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"left-shift on a {dtype} array wraps "
                            "silently past the dtype width; cast to "
                            "int64 before packing bits"
                        ),
                        symbol=qualname,
                    )


@register_rule
class PlatformWidthReduction(_BitwidthRule):
    id = "NPW002"
    title = "integer reduction without an explicit dtype"
    rationale = (
        "sum/cumsum on integer or bool arrays accumulate in a platform-"
        "dependent width (C long: 32-bit on Windows), so long traces "
        "overflow on some platforms only. Pass dtype=np.int64."
    )

    #: Reductions whose accumulator width is platform-dependent.
    _REDUCTIONS = frozenset({"sum", "cumsum", "prod", "cumprod"})

    def check_scope(
        self,
        module: ModuleInfo,
        qualname: str,
        scope: ast.AST,
        dtypes: _DtypeScope,
        imports: ImportMap,
    ) -> Iterator[Finding]:
        for node in _scope_nodes(scope):
            if not isinstance(node, ast.Call):
                continue
            if call_dtype_name(node) is not None:
                continue
            operand: ast.expr | None = None
            reduction: str | None = None
            dotted = dotted_call_name(node.func)
            if dotted is not None:
                resolved = resolve_dotted(dotted, imports)
                if (
                    resolved.startswith("numpy.")
                    and resolved.split(".")[-1] in self._REDUCTIONS
                    and node.args
                ):
                    operand = node.args[0]
                    reduction = resolved.split(".")[-1]
            if (
                operand is None
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._REDUCTIONS
            ):
                operand = node.func.value
                reduction = node.func.attr
            if operand is None:
                continue
            dtype = dtypes.dtype_of(operand)
            if dtype in _NARROW_INT or dtype in _BOOL:
                yield Finding(
                    rule=self.id,
                    path=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"{reduction}() on a {dtype} array accumulates "
                        "in platform-dependent width; pass "
                        "dtype=np.int64 for a stable accumulator"
                    ),
                    symbol=qualname,
                )


@register_rule
class UnguardedVariableShift(_BitwidthRule):
    id = "NPW003"
    title = "variable-amount shift with no word-width guard"
    rationale = (
        "A data-dependent shift amount on a packed word is only correct "
        "while the accumulated bit count stays below the dtype width; "
        "without a guard comparing against the word budget (e.g. > 62), "
        "a wider input silently corrupts every key."
    )

    def check_scope(
        self,
        module: ModuleInfo,
        qualname: str,
        scope: ast.AST,
        dtypes: _DtypeScope,
        imports: ImportMap,
    ) -> Iterator[Finding]:
        if _has_width_guard(scope):
            return
        for node in _scope_nodes(scope):
            if (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, ast.LShift)
                and not isinstance(node.right, ast.Constant)
            ):
                dtype = dtypes.dtype_of(node.left)
                if dtype is not None:
                    yield Finding(
                        rule=self.id,
                        path=module.relpath,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            "variable shift amount on a numpy word "
                            "with no width guard in this function; "
                            "bound the accumulated bits (e.g. "
                            "used + bits > 62 -> new word)"
                        ),
                        symbol=qualname,
                    )
