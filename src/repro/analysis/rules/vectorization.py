"""VEC rules: vectorization-contract lint for the batched kernels.

The performance contract of the batched simulation paths (PR 6) is that
modules advertising a ``vectorize`` switch really do their per-trace
work in whole-array numpy operations, with the scalar path iterating
over plain Python lists (``.tolist()``) as the bit-identical reference.
Two regressions are easy to introduce and invisible to the test suite
(which checks answers, not complexity):

* a per-element Python ``for`` loop creeping back over ndarray state
  (VEC001): each ``arr[i]`` read/write costs a numpy scalar box (~1µs),
  so one stray loop quietly erases a 10x kernel win while every test
  stays green;
* a narrowing store into a bit-packed column (VEC002): writing an
  int64 value into an int8/int16/int32 column truncates silently —
  numpy raises nothing — corrupting packed history keys only for
  traces long enough to exercise the high bits.

Dtype inference is shared with the NPW rules (:mod:`.bitwidth`):
function-local, from array constructors with ``dtype=`` and
``.astype`` calls. Sanctioned scalar reference paths iterate over
``.tolist()`` materialisations, which the inference deliberately does
not track — so only loops over live ndarray state are flagged.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import (
    Finding,
    ModuleInfo,
    Project,
    register_rule,
)
from repro.analysis.rules._shared import ImportMap, dotted_call_name
from repro.analysis.rules.bitwidth import (
    _NARROW_INT,
    _WIDE_INT,
    _BitwidthRule,
    _DtypeScope,
    _scope_nodes,
)


def _claims_vectorized(module: ModuleInfo) -> bool:
    """Whether the module advertises a batched path.

    A module is held to the vectorization contract when any of its
    functions takes a ``vectorize`` parameter, or its docstring talks
    about vectorized/batched kernels.
    """
    doc = ast.get_docstring(module.tree) or ""
    lowered = doc.lower()
    if "vectoriz" in lowered or "batched kernel" in lowered:
        return True
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            names = {
                arg.arg
                for arg in (
                    *args.posonlyargs, *args.args, *args.kwonlyargs
                )
            }
            if "vectorize" in names:
                return True
    return False


def _loop_var_names(target: ast.expr) -> set[str]:
    """Names bound by a ``for`` target (handles tuple unpacking)."""
    return {
        node.id
        for node in ast.walk(target)
        if isinstance(node, ast.Name)
    }


def _mentions_any(node: ast.expr, names: set[str]) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id in names
        for sub in ast.walk(node)
    )


def _scalar_index(index: ast.expr, loop_vars: set[str]) -> bool:
    """Whether a subscript index selects one element per iteration.

    ``arr[i]`` / ``arr[i + 1, 2]`` with ``i`` a loop variable is
    per-element work. An index containing a slice (``arr[:, k]``) or a
    name from outside the loop (``arr[mask, k]`` — typically a whole
    column or boolean mask) does batched work per iteration and is a
    legitimate loop-over-lags/chunks shape, not a scalar loop.
    """
    for sub in ast.walk(index):
        if isinstance(sub, ast.Slice):
            return False
        if isinstance(sub, ast.Name) and sub.id not in loop_vars:
            return False
    return True


@register_rule
class PerElementLoop(_BitwidthRule):
    id = "VEC001"
    title = "per-element Python loop over ndarray state"
    rationale = (
        "Modules advertising a vectorize switch promise whole-array "
        "updates; a Python loop doing per-element arr[i] reads/writes "
        "costs a numpy scalar box each iteration and silently erases "
        "the batched kernel's win. Batch the update, or iterate over "
        ".tolist() in the scalar reference path."
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        if not _claims_vectorized(module):
            return
        yield from super().check_module(module, project)

    def check_scope(
        self,
        module: ModuleInfo,
        qualname: str,
        scope: ast.AST,
        dtypes: _DtypeScope,
        imports: ImportMap,
    ) -> Iterator[Finding]:
        for node in _scope_nodes(scope):
            if not isinstance(node, ast.For):
                continue
            # Direct element iteration: ``for x in ndarray``.
            if dtypes.dtype_of(node.iter) is not None:
                yield self._finding(
                    module, qualname, node,
                    "iterates over a numpy array element by element",
                )
                continue
            # Counted loop indexing into ndarray state per iteration.
            if not self._is_counted(node.iter):
                continue
            loop_vars = _loop_var_names(node.target)
            hit = self._indexed_subscript(node, loop_vars, dtypes)
            if hit is not None:
                yield self._finding(
                    module, qualname, node,
                    "indexes ndarray state per iteration "
                    f"(line {hit.lineno})",
                )

    @staticmethod
    def _is_counted(iter_expr: ast.expr) -> bool:
        if not isinstance(iter_expr, ast.Call):
            return False
        dotted = dotted_call_name(iter_expr.func)
        return dotted in ("range", "enumerate")

    @staticmethod
    def _indexed_subscript(
        loop: ast.For, loop_vars: set[str], dtypes: _DtypeScope
    ) -> ast.Subscript | None:
        for stmt in loop.body:
            subscripts = [
                sub for sub in ast.walk(stmt)
                if isinstance(sub, ast.Subscript)
            ]
            # In a chain like arr[k][mask], only the outermost subscript
            # describes what one iteration actually selects.
            chained = {id(sub.value) for sub in subscripts}
            for sub in subscripts:
                if (
                    id(sub) not in chained
                    and dtypes.dtype_of(sub.value) is not None
                    and _mentions_any(sub.slice, loop_vars)
                    and _scalar_index(sub.slice, loop_vars)
                ):
                    return sub
        return None

    def _finding(
        self,
        module: ModuleInfo,
        qualname: str,
        node: ast.For,
        detail: str,
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=module.relpath,
            line=node.lineno,
            col=node.col_offset,
            message=(
                f"per-element Python loop {detail} in a module "
                "claiming vectorized kernels; batch the update or "
                "iterate over .tolist() in the scalar path"
            ),
            symbol=qualname,
        )


@register_rule
class NarrowingColumnStore(_BitwidthRule):
    id = "VEC002"
    title = "64-bit value stored into a narrow bit-packed column"
    rationale = (
        "numpy subscript assignment casts silently: storing an int64 "
        "expression into an int8/int16/int32 column drops the high "
        "bits with no error, corrupting packed keys only on traces "
        "long enough to reach them. Widen the column to int64 or mask "
        "the value explicitly before the store."
    )

    def check_scope(
        self,
        module: ModuleInfo,
        qualname: str,
        scope: ast.AST,
        dtypes: _DtypeScope,
        imports: ImportMap,
    ) -> Iterator[Finding]:
        for node in _scope_nodes(scope):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AugAssign):
                target, value = node.target, node.value
            if not isinstance(target, ast.Subscript):
                continue
            assert value is not None
            column_dtype = dtypes.dtype_of(target.value)
            value_dtype = dtypes.dtype_of(value)
            if column_dtype in _NARROW_INT and value_dtype in _WIDE_INT:
                yield Finding(
                    rule=self.id,
                    path=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"stores a {value_dtype} value into a "
                        f"{column_dtype} column; numpy truncates "
                        "silently — widen the column to int64 or mask "
                        "explicitly before the store"
                    ),
                    symbol=qualname,
                )
