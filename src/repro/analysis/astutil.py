"""Rule-agnostic AST helpers usable from the analysis engine itself.

Lives outside :mod:`repro.analysis.rules` so the CFG/dataflow engine
can use it without importing the rules package (whose ``__init__``
imports every rule module, several of which import the engine — a
cycle otherwise). :mod:`repro.analysis.rules._shared` re-exports it for
the rule modules' convenience.
"""

from __future__ import annotations

import ast


def dotted_call_name(func: ast.expr) -> str | None:
    """Flatten ``a.b.c`` / ``name`` call targets to a dotted string."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))
