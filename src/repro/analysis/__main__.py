"""Command-line entry point: ``python -m repro.analysis [paths...]``.

Examples::

    python -m repro.analysis             # scan src/repro, tools, benchmarks
    python -m repro.analysis --format json --output report.json
    python -m repro.analysis --format sarif --output findings.sarif
    python -m repro.analysis --rules DET001,PUR001 src/repro/synth
    python -m repro.analysis --write-baseline      # bootstrap exceptions
    python -m repro.analysis --prune-stale         # drop fixed entries
    python -m repro.analysis --list-rules

Exit status: 0 when every finding is suppressed or baselined and no
baseline entry is stale, 1 when violations or stale entries remain (CI
gates on both; ``--prune-stale`` removes the latter), 2 on usage
errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.core import Finding, all_rules, run_analysis
from repro.analysis.sarif import to_sarif

REPORT_VERSION = 1

#: Default baseline location, relative to the working directory.
DEFAULT_BASELINE = Path("tools/analysis_baseline.json")

#: Scanned when no paths are given; entries that do not exist under the
#: root are skipped silently (explicitly named paths still error).
DEFAULT_PATHS = ("src/repro", "tools", "benchmarks")


def _build_report(
    findings: list[Finding],
    baselined: list[Finding],
    suppressed: int,
    stale: list,
) -> dict:
    """Assemble the JSON report (schema asserted by the test suite)."""
    return {
        "version": REPORT_VERSION,
        "rules": [
            {"id": rule.id, "title": rule.title, "rationale": rule.rationale}
            for rule in all_rules()
        ],
        "findings": [f.to_json() for f in findings],
        "counts": {
            "findings": len(findings),
            "baselined": len(baselined),
            "suppressed": suppressed,
            "stale_baseline": len(stale),
        },
        "stale_baseline": [
            {"rule": e.rule, "path": e.path, "symbol": e.symbol}
            for e in stale
        ],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Static analysis guarding the parallel experiment engine's "
            "invariants: determinism, worker purity, driver protocol, "
            "numpy bit widths."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=[],
        help=(
            "files or directories to scan (default: "
            + ", ".join(DEFAULT_PATHS)
            + "; missing defaults are skipped)"
        ),
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="also write the report to FILE (text goes to stdout too)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=str(DEFAULT_BASELINE),
        help=(
            "baseline of accepted findings (default "
            f"{DEFAULT_BASELINE}); a missing file means empty"
        ),
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline and report accepted findings too",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help=(
            "write the current findings to the baseline file with "
            "placeholder justifications (edit before committing)"
        ),
    )
    parser.add_argument(
        "--prune-stale", action="store_true",
        help=(
            "rewrite the baseline dropping entries whose finding no "
            "longer fires (stale entries otherwise exit 1)"
        ),
    )
    parser.add_argument(
        "--rules", metavar="ID,ID", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule with its rationale and exit",
    )
    parser.add_argument(
        "--root", metavar="DIR", default=".",
        help="directory findings/baseline paths are relative to",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            scope = ", ".join(rule.scope) if rule.scope else "all files"
            print(f"{rule.id}  {rule.title}  [scope: {scope}]")
            print(f"    {rule.rationale}")
        return 0

    root = Path(args.root).resolve()
    paths = []
    defaulted = not args.paths
    for raw in args.paths or DEFAULT_PATHS:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if not path.exists():
            if defaulted:
                continue  # optional default roots may be absent
            print(
                f"error: no such path {raw!r}", file=sys.stderr
            )
            return 2
        paths.append(path)

    rule_ids = None
    if args.rules:
        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]

    try:
        findings, suppressed = run_analysis(paths, root, rule_ids)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline)
    if not baseline_path.is_absolute():
        baseline_path = root / baseline_path

    if args.write_baseline:
        Baseline.write(baseline_path, findings)
        print(
            f"wrote {len(findings)} finding(s) to {baseline_path}; "
            "edit the justifications before committing",
            file=sys.stderr,
        )
        return 0

    baselined: list[Finding] = []
    stale: list = []
    if not args.no_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        remaining = []
        for finding in findings:
            (baselined if baseline.matches(finding) else remaining).append(
                finding
            )
        findings = remaining
        if args.prune_stale:
            pruned = baseline.prune_stale(baseline_path)
            if pruned:
                print(
                    f"pruned {len(pruned)} stale baseline entr"
                    f"{'y' if len(pruned) == 1 else 'ies'} from "
                    f"{baseline_path}",
                    file=sys.stderr,
                )
        stale = baseline.stale_entries()

    report = _build_report(findings, baselined, suppressed, stale)
    if args.format == "sarif":
        payload = json.dumps(to_sarif(findings, all_rules()), indent=2)
        payload += "\n"
    else:
        payload = json.dumps(report, indent=2) + "\n"
    if args.output:
        Path(args.output).write_text(payload, encoding="utf-8")

    if args.format in ("json", "sarif"):
        if not args.output:
            print(payload, end="")
    else:
        for finding in findings:
            print(finding.render())
        counts = report["counts"]
        print(
            f"{counts['findings']} finding(s), "
            f"{counts['baselined']} baselined, "
            f"{counts['suppressed']} suppressed"
        )
    for entry in stale:
        print(
            "stale baseline entry (violation fixed? rerun with "
            f"--prune-stale): {entry.rule} {entry.path} :: "
            f"{entry.symbol}",
            file=sys.stderr,
        )
    return 1 if findings or stale else 0


if __name__ == "__main__":
    sys.exit(main())
