"""Repo-specific static analysis guarding the parallel engine's invariants.

The reproduction's headline guarantee — serial and ``--jobs N`` runs are
bit-identical — rests on properties nothing in Python enforces at
runtime: simulation kernels must be deterministic, cell functions shipped
to worker processes must not mutate shared module state, and every
experiment driver must speak the cells/combine protocol (including
tolerating :class:`~repro.evalx.parallel.CellFailure` gaps). This package
machine-checks those invariants over the source tree.

Four rule families (see :mod:`repro.analysis.rules`):

* ``DET*`` — determinism lint: unseeded ``random`` / legacy
  ``np.random`` global-state calls, wall-clock reads, and
  set-iteration-order dependence inside simulation code.
* ``PUR*`` — worker-purity race detector: module-level mutable globals
  written by functions reachable from registered cell callables, and
  unpicklable cell callables.
* ``PROT*`` — driver-protocol conformance: every experiment module is
  registered, defines ``cells``/``combine``, and its ``combine``
  handles :class:`~repro.evalx.parallel.CellFailure`.
* ``NPW*`` — numpy bit-width lint: shifts and accumulations that can
  exceed the operand dtype width.

Findings can be suppressed per line (``# repro: noqa[RULE]``) or
recorded as intentional exceptions in a baseline file with a
justification each. Run ``python -m repro.analysis`` for the CLI.
"""

from repro.analysis.core import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    all_rules,
    get_rule,
    register_rule,
    run_analysis,
)
from repro.analysis.baseline import Baseline, BaselineEntry

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "ModuleInfo",
    "Project",
    "Rule",
    "all_rules",
    "get_rule",
    "register_rule",
    "run_analysis",
]
