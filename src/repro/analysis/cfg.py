"""Per-function control-flow graphs for the flow-sensitive rules.

The statement-local rules (DET/NPW/CKP) get away with ``ast.walk``; the
concurrency rules cannot. Whether a checkpoint record is published
after an ownership re-check, whether an env-var handoff happens before
or between executor submissions, whether a temp file is fsynced on
*every* path into its ``os.replace`` — these are questions about
orderings along paths, so they need a CFG.

The graph is deliberately statement-granular: one :class:`CFGNode` per
simple statement, plus a node for each branch condition, loop header
and ``with`` header, and synthetic entry/exit nodes. Edges out of a
branch carry the condition expression and the polarity of the taken
arm, which is what lets the dataflow engine do path-sensitive
refinement (``if lost.is_set(): return`` proves ownership on the
fall-through edge).

Exception flow is over-approximated the standard way: every statement
inside a ``try`` gets an extra edge to each handler's entry (and to the
``finally`` body, which also flows on to the function exit), so a
may-analysis sees both the completed and the interrupted ordering.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Function-like scopes a CFG can be built for.
FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


@dataclass(frozen=True)
class CFGEdge:
    """One directed edge. ``cond``/``polarity`` label branch arms.

    ``cond`` is the branch condition expression (``None`` for
    unconditional edges, loop back edges, and exception edges);
    ``polarity`` says whether this edge is the arm taken when ``cond``
    evaluates truthy.
    """

    dst: int
    cond: ast.expr | None = None
    polarity: bool = True


@dataclass
class CFGNode:
    """One CFG node: a statement, a condition, or a synthetic marker.

    ``kind`` is ``"entry"``/``"exit"`` for the synthetic nodes,
    ``"cond"`` for branch/loop conditions (``stmt`` is the ``If``/
    ``While`` statement, ``expr`` its test), ``"for"`` for loop headers,
    ``"with"`` for ``with`` headers, and ``"stmt"`` for everything else.
    """

    index: int
    kind: str
    stmt: ast.stmt | None = None
    expr: ast.expr | None = None
    edges: list[CFGEdge] = field(default_factory=list)


class CFG:
    """The control-flow graph of one function body."""

    def __init__(self, fn: FunctionNode) -> None:
        self.fn = fn
        self.nodes: list[CFGNode] = []
        self.entry = self._new("entry")
        self.exit = self._new("exit")
        builder = _Builder(self)
        last = builder.build_body(fn.body, self.entry)
        self.add_edge(last, self.exit)

    # -- construction primitives --------------------------------------

    def _new(
        self,
        kind: str,
        stmt: ast.stmt | None = None,
        expr: ast.expr | None = None,
    ) -> int:
        node = CFGNode(index=len(self.nodes), kind=kind, stmt=stmt, expr=expr)
        self.nodes.append(node)
        return node.index

    def add_edge(
        self,
        src: int,
        dst: int,
        cond: ast.expr | None = None,
        polarity: bool = True,
    ) -> None:
        edges = self.nodes[src].edges
        edge = CFGEdge(dst=dst, cond=cond, polarity=polarity)
        if edge not in edges:
            edges.append(edge)

    # -- queries ------------------------------------------------------

    def successors(self, index: int) -> list[CFGEdge]:
        return self.nodes[index].edges

    def statement_nodes(self) -> list[CFGNode]:
        """Every node carrying a real statement (incl. cond/for/with)."""
        return [n for n in self.nodes if n.stmt is not None]

    def reaches(self, src: int, targets: set[int]) -> bool:
        """Whether any node in ``targets`` is forward-reachable from
        ``src`` (following edges out of ``src`` itself)."""
        seen: set[int] = set()
        stack = [edge.dst for edge in self.nodes[src].edges]
        while stack:
            index = stack.pop()
            if index in targets:
                return True
            if index in seen:
                continue
            seen.add(index)
            stack.extend(edge.dst for edge in self.nodes[index].edges)
        return False


@dataclass
class _Frame:
    """Loop / try context the builder threads through nested blocks.

    ``break_to``/``continue_to`` are the current loop's exits;
    ``handlers`` are the entry nodes exceptions may jump to from inside
    the enclosing ``try`` (handler entries plus the finally entry).
    """

    break_to: int | None = None
    continue_to: int | None = None
    handlers: tuple[int, ...] = ()


class _Builder:
    """Recursive-descent CFG construction over a statement list."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self.frames: list[_Frame] = []

    # A fresh no-op join point (modelled as a synthetic node with no
    # statement) keeps edge bookkeeping simple after branches.
    def _join(self) -> int:
        return self.cfg._new("join")

    def _exception_targets(self) -> tuple[int, ...]:
        for frame in reversed(self.frames):
            if frame.handlers:
                return frame.handlers
        return ()

    def _loop_frame(self) -> _Frame | None:
        for frame in reversed(self.frames):
            if frame.break_to is not None:
                return frame
        return None

    def build_body(self, body: list[ast.stmt], pred: int) -> int:
        """Wire a statement list after ``pred``; returns the tail node.

        The returned node is the fall-through point; statements that
        never fall through (return/raise/break/continue) route their
        flow to the proper target and yield a dead join node, which
        simply ends up unreachable.
        """
        current = pred
        for stmt in body:
            current = self.build_stmt(stmt, current)
        return current

    def build_stmt(self, stmt: ast.stmt, pred: int) -> int:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            cond = cfg._new("cond", stmt=stmt, expr=stmt.test)
            cfg.add_edge(pred, cond)
            self._wire_exceptions(cond)
            join = self._join()
            true_entry = self._join()
            cfg.add_edge(cond, true_entry, cond=stmt.test, polarity=True)
            cfg.add_edge(self.build_body(stmt.body, true_entry), join)
            false_entry = self._join()
            cfg.add_edge(cond, false_entry, cond=stmt.test, polarity=False)
            cfg.add_edge(self.build_body(stmt.orelse, false_entry), join)
            return join

        if isinstance(stmt, ast.While):
            header = cfg._new("cond", stmt=stmt, expr=stmt.test)
            cfg.add_edge(pred, header)
            self._wire_exceptions(header)
            after = self._join()
            body_entry = self._join()
            cfg.add_edge(header, body_entry, cond=stmt.test, polarity=True)
            self.frames.append(_Frame(break_to=after, continue_to=header))
            body_tail = self.build_body(stmt.body, body_entry)
            self.frames.pop()
            cfg.add_edge(body_tail, header)  # back edge
            else_entry = self._join()
            cfg.add_edge(header, else_entry, cond=stmt.test, polarity=False)
            cfg.add_edge(self.build_body(stmt.orelse, else_entry), after)
            return after

        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            header = cfg._new("for", stmt=stmt)
            cfg.add_edge(pred, header)
            self._wire_exceptions(header)
            after = self._join()
            body_entry = self._join()
            cfg.add_edge(header, body_entry)  # iteration produced an item
            self.frames.append(_Frame(break_to=after, continue_to=header))
            body_tail = self.build_body(stmt.body, body_entry)
            self.frames.pop()
            cfg.add_edge(body_tail, header)  # back edge
            else_entry = self._join()
            cfg.add_edge(header, else_entry)  # iterator exhausted
            cfg.add_edge(self.build_body(stmt.orelse, else_entry), after)
            return after

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            header = cfg._new("with", stmt=stmt)
            cfg.add_edge(pred, header)
            self._wire_exceptions(header)
            return self.build_body(stmt.body, header)

        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, pred)

        if isinstance(stmt, (ast.Return, ast.Raise)):
            node = cfg._new("stmt", stmt=stmt)
            cfg.add_edge(pred, node)
            if isinstance(stmt, ast.Raise):
                for target in self._exception_targets():
                    cfg.add_edge(node, target)
            cfg.add_edge(node, cfg.exit)
            return self._join()  # dead fall-through

        if isinstance(stmt, (ast.Break, ast.Continue)):
            node = cfg._new("stmt", stmt=stmt)
            cfg.add_edge(pred, node)
            frame = self._loop_frame()
            if frame is not None:
                target = (
                    frame.break_to
                    if isinstance(stmt, ast.Break)
                    else frame.continue_to
                )
                if target is not None:
                    cfg.add_edge(node, target)
            else:
                cfg.add_edge(node, cfg.exit)  # malformed code; stay safe
            return self._join()  # dead fall-through

        if isinstance(stmt, ast.Match):
            subject = cfg._new("stmt", stmt=stmt)
            cfg.add_edge(pred, subject)
            self._wire_exceptions(subject)
            join = self._join()
            cfg.add_edge(subject, join)  # no case matched
            for case in stmt.cases:
                case_entry = self._join()
                cfg.add_edge(subject, case_entry)
                cfg.add_edge(self.build_body(case.body, case_entry), join)
            return join

        # Nested defs/classes: opaque single nodes (their bodies get
        # their own CFG when a rule asks for one).
        node = cfg._new("stmt", stmt=stmt)
        cfg.add_edge(pred, node)
        self._wire_exceptions(node)
        return node

    def _wire_exceptions(self, node: int) -> None:
        """Statements inside a try may jump to its handlers mid-flight."""
        for target in self._exception_targets():
            self.cfg.add_edge(node, target)

    def _build_try(self, stmt: ast.Try, pred: int) -> int:
        cfg = self.cfg
        after = self._join()
        handler_entries = [self._join() for _ in stmt.handlers]
        final_entry = self._join() if stmt.finalbody else None

        targets = tuple(handler_entries) + (
            (final_entry,) if final_entry is not None else ()
        )
        self.frames.append(_Frame(handlers=targets))
        body_entry = self._join()
        cfg.add_edge(pred, body_entry)
        body_tail = self.build_body(stmt.body, body_entry)
        self.frames.pop()

        else_tail = self.build_body(stmt.orelse, body_tail)
        normal_tails = [else_tail]
        for entry, handler in zip(handler_entries, stmt.handlers):
            normal_tails.append(self.build_body(handler.body, entry))

        if final_entry is not None:
            for tail in normal_tails:
                cfg.add_edge(tail, final_entry)
            final_tail = self.build_body(stmt.finalbody, final_entry)
            cfg.add_edge(final_tail, after)
            # The finally body also runs on the exceptional/return
            # routes, after which the interruption propagates onward.
            cfg.add_edge(final_tail, cfg.exit)
        else:
            for tail in normal_tails:
                cfg.add_edge(tail, after)
        return after


def build_cfg(fn: FunctionNode) -> CFG:
    """Build the CFG of one function definition."""
    return CFG(fn)


def function_defs(tree: ast.Module) -> list[tuple[str, FunctionNode]]:
    """Every function in a module as ``(qualname, node)``, outermost
    first, with the same qualname convention the baseline uses
    (``Class.method``, ``outer.<locals>.inner``)."""
    out: list[tuple[str, FunctionNode]] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                out.append((qualname, child))
                visit(child, f"{qualname}.<locals>.")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            else:
                visit(child, prefix)

    visit(tree, "")
    return out
