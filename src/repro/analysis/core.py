"""Analysis framework: findings, rules, project model, suppressions.

The framework parses every Python file under the scanned roots once into
a :class:`Project` of :class:`ModuleInfo` records (AST + source +
suppression map + dotted module name), then hands the whole project to
each registered :class:`Rule`. Most rules look at one module at a time;
whole-program rules (the purity race detector, the driver-protocol
checker) override :meth:`Rule.check_project` and walk across modules.

Suppressions are source comments on the offending line::

    risky_call()  # repro: noqa[DET001]
    other_call()  # repro: noqa          (suppresses every rule)

Intentional, long-lived exceptions belong in the baseline file instead
(see :mod:`repro.analysis.baseline`), where each entry carries a
justification.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?")

#: Matches every rule id in a bare ``# repro: noqa`` comment.
SUPPRESS_ALL = "*"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location.

    Attributes:
        rule: Rule id, e.g. ``"DET001"``.
        path: Posix-style path of the file, relative to the scan root.
        line: 1-based source line of the violation.
        col: 0-based column of the violation.
        message: Human-readable description, including the fix direction.
        symbol: Stable anchor for baseline matching — the enclosing
            function/class qualname, a global name, or the module name.
            Baselines match on (rule, path, symbol) so entries survive
            unrelated edits that shift line numbers.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    symbol: str

    def render(self) -> str:
        """One-line text-report form (``path:line:col RULE message``)."""
        return f"{self.path}:{self.line}:{self.col} {self.rule} {self.message}"

    def to_json(self) -> dict:
        """JSON-report form (stable key order via dataclass fields)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
        }


@dataclass
class ModuleInfo:
    """One parsed source file.

    Attributes:
        path: Absolute filesystem path.
        relpath: Posix path relative to the scan root (finding/baseline key).
        dotted: Dotted module name inferred from ``__init__.py`` package
            structure (``"repro.synth.workloads"``), or the bare stem for
            a stray file.
        tree: Parsed AST.
        lines: Source split into lines (for suppression scanning).
        suppressions: line -> set of suppressed rule ids (``"*"`` = all).
    """

    path: Path
    relpath: str
    dotted: str
    tree: ast.Module
    lines: list[str]
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is noqa'd on ``line``."""
        suppressed = self.suppressions.get(line, ())
        return rule_id in suppressed or SUPPRESS_ALL in suppressed

    def segments(self) -> tuple[str, ...]:
        """Dotted-name segments, for sub-package scope matching."""
        return tuple(self.dotted.split("."))


class Project:
    """Every module under the scanned roots, with cross-module lookups."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules = sorted(modules, key=lambda m: m.relpath)
        self.by_dotted = {m.dotted: m for m in self.modules}

    def module(self, dotted: str) -> ModuleInfo | None:
        """Look up a module by dotted name, or None if outside the scan."""
        return self.by_dotted.get(dotted)


class Rule:
    """Base class for one analysis rule.

    Subclasses set the class attributes and implement
    :meth:`check_module` (or override :meth:`check_project` for
    whole-program rules). ``scope`` restricts a rule to modules whose
    dotted name contains one of the given segment sequences (e.g.
    ``("sim",)`` matches ``repro.sim.functional``); ``None`` scans
    everything.
    """

    id: str = ""
    title: str = ""
    rationale: str = ""
    scope: tuple[str, ...] | None = None

    def applies_to(self, module: ModuleInfo) -> bool:
        """Whether this rule scans the given module (scope filter)."""
        if self.scope is None:
            return True
        segments = module.segments()
        for entry in self.scope:
            want = tuple(entry.split("."))
            if any(
                segments[i : i + len(want)] == want
                for i in range(len(segments) - len(want) + 1)
            ):
                return True
        return False

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterator[Finding]:
        """Yield findings for one module (default: nothing)."""
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        """Yield findings for the whole project.

        The default walks every in-scope module through
        :meth:`check_module`; whole-program rules override this.
        """
        for module in project.modules:
            if self.applies_to(module):
                yield from self.check_module(module, project)


_RULES: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    _RULES[cls.id] = cls()
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, in id order."""
    _load_rules()
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id."""
    _load_rules()
    try:
        return _RULES[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {sorted(_RULES)}"
        ) from None


def _load_rules() -> None:
    """Import the rule modules so their ``@register_rule`` decorators run."""
    from repro.analysis import rules  # noqa: F401  (import for side effect)


def _scan_suppressions(lines: Iterable[str]) -> dict[int, set[str]]:
    """Map line number -> rule ids suppressed by ``# repro: noqa`` comments."""
    suppressions: dict[int, set[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        if match.group(1) is None:
            suppressions[lineno] = {SUPPRESS_ALL}
        else:
            suppressions[lineno] = {
                rule.strip()
                for rule in match.group(1).split(",")
                if rule.strip()
            }
    return suppressions


def _dotted_name(path: Path) -> str:
    """Infer a dotted module name by walking up through ``__init__.py``s."""
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def load_module(path: Path, root: Path) -> ModuleInfo | None:
    """Parse one file into a :class:`ModuleInfo`; None on syntax errors.

    Unparseable files are skipped rather than fatal: the analyzer runs in
    CI next to the test suite, which reports syntax errors far better.
    """
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError:
        return None
    try:
        relpath = str(PurePosixPath(path.relative_to(root).as_posix()))
    except ValueError:
        relpath = path.as_posix()
    lines = source.splitlines()
    return ModuleInfo(
        path=path,
        relpath=relpath,
        dotted=_dotted_name(path),
        tree=tree,
        lines=lines,
        suppressions=_scan_suppressions(lines),
    )


def load_project(paths: Sequence[Path], root: Path) -> Project:
    """Parse every ``.py`` file under ``paths`` into a :class:`Project`."""
    modules: list[ModuleInfo] = []
    seen: set[Path] = set()
    for entry in paths:
        files = sorted(entry.rglob("*.py")) if entry.is_dir() else [entry]
        for file in files:
            resolved = file.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            module = load_module(file, root)
            if module is not None:
                modules.append(module)
    return Project(modules)


def run_analysis(
    paths: Sequence[Path],
    root: Path,
    rule_ids: Sequence[str] | None = None,
) -> tuple[list[Finding], int]:
    """Run the selected rules over the given paths.

    Returns ``(findings, suppressed_count)``: findings sorted by
    location, with line-level ``noqa`` suppressions already removed and
    counted. Baseline filtering is the caller's concern (the CLI applies
    it after this, so library users can see everything).
    """
    project = load_project(paths, root)
    rules = (
        all_rules()
        if rule_ids is None
        else [get_rule(rule_id) for rule_id in rule_ids]
    )
    findings: list[Finding] = []
    suppressed = 0
    modules_by_relpath = {m.relpath: m for m in project.modules}
    for rule in rules:
        for finding in rule.check_project(project):
            module = modules_by_relpath.get(finding.path)
            if module is not None and module.is_suppressed(
                finding.rule, finding.line
            ):
                suppressed += 1
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, suppressed
