"""SARIF 2.1.0 report rendering for the analysis CLI.

SARIF (Static Analysis Results Interchange Format) is the one format
code-review UIs ingest natively: uploading the artifact from CI lets
findings annotate the exact changed lines of a PR diff. The emitted
document is deliberately minimal — one run, one driver, one result per
finding — which is the subset every SARIF consumer understands.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.core import Finding, Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def to_sarif(
    findings: Sequence[Finding], rules: Sequence[Rule]
) -> dict:
    """The SARIF document for one analysis run.

    Every registered rule is described in the driver metadata (so
    viewers can show titles/rationales even for rules with no hits);
    results reference rules by id. Columns are converted from the
    0-based AST convention to SARIF's 1-based one.
    """
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "rules": [
                            {
                                "id": rule.id,
                                "name": rule.title,
                                "shortDescription": {
                                    "text": rule.title
                                },
                                "fullDescription": {
                                    "text": rule.rationale
                                },
                            }
                            for rule in rules
                        ],
                    }
                },
                "results": [
                    {
                        "ruleId": finding.rule,
                        "level": "error",
                        "message": {"text": finding.message},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {
                                        "uri": finding.path,
                                        "uriBaseId": "%SRCROOT%",
                                    },
                                    "region": {
                                        "startLine": finding.line,
                                        "startColumn": finding.col + 1,
                                    },
                                }
                            }
                        ],
                        "partialFingerprints": {
                            "reproAnalysisSymbol/v1": (
                                f"{finding.rule}:{finding.path}:"
                                f"{finding.symbol}"
                            ),
                        },
                    }
                    for finding in findings
                ],
            }
        ],
    }
