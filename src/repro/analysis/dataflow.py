"""Forward dataflow over :mod:`repro.analysis.cfg` + call summaries.

Two layers:

* A generic worklist engine (:func:`run_forward`) for *may*-analyses:
  an :class:`Analysis` supplies the initial state, a transfer function
  over one CFG node, a join, and an optional edge refinement hook that
  sees branch conditions with their polarity — the mechanism behind
  "ownership is confirmed on the fall-through of ``if lost.is_set():
  return``". States must come from a finite lattice (tag sets keyed by
  variable name, in practice), so the fixpoint terminates.

* Project-wide *call summaries* (:func:`summarize_paths`) in the same
  spirit as the purity rules' call-graph BFS: every function in the
  project is summarized once — does it return a shared-directory path,
  does it write its path parameters, does it fsync them — and call
  sites apply the summary by callee name. Two bottom-up passes resolve
  helper-wrapping-helper chains one level deep, which covers the
  repo's actual idioms (``fsync_write_text``, ``path_for`` wrappers)
  without a full SCC solver.

Name resolution is deliberately the same local flavour as the rest of
the analyzer: summaries are keyed by the callee's final dotted segment,
so ``self.store.lease_path_for(...)`` matches the summary of any
project function named ``lease_path_for``. Collisions merge
conservatively (union of effects); the rules accept that imprecision
in exchange for never executing anything.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.analysis.astutil import dotted_call_name
from repro.analysis.cfg import CFG
from repro.analysis.core import Project

#: A dataflow state: variable (or flag) name -> set of abstract tags.
State = dict[str, frozenset[str]]


def join_states(a: State, b: State) -> State:
    """Pointwise union — the may-analysis join."""
    out: State = dict(a)
    for key, tags in b.items():
        existing = out.get(key)
        out[key] = tags if existing is None else existing | tags
    return out


class Analysis:
    """One forward may-analysis: subclass and override the hooks."""

    def initial(self) -> State:
        return {}

    def transfer(self, node_index: int, cfg: CFG, state: State) -> State:
        """Abstract effect of one CFG node (must not mutate ``state``)."""
        return state

    def refine(
        self, cond: ast.expr, polarity: bool, state: State
    ) -> State:
        """Sharpen the state along one branch arm (default: no-op)."""
        return state


def run_forward(
    cfg: CFG, analysis: Analysis, max_passes: int = 64
) -> list[State]:
    """Iterate ``analysis`` to fixpoint; returns each node's IN state.

    ``max_passes`` bounds full sweeps as a safety net against a
    non-monotone transfer; the tag lattices the rules use converge in
    a handful of passes even through nested loops.
    """
    n = len(cfg.nodes)
    in_states: list[State] = [{} for _ in range(n)]
    in_states[cfg.entry] = analysis.initial()
    worklist: list[int] = [cfg.entry]
    visited: set[int] = set()
    seen_passes = 0
    while worklist and seen_passes < max_passes * n:
        seen_passes += 1
        index = worklist.pop(0)
        visited.add(index)
        out = analysis.transfer(index, cfg, in_states[index])
        for edge in cfg.nodes[index].edges:
            moved = out
            if edge.cond is not None:
                moved = analysis.refine(edge.cond, edge.polarity, out)
            merged = join_states(in_states[edge.dst], moved)
            changed = merged != in_states[edge.dst]
            if changed:
                in_states[edge.dst] = merged
            # Successors must be visited at least once even when the
            # join is a no-op (empty states joining empty states), or
            # propagation never leaves the entry node.
            if (changed or edge.dst not in visited) and (
                edge.dst not in worklist
            ):
                worklist.append(edge.dst)
    return in_states


def strip_not(cond: ast.expr) -> tuple[ast.expr, bool]:
    """Peel ``not`` wrappers; returns (inner, flipped) where ``flipped``
    is True when an odd number of negations was removed."""
    flipped = False
    while isinstance(cond, ast.UnaryOp) and isinstance(cond.op, ast.Not):
        cond = cond.operand
        flipped = not flipped
    return cond, flipped


# -- call summaries ---------------------------------------------------

#: Functions whose *name* seeds the shared-path-producer set: these are
#: the repo's actual shared-root constructors (checkpoint store records
#: and leases, job records and results, queue manifests and fail
#: markers, the trace cache). Summaries extend the set transitively to
#: wrappers that return one of these.
SEED_PRODUCERS = frozenset(
    {
        "path_for",
        "lease_path_for",
        "result_path",
        "manifest_path",
        "fail_path",
        "queue_dir",
        "trace_cache_path",
    }
)


@dataclass
class PathSummary:
    """What one function does to filesystem paths.

    Attributes:
        returns_shared: The function's return value is a path under a
            shared root (it is itself a producer).
        writes_params: 0-based indices of path parameters the function
            writes file content through.
        syncs_params: Indices of path parameters the function fsyncs
            before returning (the durability half of tmp+replace).
    """

    returns_shared: bool = False
    writes_params: set[int] = field(default_factory=set)
    syncs_params: set[int] = field(default_factory=set)

    def merge(self, other: PathSummary) -> None:
        self.returns_shared = self.returns_shared or other.returns_shared
        self.writes_params |= other.writes_params
        self.syncs_params |= other.syncs_params


class SummaryMap:
    """Project-wide path summaries, keyed by bare function name."""

    def __init__(self) -> None:
        self._by_name: dict[str, PathSummary] = {}

    def get(self, name: str) -> PathSummary | None:
        return self._by_name.get(name)

    def add(self, name: str, summary: PathSummary) -> None:
        existing = self._by_name.get(name)
        if existing is None:
            self._by_name[name] = summary
        else:
            existing.merge(summary)

    def is_producer(self, name: str) -> bool:
        if name in SEED_PRODUCERS:
            return True
        summary = self._by_name.get(name)
        return summary is not None and summary.returns_shared


def _param_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = fn.args
    names = [a.arg for a in (*args.posonlyargs, *args.args)]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return names


def expr_is_shared(expr: ast.expr, summaries: SummaryMap) -> bool:
    """Whether an expression syntactically builds a shared-root path.

    Recognizes calls to producers, ``<x>.directory / ...`` joins, and
    path derivations (``/``, ``with_name``, ``with_suffix``,
    ``.parent``) over a shared base. Variables are *not* resolved here
    — the dataflow rules do that with their environment; this is the
    environment-free core used by both the rules and the summarizer.
    """
    if isinstance(expr, ast.Call):
        # Checked before name flattening so chains whose base is itself
        # a call still resolve: ``path_for(c).with_name("t.tmp")``.
        if isinstance(expr.func, ast.Attribute) and expr.func.attr in (
            "with_name",
            "with_suffix",
        ):
            return expr_is_shared(expr.func.value, summaries)
        dotted = dotted_call_name(expr.func)
        if dotted is not None:
            name = dotted.rpartition(".")[2]
            if summaries.is_producer(name):
                return True
        return False
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Div):
        return expr_is_shared(expr.left, summaries)
    if isinstance(expr, ast.Attribute):
        if expr.attr in ("directory", "parent"):
            # ``store.directory`` (the shared root itself) or a parent
            # of something already shared.
            if expr.attr == "directory":
                return True
            return expr_is_shared(expr.value, summaries)
    return False


def _summarize_function(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, summaries: SummaryMap
) -> PathSummary:
    """One function's path summary from a single ordered walk.

    Flow-insensitive on purpose: a summary answers "does this helper
    ever write/sync its parameter", which the callers' flow-sensitive
    analyses then place at the call site's program point.
    """
    summary = PathSummary()
    params = _param_names(fn)
    param_set = set(params)
    #: local var -> the path variable its file handle was opened on.
    handle_of: dict[str, str] = {}

    def note_write(name: str | None) -> None:
        if name in param_set:
            summary.writes_params.add(params.index(name))

    def note_sync(name: str | None) -> None:
        if name in param_set:
            summary.syncs_params.add(params.index(name))

    for node in ast.walk(fn):
        if isinstance(node, ast.Return) and node.value is not None:
            if expr_is_shared(node.value, summaries):
                summary.returns_shared = True
        if isinstance(node, (ast.Assign, ast.withitem)):
            # ``h = open(p, ...)`` / ``with open(p, ...) as h``
            value = (
                node.value
                if isinstance(node, ast.Assign)
                else node.context_expr
            )
            target: ast.expr | None
            if isinstance(node, ast.Assign):
                target = node.targets[0] if len(node.targets) == 1 else None
            else:
                target = node.optional_vars
            if (
                isinstance(target, ast.Name)
                and isinstance(value, ast.Call)
                and dotted_call_name(value.func) == "open"
                and value.args
                and isinstance(value.args[0], ast.Name)
            ):
                handle_of[target.id] = value.args[0].id
        if not isinstance(node, ast.Call):
            continue
        dotted = dotted_call_name(node.func)
        if dotted is None:
            continue
        name = dotted.rpartition(".")[2]
        if name in ("write_text", "write_bytes") and isinstance(
            node.func, ast.Attribute
        ):
            base = node.func.value
            if isinstance(base, ast.Name):
                note_write(base.id)
        elif name == "write" and isinstance(node.func, ast.Attribute):
            base = node.func.value
            if isinstance(base, ast.Name):
                note_write(handle_of.get(base.id))
        elif dotted.endswith("os.fsync") or dotted == "fsync":
            if node.args:
                arg = node.args[0]
                # ``os.fsync(h.fileno())`` or ``os.fsync(fd)``
                if (
                    isinstance(arg, ast.Call)
                    and isinstance(arg.func, ast.Attribute)
                    and arg.func.attr == "fileno"
                    and isinstance(arg.func.value, ast.Name)
                ):
                    note_sync(handle_of.get(arg.func.value.id))
                elif isinstance(arg, ast.Name):
                    note_sync(handle_of.get(arg.id, arg.id))
        else:
            callee = summaries.get(name)
            if callee is not None:
                # Apply the callee's effects to our own parameters.
                for position, arg_node in enumerate(node.args):
                    if not isinstance(arg_node, ast.Name):
                        continue
                    if position in callee.writes_params:
                        note_write(arg_node.id)
                    if position in callee.syncs_params:
                        note_sync(arg_node.id)
    return summary


def summarize_paths(
    project: Project,
    extra_functions: Iterable[
        ast.FunctionDef | ast.AsyncFunctionDef
    ] = (),
) -> SummaryMap:
    """Summaries for every function in the project (plus extras).

    Two passes: the first summarizes leaves, the second re-runs with
    the first pass's map so wrappers inherit callee effects and
    producer-returning wrappers join the producer set.
    """
    functions: list[ast.FunctionDef | ast.AsyncFunctionDef] = list(
        extra_functions
    )
    for module in project.modules:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions.append(node)
    summaries = SummaryMap()
    for _ in range(2):
        fresh = SummaryMap()
        for fn in functions:
            fresh.add(fn.name, _summarize_function(fn, summaries))
        summaries = fresh
    return summaries


#: Type of the per-node visitor some rules use for plain CFG walks.
NodeVisitor = Callable[[int, State], None]
