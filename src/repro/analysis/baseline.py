"""Baseline file: intentional, justified exceptions to the analysis rules.

A baseline entry matches findings by ``(rule, path, symbol)`` — not line
number — so entries survive unrelated edits. Every entry must carry a
non-empty justification: the baseline is a reviewed list of "yes, we
mean it" decisions, not a dumping ground for unread warnings.

File format (JSON, sorted, newline-terminated — diff-friendly)::

    {
      "version": 1,
      "entries": [
        {
          "rule": "PUR001",
          "path": "src/repro/synth/workloads.py",
          "symbol": "_trace_cache",
          "justification": "per-process memo cache; values are pure ..."
        }
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.core import Finding

BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding, with the reason it is acceptable."""

    rule: str
    path: str
    symbol: str
    justification: str

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.symbol)


class Baseline:
    """A loaded baseline file, tracking which entries actually matched."""

    def __init__(self, entries: list[BaselineEntry]) -> None:
        self.entries = entries
        self._by_key = {entry.key: entry for entry in entries}
        self._matched: set[tuple[str, str, str]] = set()

    @classmethod
    def load(cls, path: Path) -> Baseline:
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls([])
        payload = json.loads(path.read_text(encoding="utf-8"))
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in {path} "
                f"(expected {BASELINE_VERSION})"
            )
        entries = []
        for raw in payload.get("entries", []):
            entry = BaselineEntry(
                rule=raw["rule"],
                path=raw["path"],
                symbol=raw["symbol"],
                justification=raw.get("justification", ""),
            )
            if not entry.justification.strip():
                raise ValueError(
                    f"baseline entry {entry.key} in {path} has no "
                    "justification; every accepted finding needs one"
                )
            entries.append(entry)
        return cls(entries)

    def matches(self, finding: Finding) -> bool:
        """Whether the finding is baselined (and mark the entry as used)."""
        key = (finding.rule, finding.path, finding.symbol)
        if key in self._by_key:
            self._matched.add(key)
            return True
        return False

    def stale_entries(self) -> list[BaselineEntry]:
        """Entries that matched nothing — fixed violations to prune."""
        return [
            entry
            for entry in self.entries
            if entry.key not in self._matched
        ]

    def prune_stale(self, path: Path) -> list[BaselineEntry]:
        """Rewrite the baseline keeping only entries that matched.

        Call after every finding has been checked through
        :meth:`matches`. Returns the dropped (stale) entries; their
        justifications are discarded with them, so pruning is safe to
        run blindly in CI — a violation that comes back later must be
        re-justified from scratch.
        """
        stale = self.stale_entries()
        if not stale:
            return []
        kept = [e for e in self.entries if e.key in self._matched]
        entries = [
            {
                "rule": e.rule,
                "path": e.path,
                "symbol": e.symbol,
                "justification": e.justification,
            }
            for e in sorted(
                kept, key=lambda e: (e.path, e.rule, e.symbol)
            )
        ]
        payload = {"version": BASELINE_VERSION, "entries": entries}
        path.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
        self.entries = kept
        return stale

    @staticmethod
    def write(
        path: Path,
        findings: list[Finding],
        justification: str = "TODO: justify or fix",
    ) -> None:
        """Write a baseline accepting the given findings.

        Meant for bootstrapping (``--write-baseline``); the placeholder
        justifications must be edited before the file passes review —
        and before it loads, since empty justifications are rejected.
        """
        entries = sorted(
            {
                (f.rule, f.path, f.symbol): {
                    "rule": f.rule,
                    "path": f.path,
                    "symbol": f.symbol,
                    "justification": justification,
                }
                for f in findings
            }.values(),
            key=lambda e: (e["path"], e["rule"], e["symbol"]),
        )
        payload = {"version": BASELINE_VERSION, "entries": entries}
        path.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
