"""repro — a reproduction of "Control Flow Speculation in Multiscalar
Processors" (Jacobson, Bennett, Sharma & Smith, HPCA 1997).

The package implements the paper's inter-task prediction mechanisms
(prediction automata, history generation, path-based DOLC index folding, the
correlated task target buffer) together with every substrate they need: the
Multiscalar ISA/task model, a task-partitioning compiler, synthetic SPEC92
stand-in workloads, and functional + timing simulators.

Quick start::

    from repro import load_workload
    from repro.predictors import PathExitPredictor, DolcSpec
    from repro.sim import simulate_exit_prediction

    workload = load_workload("gcc", n_tasks=50_000)
    predictor = PathExitPredictor(DolcSpec.parse("6-5-8-9(3)"))
    stats = simulate_exit_prediction(workload, predictor)
    print(f"exit miss rate: {stats.exit_miss_rate:.2%}")
"""

from repro.isa import (
    ControlFlowType,
    MultiscalarProgram,
    StaticTask,
    TaskExit,
    TaskFlowGraph,
    TaskHeader,
)
from repro.synth import (
    BenchmarkProfile,
    PROFILES,
    TaskTrace,
    Workload,
    load_workload,
)

__version__ = "1.0.0"

__all__ = [
    "ControlFlowType",
    "MultiscalarProgram",
    "StaticTask",
    "TaskExit",
    "TaskHeader",
    "TaskFlowGraph",
    "BenchmarkProfile",
    "PROFILES",
    "TaskTrace",
    "Workload",
    "load_workload",
    "__version__",
]
