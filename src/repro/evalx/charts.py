"""ASCII line charts for experiment series.

The paper presents most results as line charts of miss rate vs. history
depth. :func:`render_chart` draws the same picture in monospace text so
``python -m repro.evalx figure7 --chart`` can show shape at a glance
without any plotting dependency.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ExperimentError

#: Plot glyphs assigned to series in order.
_GLYPHS = "*o+x#@%&"


def render_chart(
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    height: int = 12,
    width: int = 60,
    y_label: str = "miss",
    as_percent: bool = True,
) -> str:
    """Render named series as an ASCII line chart.

    Points are scattered with one glyph per series; overlapping points show
    the later series' glyph. The y axis is scaled to the data range.
    """
    if not series:
        raise ExperimentError("chart needs at least one series")
    n_points = len(x_values)
    for name, values in series.items():
        if len(values) != n_points:
            raise ExperimentError(
                f"series {name!r} has {len(values)} points, "
                f"expected {n_points}"
            )
    if n_points < 2:
        raise ExperimentError("chart needs at least two x values")
    if height < 3 or width < 10:
        raise ExperimentError("chart too small to draw")

    flat = [
        value
        for values in series.values()
        for value in values
        if value is not None
    ]
    lo, hi = min(flat), max(flat)
    if hi == lo:
        hi = lo + (abs(lo) or 1.0) * 0.1

    grid = [[" "] * width for _ in range(height)]
    for glyph, (name, values) in zip(_GLYPHS, series.items()):
        for i, value in enumerate(values):
            if value is None:
                continue
            col = round(i * (width - 1) / (n_points - 1))
            row = round((hi - value) * (height - 1) / (hi - lo))
            grid[row][col] = glyph

    def fmt(value: float) -> str:
        return f"{value * 100:6.2f}%" if as_percent else f"{value:8.3f}"

    lines = []
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = fmt(hi)
        elif row_index == height - 1:
            label = fmt(lo)
        else:
            label = " " * len(fmt(hi))
        lines.append(f"{label} |{''.join(row)}")
    axis_width = len(fmt(hi))
    lines.append(" " * axis_width + " +" + "-" * width)
    first, last = str(x_values[0]), str(x_values[-1])
    gap = max(1, width - len(first) - len(last))
    lines.append(
        " " * (axis_width + 2) + first + " " * gap + last
    )
    legend = "   ".join(
        f"{glyph}={name}" for glyph, name in zip(_GLYPHS, series)
    )
    lines.append(f"{y_label}: {legend}")
    return "\n".join(lines)


def charts_for_result(result) -> list[str]:
    """Render the charts appropriate for an experiment's raw data.

    Understands the two data layouts the figure experiments produce:
    a single ``{"depths"/"configs": [...], "series": {...}}`` chart, or one
    chart per benchmark keyed by name. Returns an empty list for tabular
    experiments that have no natural chart.
    """
    data = result.data
    x_values = data.get("depths") or data.get("configs") \
        or data.get("widths")
    if x_values is None or len(x_values) < 2:
        return []
    charts: list[str] = []
    if isinstance(data.get("series"), dict):
        charts.append(
            f"[{result.experiment_id}]\n"
            + render_chart(x_values, data["series"])
        )
        return charts
    for name, value in data.items():
        if name in ("depths", "configs", "widths"):
            continue
        if isinstance(value, dict):
            series = {
                key: values
                for key, values in value.items()
                if isinstance(values, (list, tuple))
                and len(values) == len(x_values)
            }
            if series:
                charts.append(
                    f"[{result.experiment_id}: {name}]\n"
                    + render_chart(x_values, series)
                )
    return charts
