"""Experiment harness: one driver per table and figure of the paper.

Every experiment is runnable three ways:

* programmatically — ``from repro.evalx import run_experiment``;
* from the command line — ``python -m repro.evalx figure7``;
* as a benchmark — ``pytest benchmarks/ --benchmark-only``.

Each driver returns an :class:`ExperimentResult` carrying both a rendered
text report (the same rows/series the paper presents) and the raw numbers,
which the test suite asserts shape properties against.
"""

from repro.evalx.checkpoint import (
    CheckpointCorrupt,
    CheckpointKeyError,
    CheckpointStore,
)
from repro.evalx.metrics import RunMetrics
from repro.evalx.parallel import CellFailure, RetryPolicy, is_failure
from repro.evalx.registry import (
    EXPERIMENT_IDS,
    ExperimentResult,
    run_experiment,
)

__all__ = [
    "EXPERIMENT_IDS",
    "ExperimentResult",
    "run_experiment",
    "RunMetrics",
    "RetryPolicy",
    "CellFailure",
    "is_failure",
    "CheckpointStore",
    "CheckpointCorrupt",
    "CheckpointKeyError",
]
