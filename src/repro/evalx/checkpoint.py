"""Durable per-cell result store: crash-safe checkpoint and resume.

The paper's central repair mechanism is checkpoint-and-restore — the
speculative path predictor snapshots its history at every prediction and
repairs locally on a misprediction instead of squashing the whole window
(Section 5; :mod:`repro.predictors.speculative`). The experiment engine
gets the same treatment here: every completed cell is persisted the
moment it finishes, so a run killed mid-sweep (SIGKILL, OOM, CI
preemption, Ctrl-C) restarts from its last completed cell instead of
squashing hours of simulation.

Design, in the same discipline as the trace cache
(:mod:`repro.synth.workloads`):

* **Content-addressed** — each record is keyed by a fingerprint of
  (experiment id, cell fn qualname, canonicalized kwargs, workload seed,
  code version). Any change to the code version, the sweep's
  configuration, or the cell's inputs misses the store, so resuming can
  never mix results from different sweeps.
* **Atomic** — records are written to a same-directory temp file and
  published with ``os.replace``; a crash mid-write leaves only a
  ``.tmp-<pid>`` file, which the workload prewarm sweep reaps
  (:func:`repro.synth.workloads.sweep_orphan_tmp_files`).
* **Verified** — each record embeds a SHA-256 checksum of its pickled
  payload plus the fingerprint it was stored under. A corrupt, stale,
  truncated or tampered record is reported as a typed
  :class:`CheckpointCorrupt` event and transparently re-executed —
  never a crash, never a silently wrong result.

Resumed payloads round-trip through pickle, so a resumed sweep's
:class:`~repro.evalx.result.ExperimentResult` is byte-identical to an
uninterrupted run's.
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import json
import os
import pickle
import time
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.synth.generator import GENERATOR_VERSION
from repro.utils.fsio import fsync_write_text

#: Bump when the record envelope or fingerprint recipe changes; old
#: records then miss the store (stale) instead of being misread.
CHECKPOINT_FORMAT_VERSION = 1

#: Completed-cell records are ``<fingerprint>.ckpt.json``.
RECORD_SUFFIX = ".ckpt.json"

#: In-progress claims by sweep-service workers are
#: ``<fingerprint>.lease.json`` next to the record they will become
#: (see :mod:`repro.evalx.service.queue`); record listings ignore them.
LEASE_SUFFIX = ".lease.json"


class CheckpointKeyError(ReproError):
    """A cell's kwargs cannot be canonically fingerprinted.

    Raised when a kwarg value is not built from JSON-canonical pieces
    (None/bool/int/float/str, lists/tuples, str-keyed dicts, or
    dataclasses of those). Such a cell still runs — it just cannot be
    checkpointed, and the run records an ``unfingerprintable`` event.
    The CKP001 analysis rule flags the statically detectable cases.
    """


@dataclasses.dataclass(frozen=True)
class CheckpointCorrupt:
    """Typed event: a record failed verification and was discarded.

    The affected cell is transparently re-executed; this object only
    feeds the metrics stream (``event: "checkpoint", action:
    "corrupt"``) so the damage is visible, not silent.

    Attributes:
        fingerprint: The store key whose record failed.
        path: Filesystem path of the bad record (already deleted).
        reason: What failed — checksum mismatch, unreadable JSON,
            missing fields, fingerprint mismatch, or undecodable payload.
    """

    fingerprint: str
    path: str
    reason: str


@dataclasses.dataclass(frozen=True)
class CheckpointHit:
    """A verified record: the cell's payload, exactly as computed."""

    fingerprint: str
    payload: Any


def code_version() -> str:
    """Version component of every fingerprint.

    Couples records to both the checkpoint format and the synthetic
    workload generator semantics: a generator bump regenerates traces,
    so cached cell results computed from the old traces must miss too.
    """
    return f"ckpt{CHECKPOINT_FORMAT_VERSION}:gen{GENERATOR_VERSION}"


def canonical_value(value: Any) -> Any:
    """Reduce a kwarg value to a canonical JSON-able form.

    Dict keys are sorted by the JSON dump; tuples and lists unify to
    lists (a cell fn receiving ``(1, 2)`` vs ``[1, 2]`` computes the
    same thing); dataclasses canonicalize to ``[qualname, fields...]``
    so config objects like ``TimingConfig`` fingerprint by value.
    Anything else raises :class:`CheckpointKeyError`.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise CheckpointKeyError(
                    f"dict key {key!r} is not a string; checkpoint "
                    "fingerprints require str-keyed dicts"
                )
            out[key] = canonical_value(item)
        return out
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return [
            f"{cls.__module__}.{cls.__qualname__}",
            canonical_value(dataclasses.asdict(value)),
        ]
    raise CheckpointKeyError(
        f"value of type {type(value).__name__} cannot be canonically "
        "fingerprinted (use None/bool/int/float/str, lists/tuples, "
        "str-keyed dicts, or dataclasses of those)"
    )


def canonical_kwargs(kwargs: dict) -> str:
    """Canonical JSON encoding of a cell's kwargs (fingerprint input)."""
    return json.dumps(
        canonical_value(dict(kwargs)),
        sort_keys=True,
        separators=(",", ":"),
    )


def cell_fingerprint(experiment_id: str, cell) -> str:
    """Content address of one cell's result.

    Covers everything that determines the payload: the code version,
    the driver (experiment id), the cell function's import path, its
    canonicalized kwargs, and the workload profile's seed (the one
    input a cell reads that is not in its kwargs). Raises
    :class:`CheckpointKeyError` for kwargs that cannot be canonicalized.
    """
    fn = cell.fn
    seed = None
    if cell.workload is not None:
        from repro.synth.profiles import get_profile

        seed = get_profile(cell.workload[0]).seed
    key = "\n".join(
        (
            code_version(),
            experiment_id,
            f"{fn.__module__}.{fn.__qualname__}",
            canonical_kwargs(cell.kwargs),
            repr(seed),
        )
    )
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:40]


class CheckpointStore:
    """One directory of verified per-cell result records.

    Args:
        directory: Where records live; created on first save.
        resume: When true, :meth:`load` serves existing verified
            records (the ``--resume`` path). When false the store only
            persists — an existing record is ignored and overwritten,
            giving fresh-run semantics with a warm store for the *next*
            resume.
    """

    def __init__(self, directory: str | Path, resume: bool = False) -> None:
        self.directory = Path(directory)
        self.resume = resume

    def path_for(self, fingerprint: str) -> Path:
        """Record path for a fingerprint."""
        return self.directory / f"{fingerprint}{RECORD_SUFFIX}"

    def lease_path_for(self, fingerprint: str) -> Path:
        """Lease-file path for a fingerprint (sweep-service claims)."""
        return self.directory / f"{fingerprint}{LEASE_SUFFIX}"

    def has(self, fingerprint: str) -> bool:
        """Whether a (not-yet-verified) record exists for a fingerprint.

        Existence only — cheap enough to poll over a whole grid. Use
        :meth:`load` when the payload (and its verification) is needed.
        """
        return self.path_for(fingerprint).exists()

    def fingerprints(self) -> set[str]:
        """Fingerprints of every completed record in the store.

        Lease files, in-flight temp files, and anything else that is not
        a ``*.ckpt.json`` record are excluded — this is the "what work
        is durably done" view the sweep service polls.
        """
        if not self.directory.is_dir():
            return set()
        return {
            path.name[: -len(RECORD_SUFFIX)]
            for path in self.directory.glob(f"*{RECORD_SUFFIX}")
            if not path.name.startswith(".")
        }

    def leases(self) -> set[str]:
        """Fingerprints that currently have a lease file on disk.

        Liveness (expiry, ownership) is the lease queue's concern —
        this only lists which claims exist.
        """
        if not self.directory.is_dir():
            return set()
        return {
            path.name[: -len(LEASE_SUFFIX)]
            for path in self.directory.glob(f"*{LEASE_SUFFIX}")
            if not path.name.startswith(".")
        }

    def load(
        self, fingerprint: str, label: str = "?"
    ) -> CheckpointHit | CheckpointCorrupt | None:
        """Fetch a verified record, if one exists.

        Returns ``None`` when no record exists (a plain miss), a
        :class:`CheckpointHit` when the record verifies, and a
        :class:`CheckpointCorrupt` (with the bad file already removed)
        when anything about it fails verification.
        """
        path = self.path_for(fingerprint)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except (OSError, UnicodeDecodeError) as exc:
            return self._corrupt(path, fingerprint, f"unreadable: {exc}")
        try:
            record = json.loads(raw)
        except ValueError as exc:
            return self._corrupt(path, fingerprint, f"bad JSON: {exc}")
        if not isinstance(record, dict):
            return self._corrupt(path, fingerprint, "record is not an object")
        missing = [
            key
            for key in ("version", "fingerprint", "payload_sha256", "payload")
            if key not in record
        ]
        if missing:
            return self._corrupt(
                path, fingerprint, f"missing fields: {missing}"
            )
        if record["version"] != CHECKPOINT_FORMAT_VERSION:
            return self._corrupt(
                path,
                fingerprint,
                f"format version {record['version']!r} != "
                f"{CHECKPOINT_FORMAT_VERSION} (stale)",
            )
        if record["fingerprint"] != fingerprint:
            return self._corrupt(
                path,
                fingerprint,
                "embedded fingerprint does not match the record's name "
                "(renamed or tampered)",
            )
        try:
            blob = base64.b64decode(record["payload"], validate=True)
        except (ValueError, TypeError) as exc:
            return self._corrupt(path, fingerprint, f"bad payload: {exc}")
        digest = hashlib.sha256(blob).hexdigest()
        if digest != record["payload_sha256"]:
            return self._corrupt(
                path,
                fingerprint,
                f"payload checksum mismatch ({digest[:12]}... != "
                f"{str(record['payload_sha256'])[:12]}...)",
            )
        try:
            payload = pickle.loads(blob)
        except Exception as exc:  # unpicklable despite a good checksum
            return self._corrupt(path, fingerprint, f"unpicklable: {exc!r}")
        return CheckpointHit(fingerprint=fingerprint, payload=payload)

    def save(
        self,
        fingerprint: str,
        label: str,
        experiment_id: str,
        payload: Any,
    ) -> bool:
        """Persist one completed cell's payload atomically.

        Returns False (instead of raising) when the payload cannot be
        pickled or the disk write fails: checkpointing is an overlay —
        a failed save costs only resumability, never the run.
        """
        try:
            blob = pickle.dumps(payload)
        except Exception:
            return False
        record = {
            "version": CHECKPOINT_FORMAT_VERSION,
            "fingerprint": fingerprint,
            "experiment": experiment_id,
            "cell": label,
            "created_ts": time.time(),
            "payload_sha256": hashlib.sha256(blob).hexdigest(),
            "payload": base64.b64encode(blob).decode("ascii"),
        }
        path = self.path_for(fingerprint)
        tmp_path = path.with_name(f".{fingerprint}.tmp-{os.getpid()}")
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fsync_write_text(tmp_path, json.dumps(record) + "\n")
            os.replace(tmp_path, path)
        except OSError:
            tmp_path.unlink(missing_ok=True)
            return False
        return True

    @staticmethod
    def _corrupt(
        path: Path, fingerprint: str, reason: str
    ) -> CheckpointCorrupt:
        """Discard a bad record so re-execution replaces it cleanly."""
        try:
            path.unlink()
        except OSError:
            pass  # already gone, or read-only: re-execution still wins
        return CheckpointCorrupt(
            fingerprint=fingerprint, path=str(path), reason=reason
        )
