"""Parallel experiment engine: fan (benchmark x config) cells to workers.

Every paper experiment is a grid of independent simulations — benchmarks
crossed with predictor configurations — so each driver module exposes its
grid explicitly:

* ``cells(n_tasks=..., quick=..., **kwargs)`` returns a list of
  :class:`Cell` work units (a module-level function plus picklable
  keyword arguments);
* ``combine(cells, results, ...)`` assembles the cell payloads, in cell
  order, into the final :class:`~repro.evalx.result.ExperimentResult`.

:func:`run_sharded` executes the grid either serially (the default — the
results are byte-identical either way) or across a
``ProcessPoolExecutor`` when ``jobs`` asks for workers. Determinism is
structural: cells share no mutable state, results are assembled in
submission order regardless of completion order, and ``combine`` never
sees which path produced them.

The scheduler is fault-tolerant in the same spirit as the paper's
control-flow speculation: a mispredicted (failed) cell is repaired
locally instead of squashing the whole sweep.

* **Retry with backoff** — :class:`RetryPolicy` grants each cell extra
  attempts with exponential backoff before its failure is final.
* **Per-cell timeout** (pooled runs only) — a cell exceeding
  ``timeout_seconds`` is marked failed; the pool is rebuilt so the stuck
  worker cannot starve the run.
* **Worker-crash recovery** — a ``BrokenProcessPool`` (a worker died,
  e.g. OOM-killed or ``os._exit``) rebuilds the pool once and re-runs
  only the unfinished cells, one at a time, so a second crash names the
  culprit cell exactly instead of surfacing as a bare pool error.
* **Keep-going mode** — with ``keep_going=True`` a cell whose failure is
  final degrades to a typed :class:`CellFailure` payload in its result
  slot; drivers render these as gaps and the sweep completes. Without
  it, the first final failure cancels all queued cells
  (``shutdown(cancel_futures=True)``) and raises promptly.

Two durability layers sit on top of the retry machinery:

* **Checkpoint/resume** — pass a
  :class:`~repro.evalx.checkpoint.CheckpointStore` and every completed
  cell is persisted atomically the moment it finishes; a store opened
  with ``resume=True`` serves verified records up front, so a run
  killed outright (SIGKILL, OOM, CI preemption) restarts and completes
  with byte-identical output. Corrupt or stale records are typed
  :class:`~repro.evalx.checkpoint.CheckpointCorrupt` events that fall
  back to re-execution.
* **Graceful interrupts** — ``run_sharded`` converts SIGINT/SIGTERM
  into an orderly stop: the pool is shut down, metrics are flushed with
  an ``interrupt`` event, the checkpoint store is left consistent, and
  the interrupt re-raises — so Ctrl-C is always resumable.

Observability threads through the same path: pass a
:class:`~repro.evalx.metrics.RunMetrics` and every attempt is recorded
(wall time, worker pid, workload-cache deltas) as JSON lines.

Fault injection (:mod:`repro.evalx.faults`) hooks the same choke
points: the worker-side cell runner fires planned ``raise``/``hang``/
``kill`` faults, and the parent applies planned record corruption —
inert unless a plan is explicitly installed.

Before fanning out, the scheduler pre-warms each distinct workload in
the parent process so trace generation happens once, not once per
worker: forked workers inherit the in-memory caches, and (when the disk
cache is enabled) spawned workers find warm ``.repro-cache`` entries
written atomically by :mod:`repro.synth.workloads`.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import CellExecutionError
from repro.evalx import faults
from repro.evalx.checkpoint import (
    CheckpointCorrupt,
    CheckpointKeyError,
    CheckpointStore,
    cell_fingerprint,
)
from repro.evalx.metrics import RunMetrics
from repro.evalx.report import render_failures
from repro.evalx.result import ExperimentResult
from repro.synth.workloads import (
    CHECKPOINT_ENV,
    cache_counters,
    prewarm_workload,
    trace_cache_path,
)


@dataclass(frozen=True)
class Cell:
    """One independent work unit of an experiment grid.

    Attributes:
        label: Human-readable cell name (``"gcc:path"``) used in progress
            and error messages.
        fn: A module-level function (picklable by reference) computing the
            cell's payload from ``kwargs``.
        kwargs: Keyword arguments for ``fn``; must be picklable.
        workload: Optional ``(benchmark, n_tasks)`` this cell will load,
            so the scheduler can pre-warm shared traces before fan-out.
    """

    label: str
    fn: Callable[..., Any]
    kwargs: dict = field(default_factory=dict)
    workload: tuple[str, int | None] | None = None


@dataclass(frozen=True)
class CellFailure:
    """Typed stand-in payload for a cell whose failure became final.

    In ``keep_going`` mode this object occupies the failed cell's result
    slot; ``combine`` implementations render it as a gap (``-``) and the
    final report carries the full list in
    :attr:`~repro.evalx.result.ExperimentResult.failures`.

    Attributes:
        label: The failed cell's label.
        kind: ``"error"`` (the cell raised), ``"timeout"`` (exceeded the
            per-cell deadline), or ``"crash"`` (its worker process died).
        error: Human-readable description of the last failure.
        attempts: Attempts consumed, including the final one.
        wall_seconds: Wall time of the last attempt.
    """

    label: str
    kind: str
    error: str
    attempts: int
    wall_seconds: float


def is_failure(payload: Any) -> bool:
    """True when a result slot holds a :class:`CellFailure` gap."""
    return isinstance(payload, CellFailure)


@dataclass(frozen=True)
class RetryPolicy:
    """Fault-handling knobs for :func:`execute_cells`.

    Attributes:
        retries: Extra attempts granted to a failing cell (0 = fail on
            the first error).
        backoff_seconds: Delay before the first retry; doubles on each
            subsequent one (exponential backoff).
        timeout_seconds: Per-cell wall-clock deadline, enforced only in
            pooled runs (a serial in-process cell cannot be preempted).
    """

    retries: int = 0
    backoff_seconds: float = 0.25
    timeout_seconds: float | None = None


#: Policy used when the caller passes none: fail fast, no deadline.
DEFAULT_RETRY_POLICY = RetryPolicy()


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value to a concrete worker count.

    ``None`` (the default) means serial; ``0`` means one worker per CPU;
    positive values are taken literally.
    """
    if jobs is None:
        return 1
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise CellExecutionError(f"jobs must be >= 0, got {jobs}")
    return jobs


@dataclass
class _CellOutcome:
    """What the instrumented worker-side runner ships back per attempt."""

    payload: Any
    worker_pid: int
    wall_seconds: float
    cache: dict[str, int]


def _run_cell_instrumented(cell: Cell, attempt: int = 1) -> _CellOutcome:
    """Run one cell and measure it (executes inside the worker).

    The fault hook fires first: inert unless a chaos plan is installed
    (see :mod:`repro.evalx.faults`), in which case a planned victim
    attempt raises, hangs, or hard-kills this worker right here.
    """
    faults.fire(cell.label, attempt)
    before = cache_counters()
    started = time.perf_counter()
    payload = cell.fn(**cell.kwargs)
    wall = time.perf_counter() - started
    after = cache_counters()
    return _CellOutcome(
        payload=payload,
        worker_pid=os.getpid(),
        wall_seconds=wall,
        cache={
            k: after[k] - before.get(k, 0)
            for k in after
            if after[k] > before.get(k, 0)
        },
    )


def _wrap_failure(cell: Cell, exc: BaseException) -> CellExecutionError:
    return CellExecutionError(
        f"cell {cell.label!r} ({getattr(cell.fn, '__module__', '?')}) "
        f"failed: {exc!r}",
        cell_label=cell.label,
    )


def _prewarm(cells: Sequence[Cell]) -> None:
    """Generate each distinct workload once, before workers exist."""
    seen: set[tuple[str, int | None]] = set()
    for cell in cells:
        if cell.workload is not None and cell.workload not in seen:
            seen.add(cell.workload)
            prewarm_workload(*cell.workload)


@dataclass
class _CellState:
    """Scheduler-side bookkeeping for one cell across attempts."""

    index: int
    cell: Cell
    attempts: int = 0
    submitted_at: float = 0.0
    retry_at: float = 0.0


def _backoff(policy: RetryPolicy, attempts: int) -> float:
    return policy.backoff_seconds * (2 ** max(attempts - 1, 0))


def execute_cells(
    cells: Sequence[Cell],
    jobs: int | None = None,
    *,
    keep_going: bool = False,
    retry: RetryPolicy | None = None,
    metrics: RunMetrics | None = None,
    on_result: Callable[[Cell, Any], None] | None = None,
) -> list:
    """Run every cell and return payloads in cell order.

    With ``jobs`` resolving to one worker (or a single cell) this is a
    plain loop; otherwise cells are fanned over a process pool and
    collected as they complete, assembled back into submission order.

    A cell whose failure is final (its :class:`RetryPolicy` attempts are
    exhausted) raises :class:`~repro.errors.CellExecutionError` naming
    the cell — cancelling every still-queued cell first so the error
    surfaces promptly — unless ``keep_going`` is set, in which case its
    result slot holds a :class:`CellFailure` and the sweep completes.

    ``on_result`` is invoked in the parent process the moment a cell's
    payload is final (successful payloads only, never
    :class:`CellFailure` gaps) — the checkpoint store persists cells
    through this hook, so results survive even if the run never
    finishes assembling them.
    """
    policy = retry or DEFAULT_RETRY_POLICY
    recorder = metrics or RunMetrics.disabled()
    n_workers = resolve_jobs(jobs)
    if n_workers <= 1 or len(cells) <= 1:
        return _execute_serial(
            cells, policy, keep_going, recorder, on_result
        )
    return _execute_pooled(
        cells, n_workers, policy, keep_going, recorder, on_result
    )


def _execute_serial(
    cells: Sequence[Cell],
    policy: RetryPolicy,
    keep_going: bool,
    metrics: RunMetrics,
    on_result: Callable[[Cell, Any], None] | None = None,
) -> list:
    """In-process execution with the same retry/keep-going semantics.

    Per-cell timeouts are not enforced here: a cell running in the
    parent process cannot be preempted without threads or signals.
    """
    results = []
    for cell in cells:
        attempts = 0
        while True:
            attempts += 1
            started = time.perf_counter()
            try:
                outcome = _run_cell_instrumented(cell, attempts)
            except Exception as exc:
                wall = time.perf_counter() - started
                final = attempts > policy.retries
                metrics.cell_attempt(
                    cell.label,
                    status="error",
                    attempt=attempts,
                    wall_seconds=wall,
                    final=final,
                    worker_pid=os.getpid(),
                    error=repr(exc),
                )
                if not final:
                    time.sleep(_backoff(policy, attempts))
                    continue
                if keep_going:
                    results.append(
                        CellFailure(
                            label=cell.label,
                            kind="error",
                            error=repr(exc),
                            attempts=attempts,
                            wall_seconds=wall,
                        )
                    )
                    break
                raise _wrap_failure(cell, exc) from exc
            else:
                metrics.cell_attempt(
                    cell.label,
                    status="ok",
                    attempt=attempts,
                    wall_seconds=outcome.wall_seconds,
                    worker_pid=outcome.worker_pid,
                    cache=outcome.cache,
                )
                results.append(outcome.payload)
                if on_result is not None:
                    on_result(cell, outcome.payload)
                break
    return results


#: Result-slot sentinel for a cell that has not finished yet.
_PENDING = object()


class _PooledRun:
    """One fan-out execution over a rebuildable ``ProcessPoolExecutor``.

    The happy path submits every cell up front and drains completions
    with ``wait(FIRST_COMPLETED)``. Fault handling may transition the
    run into *isolated* mode (single worker, one in-flight cell) after a
    worker crash, which keeps crash attribution exact: when the only
    in-flight cell's pool breaks, that cell is the culprit.
    """

    def __init__(
        self,
        cells: Sequence[Cell],
        n_workers: int,
        policy: RetryPolicy,
        keep_going: bool,
        metrics: RunMetrics,
        on_result: Callable[[Cell, Any], None] | None = None,
    ) -> None:
        self.cells = cells
        self.policy = policy
        self.keep_going = keep_going
        self.metrics = metrics
        self.on_result = on_result
        self.max_workers = min(n_workers, len(cells))
        self.results: list[Any] = [_PENDING] * len(cells)
        self.queued: list[_CellState] = [
            _CellState(i, c) for i, c in enumerate(cells)
        ]
        self.in_flight: dict[Future, _CellState] = {}
        self.isolated = False  # post-crash degraded mode
        self.pool = ProcessPoolExecutor(max_workers=self.max_workers)

    # -- pool management ----------------------------------------------

    def _shutdown(self) -> None:
        """Cancel queued work and release the pool without blocking.

        ``cancel_futures=True`` keeps failures prompt: cells submitted
        but not yet started never run; ``wait=False`` avoids blocking on
        cells already running (their results are discarded).
        """
        self.pool.shutdown(wait=False, cancel_futures=True)

    def _rebuild_pool(self, isolate: bool) -> None:
        """Replace the pool after a crash or timeout.

        Cells that were in flight go back to the queue without an
        attempt charged — their worker died through no fault of theirs
        (or was abandoned behind a timed-out neighbour). ``isolate``
        switches the rebuilt pool to a single worker with one in-flight
        cell at a time, which makes crash attribution exact; timeouts
        keep the full fan-out, since attribution is already per-cell.
        """
        self._shutdown()
        for state in self.in_flight.values():
            state.attempts -= 1
            state.retry_at = 0.0
            self.queued.append(state)
        self.in_flight.clear()
        self.queued.sort(key=lambda s: s.index)
        self.isolated = self.isolated or isolate
        self.pool = ProcessPoolExecutor(
            max_workers=1 if self.isolated else self.max_workers
        )

    # -- scheduling ---------------------------------------------------

    def _submit(self, state: _CellState) -> None:
        state.attempts += 1
        state.submitted_at = time.monotonic()
        self.in_flight[
            self.pool.submit(
                _run_cell_instrumented, state.cell, state.attempts
            )
        ] = state

    def _submit_due(self) -> None:
        now = time.monotonic()
        due = [s for s in self.queued if s.retry_at <= now]
        if self.isolated:
            # One in-flight cell at a time: a pool break names it.
            due = due[:1] if not self.in_flight else []
        for state in due:
            self.queued.remove(state)
            try:
                self._submit(state)
            except BrokenProcessPool:
                # The pool broke between a worker death and this submit;
                # the submitted cell never ran, so it is not charged.
                state.attempts -= 1
                state.retry_at = 0.0
                self.queued.append(state)
                self._handle_crash([])
                return

    def _tick_seconds(self) -> float | None:
        """How long ``wait`` may block before a deadline needs service."""
        now = time.monotonic()
        deadlines = [s.retry_at - now for s in self.queued if s.retry_at]
        if self.policy.timeout_seconds is not None:
            deadlines.extend(
                s.submitted_at + self.policy.timeout_seconds - now
                for s in self.in_flight.values()
            )
        if not deadlines:
            return None
        return max(min(deadlines), 0.01)

    # -- fault handling -----------------------------------------------

    def _attempt_failed(
        self,
        state: _CellState,
        kind: str,
        error: str,
        wall_seconds: float,
        exc: BaseException | None,
    ) -> None:
        """Handle one failed attempt: schedule a retry or finalise."""
        final = state.attempts > self.policy.retries
        self.metrics.cell_attempt(
            state.cell.label,
            status=kind,
            attempt=state.attempts,
            wall_seconds=wall_seconds,
            final=final,
            error=error,
        )
        if not final:
            state.retry_at = time.monotonic() + _backoff(
                self.policy, state.attempts
            )
            self.queued.append(state)
            return
        if self.keep_going:
            self.results[state.index] = CellFailure(
                label=state.cell.label,
                kind=kind,
                error=error,
                attempts=state.attempts,
                wall_seconds=wall_seconds,
            )
            return
        self._shutdown()
        if exc is not None:
            raise _wrap_failure(state.cell, exc) from exc
        raise CellExecutionError(
            f"cell {state.cell.label!r} "
            f"({getattr(state.cell.fn, '__module__', '?')}) {error}",
            cell_label=state.cell.label,
        )

    def _handle_crash(self, crashed: list[_CellState]) -> None:
        """A worker died; recover and (if possible) attribute the crash.

        In fan-out mode the culprit among the in-flight cells is
        unknowable, so nobody is charged: the pool is rebuilt and all
        unfinished cells re-run one at a time. In isolated mode exactly
        one cell was in flight, so the crash is charged to it.
        """
        if self.isolated:
            for state in crashed:
                self._attempt_failed(
                    state,
                    kind="crash",
                    error=(
                        "worker process died while running this cell "
                        "(BrokenProcessPool)"
                    ),
                    wall_seconds=time.monotonic() - state.submitted_at,
                    exc=None,
                )
            self._rebuild_pool(isolate=True)
            return
        for state in crashed:
            state.attempts -= 1
            state.retry_at = 0.0
            self.queued.append(state)
        self._rebuild_pool(isolate=True)

    def _handle_timeouts(self) -> None:
        if self.policy.timeout_seconds is None:
            return
        now = time.monotonic()
        expired = [
            (future, state)
            for future, state in self.in_flight.items()
            if now - state.submitted_at > self.policy.timeout_seconds
        ]
        if not expired:
            return
        for future, state in expired:
            del self.in_flight[future]
            future.cancel()  # no-op if already running; harmless
            self._attempt_failed(
                state,
                kind="timeout",
                error=(
                    "cell exceeded the per-cell timeout of "
                    f"{self.policy.timeout_seconds}s"
                ),
                wall_seconds=now - state.submitted_at,
                exc=None,
            )
        # The expired cells' workers are still busy; rebuild so stuck
        # tasks cannot starve the remaining cells of worker slots.
        self._rebuild_pool(isolate=False)

    # -- main loop ----------------------------------------------------

    def run(self) -> list:
        _prewarm(self.cells)
        try:
            while self.queued or self.in_flight:
                self._submit_due()
                if not self.in_flight:
                    # Everything runnable is backing off; sleep to the
                    # earliest retry deadline.
                    now = time.monotonic()
                    wake = min(s.retry_at for s in self.queued)
                    if wake > now:
                        time.sleep(min(wake - now, 0.5))
                    continue
                done, _ = wait(
                    set(self.in_flight),
                    timeout=self._tick_seconds(),
                    return_when=FIRST_COMPLETED,
                )
                crashed: list[_CellState] = []
                for future in done:
                    state = self.in_flight.pop(future)
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        crashed.append(state)
                    except Exception as exc:
                        self._attempt_failed(
                            state,
                            kind="error",
                            error=repr(exc),
                            wall_seconds=(
                                time.monotonic() - state.submitted_at
                            ),
                            exc=exc,
                        )
                    else:
                        self.metrics.cell_attempt(
                            state.cell.label,
                            status="ok",
                            attempt=state.attempts,
                            wall_seconds=outcome.wall_seconds,
                            worker_pid=outcome.worker_pid,
                            cache=outcome.cache,
                        )
                        self.results[state.index] = outcome.payload
                        if self.on_result is not None:
                            self.on_result(state.cell, outcome.payload)
                if crashed:
                    self._handle_crash(crashed)
                else:
                    self._handle_timeouts()
            return self.results
        finally:
            self._shutdown()


def _execute_pooled(
    cells: Sequence[Cell],
    n_workers: int,
    policy: RetryPolicy,
    keep_going: bool,
    metrics: RunMetrics,
    on_result: Callable[[Cell, Any], None] | None = None,
) -> list:
    return _PooledRun(
        cells, n_workers, policy, keep_going, metrics, on_result
    ).run()


@contextmanager
def _graceful_interrupts(recorder: RunMetrics):
    """Convert SIGINT/SIGTERM into a clean, resumable stop.

    Both signals raise ``KeyboardInterrupt`` at the scheduler's next
    bytecode boundary; the pool's ``finally`` shutdown runs, an
    ``interrupt`` event is flushed to the metrics stream, and the
    interrupt re-raises. The checkpoint store needs no special handling
    — its writes are atomic and happen per completed cell, so whatever
    finished before the signal is already durable.

    Handlers can only be installed from the main thread; elsewhere the
    default behaviour is kept (a KeyboardInterrupt raised by a cell is
    still recorded).
    """
    received: list[int] = []

    def _handler(signum, frame):
        received.append(signum)
        raise KeyboardInterrupt

    previous: dict[int, Any] = {}
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(signum, _handler)
            except (ValueError, OSError):  # non-main interpreter quirks
                pass
    try:
        yield
    except KeyboardInterrupt:
        name = (
            signal.Signals(received[-1]).name if received else "SIGINT"
        )
        recorder.interrupted(name)
        raise
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


def _announce_faults(plan, cells: Sequence[Cell], recorder: RunMetrics):
    """Emit one ``armed`` fault event per trigger aimed at this grid."""
    labels = {cell.label for cell in cells}
    for trigger in plan.triggers:
        if trigger.label in labels:
            recorder.fault_event(
                trigger.label, trigger.action, trigger.attempt, "armed"
            )


def _corrupt_trace_records(
    plan, cells: Sequence[Cell], recorder: RunMetrics
) -> None:
    """Apply planned ``corrupt-trace`` damage before any cell runs."""
    done: set[str] = set()
    for trigger in plan.store_triggers():
        if trigger.action != "corrupt-trace" or trigger.label in done:
            continue
        for cell in cells:
            if cell.label == trigger.label and cell.workload is not None:
                path = trace_cache_path(*cell.workload)
                if path is not None and faults.corrupt_file(path):
                    done.add(trigger.label)
                    recorder.fault_event(
                        cell.label,
                        trigger.action,
                        trigger.attempt,
                        "fired",
                    )
                break


def _prefill_from_store(
    store: CheckpointStore,
    experiment_id: str,
    cells: Sequence[Cell],
    results: list,
    fingerprints: dict[int, str],
    plan,
    recorder: RunMetrics,
) -> None:
    """Fingerprint every cell; serve verified records when resuming.

    Fills ``fingerprints`` for all checkpointable cells (so completions
    get persisted either way) and, when the store was opened with
    ``resume=True``, fills ``results`` slots from verified records.
    Planned ``corrupt-checkpoint`` faults are applied just before the
    load so the corruption-detection path runs against real damage.
    """
    for index, cell in enumerate(cells):
        try:
            fingerprint = cell_fingerprint(experiment_id, cell)
        except CheckpointKeyError as exc:
            recorder.checkpoint_event(
                cell.label, "unfingerprintable", reason=str(exc)
            )
            continue
        fingerprints[index] = fingerprint
        if not store.resume:
            continue
        if plan is not None:
            for trigger in plan.store_triggers():
                if (
                    trigger.action == "corrupt-checkpoint"
                    and trigger.label == cell.label
                    and faults.corrupt_file(store.path_for(fingerprint))
                ):
                    recorder.fault_event(
                        cell.label,
                        trigger.action,
                        trigger.attempt,
                        "fired",
                    )
        record = store.load(fingerprint, cell.label)
        if record is None:
            continue
        if isinstance(record, CheckpointCorrupt):
            recorder.checkpoint_event(
                cell.label, "corrupt", fingerprint, record.reason
            )
            continue
        results[index] = record.payload
        recorder.checkpoint_event(cell.label, "resume", fingerprint)


def run_sharded(
    module,
    n_tasks: int | None = None,
    quick: bool = False,
    jobs: int | None = None,
    keep_going: bool = False,
    retry: RetryPolicy | None = None,
    metrics: RunMetrics | None = None,
    checkpoint: CheckpointStore | None = None,
    **kwargs,
) -> ExperimentResult:
    """Run a cell-structured experiment module end to end.

    ``keep_going``, ``retry`` and ``metrics`` thread straight through to
    :func:`execute_cells`. When failed cells survive (keep-going mode),
    they are listed in the result's ``failures`` field, appended to the
    report text, and recorded under ``data["_failed_cells"]`` so both
    humans and shape-checking tests can see the gaps.

    ``checkpoint`` makes the run durable: every completed cell is
    persisted atomically as it finishes, and a store opened with
    ``resume=True`` skips cells whose verified record already exists —
    so a killed run restarts and completes with byte-identical output
    to an uninterrupted one. SIGINT/SIGTERM are caught, flushed to the
    metrics stream, and re-raised, leaving the store consistent.
    """
    recorder = metrics or RunMetrics.disabled()
    cells = module.cells(n_tasks=n_tasks, quick=quick, **kwargs)
    experiment_id = module.__name__.rsplit(".", 1)[-1]
    recorder.begin_experiment(
        experiment_id, n_cells=len(cells), jobs=resolve_jobs(jobs)
    )
    plan = faults.active_plan()
    if plan is not None:
        _announce_faults(plan, cells, recorder)
        _corrupt_trace_records(plan, cells, recorder)
    results: list[Any] = [_PENDING] * len(cells)
    fingerprints: dict[int, str] = {}
    if checkpoint is not None:
        _prefill_from_store(
            checkpoint,
            experiment_id,
            cells,
            results,
            fingerprints,
            plan,
            recorder,
        )
    remaining = [i for i, slot in enumerate(results) if slot is _PENDING]
    index_of = {id(cells[i]): i for i in remaining}

    def _persist(cell: Cell, payload: Any) -> None:
        fingerprint = fingerprints.get(index_of[id(cell)])
        if fingerprint is None or checkpoint is None:
            return
        saved = checkpoint.save(
            fingerprint, cell.label, experiment_id, payload
        )
        recorder.checkpoint_event(
            cell.label, "saved" if saved else "save-failed", fingerprint
        )

    previous_env = os.environ.get(CHECKPOINT_ENV)
    if checkpoint is not None:
        # Publish the store location so the workload prewarm sweep can
        # reap orphaned record temp files from earlier killed runs.
        os.environ[CHECKPOINT_ENV] = str(checkpoint.directory)
    try:
        with _graceful_interrupts(recorder):
            executed = execute_cells(
                [cells[i] for i in remaining],
                jobs=jobs,
                keep_going=keep_going,
                retry=retry,
                metrics=recorder,
                on_result=_persist if checkpoint is not None else None,
            )
    finally:
        if checkpoint is not None:
            if previous_env is None:
                os.environ.pop(CHECKPOINT_ENV, None)
            else:
                os.environ[CHECKPOINT_ENV] = previous_env
        recorder.end_experiment()
    for index, payload in zip(remaining, executed):
        results[index] = payload
    result = module.combine(
        cells, results, n_tasks=n_tasks, quick=quick, **kwargs
    )
    failures = tuple(r for r in results if is_failure(r))
    if failures:
        result = replace(
            result,
            failures=failures,
            text=result.text + "\n\n" + render_failures(failures),
        )
        result.data["_failed_cells"] = [f.label for f in failures]
    return result
