"""Parallel experiment engine: fan (benchmark x config) cells to workers.

Every paper experiment is a grid of independent simulations — benchmarks
crossed with predictor configurations — so each driver module exposes its
grid explicitly:

* ``cells(n_tasks=..., quick=..., **kwargs)`` returns a list of
  :class:`Cell` work units (a module-level function plus picklable
  keyword arguments);
* ``combine(cells, results, ...)`` assembles the cell payloads, in cell
  order, into the final :class:`~repro.evalx.result.ExperimentResult`.

:func:`run_sharded` executes the grid either serially (the default — the
results are byte-identical either way) or across a
``ProcessPoolExecutor`` when ``jobs`` asks for workers. Determinism is
structural: cells share no mutable state, results are collected in
submission order, and ``combine`` never sees which path produced them.

Before fanning out, the scheduler pre-warms each distinct workload in
the parent process so trace generation happens once, not once per
worker: forked workers inherit the in-memory caches, and (when the disk
cache is enabled) spawned workers find warm ``.repro-cache`` entries
written atomically by :mod:`repro.synth.workloads`.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ExperimentError
from repro.evalx.result import ExperimentResult
from repro.synth.workloads import prewarm_workload


@dataclass(frozen=True)
class Cell:
    """One independent work unit of an experiment grid.

    Attributes:
        label: Human-readable cell name (``"gcc:path"``) used in progress
            and error messages.
        fn: A module-level function (picklable by reference) computing the
            cell's payload from ``kwargs``.
        kwargs: Keyword arguments for ``fn``; must be picklable.
        workload: Optional ``(benchmark, n_tasks)`` this cell will load,
            so the scheduler can pre-warm shared traces before fan-out.
    """

    label: str
    fn: Callable[..., Any]
    kwargs: dict = field(default_factory=dict)
    workload: tuple[str, int | None] | None = None


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value to a concrete worker count.

    ``None`` (the default) means serial; ``0`` means one worker per CPU;
    positive values are taken literally.
    """
    if jobs is None:
        return 1
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ExperimentError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _run_cell(cell: Cell) -> Any:
    return cell.fn(**cell.kwargs)


def _wrap_failure(cell: Cell, exc: BaseException) -> ExperimentError:
    return ExperimentError(
        f"cell {cell.label!r} ({getattr(cell.fn, '__module__', '?')}) "
        f"failed: {exc!r}"
    )


def _prewarm(cells: Sequence[Cell]) -> None:
    """Generate each distinct workload once, before workers exist."""
    seen: set[tuple[str, int | None]] = set()
    for cell in cells:
        if cell.workload is not None and cell.workload not in seen:
            seen.add(cell.workload)
            prewarm_workload(*cell.workload)


def execute_cells(cells: Sequence[Cell], jobs: int | None = None) -> list:
    """Run every cell and return payloads in cell order.

    With ``jobs`` resolving to one worker (or a single cell) this is a
    plain loop; otherwise cells are fanned over a process pool. Either
    way a failing cell raises :class:`~repro.errors.ExperimentError`
    naming the cell, chained to the original exception.
    """
    n_workers = resolve_jobs(jobs)
    if n_workers <= 1 or len(cells) <= 1:
        results = []
        for cell in cells:
            try:
                results.append(_run_cell(cell))
            except Exception as exc:
                raise _wrap_failure(cell, exc) from exc
        return results

    _prewarm(cells)
    results = []
    with ProcessPoolExecutor(
        max_workers=min(n_workers, len(cells))
    ) as pool:
        futures = [pool.submit(_run_cell, cell) for cell in cells]
        for cell, future in zip(cells, futures):
            try:
                results.append(future.result())
            except Exception as exc:
                raise _wrap_failure(cell, exc) from exc
    return results


def run_sharded(
    module,
    n_tasks: int | None = None,
    quick: bool = False,
    jobs: int | None = None,
    **kwargs,
) -> ExperimentResult:
    """Run a cell-structured experiment module end to end."""
    cells = module.cells(n_tasks=n_tasks, quick=quick, **kwargs)
    results = execute_cells(cells, jobs=jobs)
    return module.combine(
        cells, results, n_tasks=n_tasks, quick=quick, **kwargs
    )
