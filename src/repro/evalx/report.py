"""Plain-text rendering for experiment reports: tables and series grids."""

from __future__ import annotations

from collections.abc import Sequence


def format_percent(value: float, decimals: int = 2) -> str:
    """Render a fraction as a fixed-width percentage string."""
    return f"{value * 100:.{decimals}f}%"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned monospace table.

    Cells are stringified; columns are right-aligned except the first.
    """
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(
                cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
            )
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def render_failures(failures: Sequence) -> str:
    """Render the failed-cell appendix of a ``--keep-going`` report.

    ``failures`` holds :class:`~repro.evalx.parallel.CellFailure`
    records; the corresponding values appear as gaps (``-``) in the
    tables above this appendix.
    """
    rows = [
        [f.label, f.kind, f.attempts, f"{f.wall_seconds:.1f}s", f.error]
        for f in failures
    ]
    return render_table(
        ["Failed cell", "Kind", "Attempts", "Wall", "Error"],
        rows,
        title=f"FAILED CELLS ({len(rows)}) — shown as gaps above",
    )


def render_frontier(points: Sequence[dict], title: str = "") -> str:
    """Render one benchmark's Pareto frontier, cheapest point first.

    ``points`` holds the autotuner's frontier dicts (``config``,
    ``storage_bits``, ``miss_rate``); see :mod:`repro.evalx.tune`.
    """
    rows = [
        [
            point["config"],
            f"{point['storage_bits'] / 8192:.1f}KB",
            format_percent(point["miss_rate"]),
        ]
        for point in points
    ]
    return render_table(
        ["Config", "Storage", "Miss rate"], rows, title=title
    )


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str = "",
    as_percent: bool = True,
) -> str:
    """Render multiple named series over a shared x axis as a table.

    This is the textual equivalent of the paper's line charts: one row per
    x value, one column per series.
    """
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(x_values):
        row: list[object] = [x]
        for values in series.values():
            value = values[i]
            if value is None:
                row.append("-")
            elif as_percent:
                row.append(format_percent(value))
            else:
                row.append(f"{value:.3f}")
        rows.append(row)
    return render_table(headers, rows, title=title)
