"""Command-line entry point: ``python -m repro.evalx <experiment> [...]``.

Examples::

    python -m repro.evalx table2
    python -m repro.evalx figure7 --quick
    python -m repro.evalx all --tasks 100000
    python -m repro.evalx all --jobs 0 --keep-going --metrics run.jsonl
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.evalx.registry import (
    ALL_IDS,
    EXPERIMENT_IDS,
    EXTENSION_IDS,
    run_experiment,
)

#: Upper bound for ``--jobs``: anything beyond this is a typo, not a
#: machine. Rejected at the argparse layer so the error arrives before
#: any cells are built.
MAX_JOBS = 1024


def _jobs_arg(text: str) -> int:
    """Argparse type for ``--jobs``: an int in [0, MAX_JOBS]."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--jobs expects an integer, got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"--jobs must be >= 0 (0 = one worker per CPU), got {value}"
        )
    if value > MAX_JOBS:
        raise argparse.ArgumentTypeError(
            f"--jobs {value} exceeds the sanity cap of {MAX_JOBS} workers"
        )
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number, got {text!r}"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {value}"
        )
    return value


def _nonnegative_int(text: str) -> int:
    """Argparse type for count flags (``--retries``): an int >= 0."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0, got {value}"
        )
    return value


def _fault_spec(text: str) -> str:
    """Argparse type for ``--inject-faults``: grammar-checked up front."""
    from repro.evalx.faults import FaultSpecError, parse_spec

    try:
        parse_spec(text)
    except FaultSpecError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return text


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evalx",
        description=(
            "Regenerate tables and figures from 'Control Flow Speculation "
            "in Multiscalar Processors' (HPCA 1997)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=(*ALL_IDS, "all", "extensions"),
        help=(
            "which table/figure to regenerate; 'all' runs every paper "
            "experiment, 'extensions' the beyond-paper studies"
        ),
    )
    parser.add_argument(
        "--tasks", type=int, default=None,
        help="override the dynamic task count (trace length)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small traces and sparse sweeps, for smoke runs",
    )
    parser.add_argument(
        "--jobs", type=_jobs_arg, default=None, metavar="N",
        help=(
            "fan independent (benchmark x config) cells over N worker "
            "processes; 0 = one per CPU; default serial. Results are "
            "identical regardless of N"
        ),
    )
    parser.add_argument(
        "--keep-going", action="store_true",
        help=(
            "don't abort a sweep on a failed cell: record it as a gap, "
            "finish the rest, and exit nonzero at the end"
        ),
    )
    parser.add_argument(
        "--retries", type=_nonnegative_int, default=0, metavar="N",
        help="extra attempts granted to each failing cell (default 0)",
    )
    parser.add_argument(
        "--retry-backoff", type=_positive_float, default=0.25,
        metavar="SECONDS",
        help=(
            "delay before a cell's first retry; doubles per retry "
            "(default 0.25)"
        ),
    )
    parser.add_argument(
        "--cell-timeout", type=_positive_float, default=None,
        metavar="SECONDS",
        help=(
            "per-cell wall-clock deadline (pooled runs only); a cell "
            "over it counts as failed"
        ),
    )
    parser.add_argument(
        "--metrics", metavar="FILE", default=None,
        help=(
            "append per-cell/per-experiment JSONL metrics to FILE and "
            "write a run manifest next to it"
        ),
    )
    parser.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help=(
            "persist every completed cell to DIR atomically (crash-safe "
            "run store); combine with --resume to skip cells whose "
            "verified record already exists"
        ),
    )
    parser.add_argument(
        "--resume", action="store_true",
        help=(
            "serve verified records from --checkpoint-dir instead of "
            "re-running their cells; a killed run restarted this way "
            "completes with byte-identical output"
        ),
    )
    parser.add_argument(
        "--inject-faults", type=_fault_spec, default=None, metavar="SPEC",
        help=(
            "chaos harness: deterministically inject faults into the run "
            "(e.g. 'kill@gcc*,raise@*#2,hang(30)@sc*'); see "
            "repro.evalx.faults for the grammar. Inert unless given"
        ),
    )
    parser.add_argument(
        "--fault-seed", type=_nonnegative_int, default=0, metavar="N",
        help="seed for the fault injector's victim choice (default 0)",
    )
    parser.add_argument(
        "--chart", action="store_true",
        help="also draw ASCII line charts for figure experiments",
    )
    parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="append each experiment's raw data to FILE as JSON lines",
    )
    args = parser.parse_args(argv)
    if args.resume and not args.checkpoint_dir:
        parser.error("--resume requires --checkpoint-dir")
    if args.cell_timeout is not None and args.jobs in (None, 1):
        # resolve_jobs: None/1 = serial, where a cell running in the
        # parent process cannot be preempted (parallel._execute_serial).
        print(
            "warning: --cell-timeout is not enforced on the serial "
            "path; pass --jobs 2 or more for per-cell deadlines",
            file=sys.stderr,
        )

    from repro.evalx.metrics import RunMetrics, write_manifest
    from repro.evalx.parallel import RetryPolicy

    if args.experiment == "all":
        ids = EXPERIMENT_IDS
    elif args.experiment == "extensions":
        ids = EXTENSION_IDS
    else:
        ids = (args.experiment,)

    checkpoint = None
    if args.checkpoint_dir:
        from repro.evalx.checkpoint import CheckpointStore

        checkpoint = CheckpointStore(
            args.checkpoint_dir, resume=args.resume
        )
    if args.inject_faults:
        _install_fault_plan(
            args.inject_faults, args.fault_seed, ids, args
        )

    retry = RetryPolicy(
        retries=args.retries,
        backoff_seconds=args.retry_backoff,
        timeout_seconds=args.cell_timeout,
    )
    metrics = RunMetrics(path=args.metrics)
    if args.metrics:
        manifest_path = write_manifest(
            Path(args.metrics).with_suffix(".manifest.json"),
            experiments=ids,
            config={
                "tasks": args.tasks,
                "quick": args.quick,
                "jobs": args.jobs,
                "keep_going": args.keep_going,
                "retries": args.retries,
                "retry_backoff": args.retry_backoff,
                "cell_timeout": args.cell_timeout,
                "checkpoint_dir": args.checkpoint_dir,
                "resume": args.resume,
                "inject_faults": args.inject_faults,
                "fault_seed": args.fault_seed,
            },
        )
        print(f"[manifest written to {manifest_path}]", file=sys.stderr)

    failed_cells = 0
    with metrics:
        for experiment_id in ids:
            started = time.time()
            result = run_experiment(
                experiment_id,
                n_tasks=args.tasks,
                quick=args.quick,
                jobs=args.jobs,
                keep_going=args.keep_going,
                retry=retry,
                metrics=metrics,
                checkpoint=checkpoint,
            )
            elapsed = time.time() - started
            failed_cells += len(result.failures)
            print(result)
            if args.chart:
                from repro.evalx.charts import charts_for_result

                for chart in charts_for_result(result):
                    print()
                    print(chart)
            if args.json:
                _append_json(args.json, result, elapsed)
            print(f"[{experiment_id} completed in {elapsed:.1f}s]\n")
    if failed_cells:
        print(
            f"warning: {failed_cells} cell(s) failed and were reported "
            "as gaps (--keep-going)",
            file=sys.stderr,
        )
        return 1
    return 0


def _install_fault_plan(spec, seed, ids, args) -> None:
    """Compile the ``--inject-faults`` spec and arm the injector.

    The plan's victims are chosen from the cell labels of the selected
    cell-grid experiments (legacy monolithic drivers expose no cells and
    can't be targeted). Installation publishes the plan through the
    :data:`repro.evalx.faults.ENV_VAR` environment variable so pool
    workers inherit it.
    """
    import importlib

    from repro.evalx import faults

    labels: list[str] = []
    for experiment_id in ids:
        module = importlib.import_module(
            f"repro.evalx.experiments.{experiment_id}"
        )
        if hasattr(module, "cells"):
            labels.extend(
                cell.label
                for cell in module.cells(
                    n_tasks=args.tasks, quick=args.quick
                )
            )
    plan = faults.FaultPlan.compile(spec, seed=seed, labels=labels)
    faults.install(plan)
    print(
        f"[fault injection armed: {len(plan.triggers)} trigger(s) "
        f"from spec {spec!r}, seed {seed}]",
        file=sys.stderr,
    )


def _append_json(path: str, result, elapsed: float) -> None:
    """Append one experiment's raw data as a JSON line."""
    import json

    record = {
        "experiment": result.experiment_id,
        "title": result.title,
        "elapsed_seconds": round(elapsed, 2),
        "data": result.data,
    }
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, default=str) + "\n")


if __name__ == "__main__":
    sys.exit(main())
