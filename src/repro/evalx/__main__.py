"""Command-line entry point: ``python -m repro.evalx <experiment> [...]``.

Examples::

    python -m repro.evalx table2
    python -m repro.evalx figure7 --quick
    python -m repro.evalx all --tasks 100000
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.evalx.registry import (
    ALL_IDS,
    EXPERIMENT_IDS,
    EXTENSION_IDS,
    run_experiment,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evalx",
        description=(
            "Regenerate tables and figures from 'Control Flow Speculation "
            "in Multiscalar Processors' (HPCA 1997)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=(*ALL_IDS, "all", "extensions"),
        help=(
            "which table/figure to regenerate; 'all' runs every paper "
            "experiment, 'extensions' the beyond-paper studies"
        ),
    )
    parser.add_argument(
        "--tasks", type=int, default=None,
        help="override the dynamic task count (trace length)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small traces and sparse sweeps, for smoke runs",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help=(
            "fan independent (benchmark x config) cells over N worker "
            "processes; 0 = one per CPU; default serial. Results are "
            "identical regardless of N"
        ),
    )
    parser.add_argument(
        "--chart", action="store_true",
        help="also draw ASCII line charts for figure experiments",
    )
    parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="append each experiment's raw data to FILE as JSON lines",
    )
    args = parser.parse_args(argv)

    if args.experiment == "all":
        ids = EXPERIMENT_IDS
    elif args.experiment == "extensions":
        ids = EXTENSION_IDS
    else:
        ids = (args.experiment,)
    for experiment_id in ids:
        started = time.time()
        result = run_experiment(
            experiment_id,
            n_tasks=args.tasks,
            quick=args.quick,
            jobs=args.jobs,
        )
        elapsed = time.time() - started
        print(result)
        if args.chart:
            from repro.evalx.charts import charts_for_result

            for chart in charts_for_result(result):
                print()
                print(chart)
        if args.json:
            _append_json(args.json, result, elapsed)
        print(f"[{experiment_id} completed in {elapsed:.1f}s]\n")
    return 0


def _append_json(path: str, result, elapsed: float) -> None:
    """Append one experiment's raw data as a JSON line."""
    import json

    record = {
        "experiment": result.experiment_id,
        "title": result.title,
        "elapsed_seconds": round(elapsed, 2),
        "data": result.data,
    }
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, default=str) + "\n")


if __name__ == "__main__":
    sys.exit(main())
