"""Shared constants and helpers for the experiment drivers."""

from __future__ import annotations

from repro.predictors.folding import DolcSpec
from repro.synth.profiles import BENCHMARK_NAMES

#: Benchmarks in the paper's presentation order.
BENCHMARKS = BENCHMARK_NAMES

#: D-O-L-C(F) sweep for the 14-bit (8KB) exit-predictor PHT of Figure 10.
#: One configuration per history depth 0..7; intermediate widths are always
#: divisible by the fold count, matching the construction rules of §6.2.
EXIT_DOLC_CONFIGS = (
    "0-0-0-14(1)",
    "1-0-7-7(1)",
    "2-4-5-5(1)",
    "3-6-8-8(2)",
    "4-5-6-7(2)",
    "5-4-6-6(2)",
    "6-5-8-9(3)",
    "7-4-9-9(3)",
)

#: D-O-L-C(F) sweep for the 11-bit (8KB) CTTB of Figure 12 — the paper's
#: own axis labels: 0-0-0-11(1) … 7-4-4-5(3).
CTTB_DOLC_CONFIGS = (
    "0-0-0-11(1)",
    "1-0-5-6(1)",
    "2-3-3-5(1)",
    "3-5-6-6(2)",
    "4-4-5-5(2)",
    "5-5-6-7(3)",
    "6-4-6-7(3)",
    "7-4-4-5(3)",
)

#: Depth-7, 15-bit-index (16KB PHT) configuration used by Table 3/4.
DEPTH7_16KB_SPEC = "7-5-7-8(3)"

#: Small CTTB used alongside the exit predictor in Table 3 (11-bit index).
SMALL_CTTB_SPEC = "5-5-6-7(3)"

#: Large CTTB for CTTB-only prediction in Table 3 (14-bit index, ~64KB).
CTTB_ONLY_SPEC = "7-4-9-9(3)"


def parse_configs(configs) -> list[DolcSpec]:
    """Parse a sequence of D-O-L-C(F) strings."""
    return [DolcSpec.parse(text) for text in configs]


def effective_tasks(n_tasks: int | None, quick: bool, default: int) -> int:
    """Pick the trace length: explicit > quick-mode > experiment default."""
    if n_tasks is not None:
        return n_tasks
    return 40_000 if quick else default
