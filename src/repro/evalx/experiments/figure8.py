"""Figure 8: ideal (alias-free) CTTB for indirect-target prediction.

Reproduces Figure 8: ideal CTTB miss rate vs history depth. Also reports
the infinite plain-TTB miss rate of §5.3 — the comparison that motivates
path correlation for indirect targets.

One cell per (benchmark, depth) plus a plain-TTB cell per benchmark.
"""

from __future__ import annotations

from repro.evalx.experiments.common import effective_tasks
from repro.evalx.parallel import Cell, is_failure
from repro.evalx.report import render_series
from repro.evalx.result import ExperimentResult
from repro.predictors.ttb import (
    IdealCorrelatedTargetBuffer,
    TaskTargetBuffer,
)
from repro.sim.functional import simulate_indirect_target_prediction
from repro.synth.workloads import load_workload

#: The paper concentrates on the two benchmarks with a substantial
#: indirect-exit share.
_BENCHMARKS = ("gcc", "xlisp")
_DEFAULT_TASKS = 250_000
_DEPTHS = tuple(range(0, 8))
_QUICK_DEPTHS = (0, 1, 3, 7)

#: "Infinitely large" plain TTB for the §5.3 comparison point (the paper's
#: 59% / 39% miss rates for gcc / xlisp).
_LARGE_TTB_BITS = 22


def _ttb_cell(name: str, tasks: int) -> dict[str, float | int]:
    """Infinite plain-TTB miss rate and indirect-exit count."""
    workload = load_workload(name, n_tasks=tasks)
    stats = simulate_indirect_target_prediction(
        workload, TaskTargetBuffer(index_bits=_LARGE_TTB_BITS)
    )
    return {"miss_rate": stats.miss_rate, "trials": stats.trials}


def _cttb_cell(name: str, depth: int, tasks: int) -> float:
    """Ideal-CTTB miss rate at one history depth."""
    workload = load_workload(name, n_tasks=tasks)
    return simulate_indirect_target_prediction(
        workload, IdealCorrelatedTargetBuffer(depth)
    ).miss_rate


def cells(n_tasks: int | None = None, quick: bool = False) -> list[Cell]:
    tasks = effective_tasks(n_tasks, quick, _DEFAULT_TASKS)
    depths = _QUICK_DEPTHS if quick else _DEPTHS
    out = []
    for name in _BENCHMARKS:
        out.append(
            Cell(
                label=f"{name}:ttb",
                fn=_ttb_cell,
                kwargs={"name": name, "tasks": tasks},
                workload=(name, tasks),
            )
        )
        out.extend(
            Cell(
                label=f"{name}:cttb-d{depth}",
                fn=_cttb_cell,
                kwargs={"name": name, "depth": depth, "tasks": tasks},
                workload=(name, tasks),
            )
            for depth in depths
        )
    return out


def combine(
    cells: list[Cell],
    results: list,
    n_tasks: int | None = None,
    quick: bool = False,
) -> ExperimentResult:
    depths = list(_QUICK_DEPTHS if quick else _DEPTHS)
    ttb: dict[str, dict] = {}
    cttb: dict[str, list[float]] = {name: [] for name in _BENCHMARKS}
    for cell, payload in zip(cells, results):
        name = cell.kwargs["name"]
        if is_failure(payload):  # keep-going gap
            payload = None
        if cell.fn is _ttb_cell:
            ttb[name] = payload
        else:
            cttb[name].append(payload)
    sections = []
    data: dict[str, dict] = {"depths": depths}
    for name in _BENCHMARKS:
        ttb_info = ttb.get(name)
        ttb_rate = ttb_info["miss_rate"] if ttb_info else None
        series = {
            "ideal CTTB": cttb[name],
            "infinite TTB": [ttb_rate] * len(depths),
        }
        data[name] = {
            "cttb": cttb[name],
            "ttb": ttb_rate,
            "indirect_exits": ttb_info["trials"] if ttb_info else None,
        }
        sections.append(
            render_series("depth", depths, series, title=name.upper())
        )
    return ExperimentResult(
        experiment_id="figure8",
        title="Performance of ideal (alias-free) CTTB",
        text="\n\n".join(sections),
        data=data,
    )
