"""Figure 8: ideal (alias-free) CTTB for indirect-target prediction."""

from __future__ import annotations

from repro.evalx.experiments.common import effective_tasks
from repro.evalx.report import render_series
from repro.evalx.result import ExperimentResult
from repro.predictors.ttb import (
    IdealCorrelatedTargetBuffer,
    TaskTargetBuffer,
)
from repro.sim.functional import simulate_indirect_target_prediction
from repro.synth.workloads import load_workload

#: The paper concentrates on the two benchmarks with a substantial
#: indirect-exit share.
_BENCHMARKS = ("gcc", "xlisp")
_DEFAULT_TASKS = 250_000
_DEPTHS = tuple(range(0, 8))
_QUICK_DEPTHS = (0, 1, 3, 7)

#: "Infinitely large" plain TTB for the §5.3 comparison point (the paper's
#: 59% / 39% miss rates for gcc / xlisp).
_LARGE_TTB_BITS = 22


def run(n_tasks: int | None = None, quick: bool = False) -> ExperimentResult:
    """Reproduce Figure 8: ideal CTTB miss rate vs history depth.

    Also reports the infinite plain-TTB miss rate of §5.3 — the comparison
    that motivates path correlation for indirect targets.
    """
    depths = _QUICK_DEPTHS if quick else _DEPTHS
    sections = []
    data: dict[str, dict] = {"depths": list(depths)}
    for name in _BENCHMARKS:
        workload = load_workload(
            name, n_tasks=effective_tasks(n_tasks, quick, _DEFAULT_TASKS)
        )
        ttb_stats = simulate_indirect_target_prediction(
            workload, TaskTargetBuffer(index_bits=_LARGE_TTB_BITS)
        )
        series = {
            "ideal CTTB": [
                simulate_indirect_target_prediction(
                    workload, IdealCorrelatedTargetBuffer(depth)
                ).miss_rate
                for depth in depths
            ],
            "infinite TTB": [ttb_stats.miss_rate] * len(depths),
        }
        data[name] = {
            "cttb": series["ideal CTTB"],
            "ttb": ttb_stats.miss_rate,
            "indirect_exits": ttb_stats.trials,
        }
        sections.append(
            render_series("depth", list(depths), series, title=name.upper())
        )
    return ExperimentResult(
        experiment_id="figure8",
        title="Performance of ideal (alias-free) CTTB",
        text="\n\n".join(sections),
        data=data,
    )
