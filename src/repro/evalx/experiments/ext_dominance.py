"""§6.3's dominance claim: real PATH vs *ideal* GLOBAL and PER.

The paper justifies skipping real GLOBAL/PER implementations: "the
implementations of the path-based history predictors tend to do better
than the ideal implementations of the other two schemes. Our depth 7
implementation of PATH has a lower miss rate than the ideal depth 7 PER
predictor for all the benchmarks except for sc [and] than the ideal depth 7
implementation of GLOBAL for all the benchmarks except gcc, where it is
within 5%." This experiment reruns exactly that comparison.
"""

from __future__ import annotations

from repro.evalx.experiments.common import BENCHMARKS, effective_tasks
from repro.evalx.parallel import Cell, is_failure
from repro.evalx.report import format_percent, render_table
from repro.evalx.result import ExperimentResult
from repro.predictors.exit_predictors import PathExitPredictor
from repro.predictors.folding import DolcSpec
from repro.predictors.ideal import (
    IdealGlobalPredictor,
    IdealPerTaskPredictor,
)
from repro.sim.functional import simulate_exit_prediction
from repro.synth.workloads import load_workload

_DEFAULT_TASKS = 200_000
_SPEC = "7-4-9-9(3)"
_DEPTH = 7


def _cell(name: str, tasks: int) -> dict[str, float]:
    """Real PATH vs ideal GLOBAL/PER miss rates for one benchmark."""
    workload = load_workload(name, n_tasks=tasks)
    return {
        "real_path": simulate_exit_prediction(
            workload, PathExitPredictor(DolcSpec.parse(_SPEC))
        ).miss_rate,
        "ideal_global": simulate_exit_prediction(
            workload, IdealGlobalPredictor(_DEPTH)
        ).miss_rate,
        "ideal_per": simulate_exit_prediction(
            workload, IdealPerTaskPredictor(_DEPTH)
        ).miss_rate,
    }


def cells(n_tasks: int | None = None, quick: bool = False) -> list[Cell]:
    tasks = effective_tasks(n_tasks, quick, _DEFAULT_TASKS)
    return [
        Cell(
            label=name,
            fn=_cell,
            kwargs={"name": name, "tasks": tasks},
            workload=(name, tasks),
        )
        for name in BENCHMARKS
    ]


def combine(
    cells: list[Cell],
    results: list[dict[str, float]],
    n_tasks: int | None = None,
    quick: bool = False,
) -> ExperimentResult:
    rows = []
    data: dict[str, dict[str, float]] = {}
    for cell, point in zip(cells, results):
        name = cell.label
        if is_failure(point):  # keep-going gap: a "-" row
            rows.append([name, "-", "-", "-", "-", "-"])
            continue
        real_path = point["real_path"]
        ideal_global = point["ideal_global"]
        ideal_per = point["ideal_per"]
        data[name] = point
        rows.append(
            [
                name,
                format_percent(real_path),
                format_percent(ideal_global),
                format_percent(ideal_per),
                "yes" if real_path <= ideal_global else "no",
                "yes" if real_path <= ideal_per else "no",
            ]
        )
    text = render_table(
        ["Benchmark", f"real PATH {_SPEC}", "ideal GLOBAL d7",
         "ideal PER d7", "beats GLOBAL?", "beats PER?"],
        rows,
        title="real 8KB PATH vs ideal exit-history schemes (§6.3)",
    )
    return ExperimentResult(
        experiment_id="ext_dominance",
        title="Real PATH vs ideal GLOBAL/PER (§6.3 claim)",
        text=text,
        data=data,
    )
