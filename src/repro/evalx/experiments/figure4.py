"""Figure 4: types of exit instructions, static and dynamic."""

from __future__ import annotations

from repro.evalx.experiments.common import BENCHMARKS, effective_tasks
from repro.evalx.report import format_percent, render_table
from repro.evalx.result import ExperimentResult
from repro.synth.profiles import get_profile
from repro.synth.stats_view import EXIT_TYPES, compute_stats
from repro.synth.workloads import load_workload


def run(n_tasks: int | None = None, quick: bool = False) -> ExperimentResult:
    """Reproduce Figure 4: exit mix by control-flow type.

    gcc and xlisp carry a substantial indirect-branch/indirect-call share —
    the property that motivates the CTTB (§5.3).
    """
    rows = []
    data: dict[str, dict[str, dict[str, float]]] = {}
    for name in BENCHMARKS:
        workload = load_workload(
            name,
            n_tasks=effective_tasks(
                n_tasks, quick, get_profile(name).default_dynamic_tasks
            ),
        )
        stats = compute_stats(workload)
        views = {
            "static": stats.static_types,
            "dynamic": stats.dynamic_types,
        }
        data[name] = views
        for kind, dist in views.items():
            rows.append(
                [name, kind]
                + [format_percent(dist[str(t)], 1) for t in EXIT_TYPES]
            )
    text = render_table(
        ["Benchmark", "View", "branch", "call", "return",
         "ind.branch", "ind.call"],
        rows,
    )
    return ExperimentResult(
        experiment_id="figure4",
        title="Types of exit instructions",
        text=text,
        data=data,
    )
