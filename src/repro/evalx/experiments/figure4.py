"""Figure 4: types of exit instructions, static and dynamic.

Reproduces Figure 4: exit mix by control-flow type. gcc and xlisp carry
a substantial indirect-branch/indirect-call share — the property that
motivates the CTTB (§5.3).

One cell per benchmark; see :mod:`repro.evalx.parallel`.
"""

from __future__ import annotations

from repro.evalx.experiments.common import BENCHMARKS, effective_tasks
from repro.evalx.parallel import Cell, is_failure
from repro.evalx.report import format_percent, render_table
from repro.evalx.result import ExperimentResult
from repro.synth.profiles import get_profile
from repro.synth.stats_view import EXIT_TYPES, compute_stats
from repro.synth.workloads import load_workload


def _cell(name: str, tasks: int) -> dict[str, dict[str, float]]:
    """Static and dynamic exit-type distributions for one benchmark."""
    workload = load_workload(name, n_tasks=tasks)
    stats = compute_stats(workload)
    return {
        "static": dict(stats.static_types),
        "dynamic": dict(stats.dynamic_types),
    }


def cells(n_tasks: int | None = None, quick: bool = False) -> list[Cell]:
    out = []
    for name in BENCHMARKS:
        tasks = effective_tasks(
            n_tasks, quick, get_profile(name).default_dynamic_tasks
        )
        out.append(
            Cell(
                label=name,
                fn=_cell,
                kwargs={"name": name, "tasks": tasks},
                workload=(name, tasks),
            )
        )
    return out


def combine(
    cells: list[Cell],
    results: list[dict[str, dict[str, float]]],
    n_tasks: int | None = None,
    quick: bool = False,
) -> ExperimentResult:
    rows = []
    data: dict[str, dict[str, dict[str, float]]] = {}
    for cell, views in zip(cells, results):
        if is_failure(views):  # keep-going gap
            rows.append([cell.label, "-"] + ["-"] * len(EXIT_TYPES))
            continue
        data[cell.label] = views
        for kind, dist in views.items():
            rows.append(
                [cell.label, kind]
                + [format_percent(dist[str(t)], 1) for t in EXIT_TYPES]
            )
    text = render_table(
        ["Benchmark", "View", "branch", "call", "return",
         "ind.branch", "ind.call"],
        rows,
    )
    return ExperimentResult(
        experiment_id="figure4",
        title="Types of exit instructions",
        text=text,
        data=data,
    )
