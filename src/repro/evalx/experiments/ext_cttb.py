"""Extension: CTTB storage sweep for indirect-target prediction.

§6.4.1 notes that a CTTB used only for indirect targets "can be
considerably smaller since fewer exits compete for the table storage".
This experiment sweeps the CTTB index width from 7 to 14 bits on the two
indirect-heavy benchmarks, locating the capacity knee.
"""

from __future__ import annotations

from repro.evalx.experiments.common import effective_tasks
from repro.evalx.parallel import Cell, is_failure
from repro.evalx.report import render_series
from repro.evalx.result import ExperimentResult
from repro.predictors.folding import DolcSpec
from repro.predictors.ttb import CorrelatedTaskTargetBuffer
from repro.sim.functional import simulate_indirect_target_prediction
from repro.synth.workloads import load_workload

_BENCHMARKS = ("gcc", "xlisp")
_DEFAULT_TASKS = 200_000

#: Depth-5 configurations, one per index width 7..14. The intermediate
#: index is 4*O + L + C folded F ways.
_CONFIGS_BY_BITS = {
    7: "5-3-4-5(3)",
    8: "5-4-4-4(3)",
    9: "5-4-5-6(3)",
    10: "5-5-5-5(3)",
    11: "5-5-6-7(3)",
    12: "5-6-6-6(3)",
    13: "5-6-7-8(3)",
    14: "5-7-7-7(3)",
}


def _widths(quick: bool) -> tuple[int, ...]:
    if quick:
        return tuple(sorted(_CONFIGS_BY_BITS))[::2]
    return tuple(sorted(_CONFIGS_BY_BITS))


def _cell(name: str, tasks: int, widths: tuple[int, ...]) -> dict:
    """Sweep one benchmark over the CTTB widths; also report storage."""
    workload = load_workload(name, n_tasks=tasks)
    rates = []
    kbytes = []
    for width in widths:
        spec = DolcSpec.parse(_CONFIGS_BY_BITS[width])
        assert spec.index_bits == width
        buffer = CorrelatedTaskTargetBuffer(spec)
        stats = simulate_indirect_target_prediction(workload, buffer)
        rates.append(stats.miss_rate)
        kbytes.append(stats.storage_bits / 8 / 1024)
    return {"rates": rates, "kbytes": kbytes}


def cells(n_tasks: int | None = None, quick: bool = False) -> list[Cell]:
    widths = _widths(quick)
    tasks = effective_tasks(n_tasks, quick, _DEFAULT_TASKS)
    return [
        Cell(
            label=name,
            fn=_cell,
            kwargs={"name": name, "tasks": tasks, "widths": widths},
            workload=(name, tasks),
        )
        for name in _BENCHMARKS
    ]


def combine(
    cells: list[Cell],
    results: list[dict],
    n_tasks: int | None = None,
    quick: bool = False,
) -> ExperimentResult:
    widths = _widths(quick)
    series: dict[str, list[float | None]] = {}
    kbytes: list[float] = []
    for cell, point in zip(cells, results):
        if is_failure(point):  # keep-going gap for this benchmark
            series[cell.label] = [None] * len(widths)
            continue
        series[cell.label] = point["rates"]
        if not kbytes:  # storage depends only on the spec, not the trace
            kbytes = point["kbytes"]
    size_note = (
        f" ({kbytes[0]:.1f}KB .. {kbytes[-1]:.1f}KB)" if kbytes else ""
    )
    text = render_series(
        "index bits", list(widths), series,
        title="indirect-target miss vs CTTB size" + size_note,
    )
    return ExperimentResult(
        experiment_id="ext_cttb",
        title="CTTB storage sweep for indirect targets",
        text=text,
        data={
            "widths": list(widths),
            "kbytes": kbytes,
            "series": series,
        },
    )
