"""Extension: CTTB storage sweep for indirect-target prediction.

§6.4.1 notes that a CTTB used only for indirect targets "can be
considerably smaller since fewer exits compete for the table storage".
This experiment sweeps the CTTB index width from 7 to 14 bits on the two
indirect-heavy benchmarks, locating the capacity knee.
"""

from __future__ import annotations

from repro.evalx.experiments.common import effective_tasks
from repro.evalx.report import render_series
from repro.evalx.result import ExperimentResult
from repro.predictors.folding import DolcSpec
from repro.predictors.ttb import CorrelatedTaskTargetBuffer
from repro.sim.functional import simulate_indirect_target_prediction
from repro.synth.workloads import load_workload

_BENCHMARKS = ("gcc", "xlisp")
_DEFAULT_TASKS = 200_000

#: Depth-5 configurations, one per index width 7..14. The intermediate
#: index is 4*O + L + C folded F ways.
_CONFIGS_BY_BITS = {
    7: "5-3-4-5(3)",
    8: "5-4-4-4(3)",
    9: "5-4-5-6(3)",
    10: "5-5-5-5(3)",
    11: "5-5-6-7(3)",
    12: "5-6-6-6(3)",
    13: "5-6-7-8(3)",
    14: "5-7-7-7(3)",
}


def run(n_tasks: int | None = None, quick: bool = False) -> ExperimentResult:
    """Sweep CTTB size; report indirect-target miss rate per width."""
    widths = (
        tuple(sorted(_CONFIGS_BY_BITS))[::2] if quick
        else tuple(sorted(_CONFIGS_BY_BITS))
    )
    series: dict[str, list[float]] = {}
    kbytes = []
    for name in _BENCHMARKS:
        workload = load_workload(
            name, n_tasks=effective_tasks(n_tasks, quick, _DEFAULT_TASKS)
        )
        rates = []
        for width in widths:
            spec = DolcSpec.parse(_CONFIGS_BY_BITS[width])
            assert spec.index_bits == width
            buffer = CorrelatedTaskTargetBuffer(spec)
            stats = simulate_indirect_target_prediction(workload, buffer)
            rates.append(stats.miss_rate)
            if name == _BENCHMARKS[0]:
                kbytes.append(stats.storage_bits / 8 / 1024)
        series[name] = rates
    text = render_series(
        "index bits", list(widths), series,
        title=(
            "indirect-target miss vs CTTB size "
            f"({kbytes[0]:.1f}KB .. {kbytes[-1]:.1f}KB)"
        ),
    )
    return ExperimentResult(
        experiment_id="ext_cttb",
        title="CTTB storage sweep for indirect targets",
        text=text,
        data={
            "widths": list(widths),
            "kbytes": kbytes,
            "series": series,
        },
    )
