"""Table 3: CTTB-only vs exit predictor with RAS and a small CTTB.

Reproduces Table 3: next-task *address* miss rates, depth-7 history. The
CTTB-only method predicts without header information at ~4x the storage;
the paper reports it 4-54% worse, mostly because returns lose the RAS.

One cell per benchmark, covering both prediction methods.
"""

from __future__ import annotations

from repro.evalx.experiments.common import (
    BENCHMARKS,
    CTTB_ONLY_SPEC,
    SMALL_CTTB_SPEC,
    effective_tasks,
)
from repro.evalx.parallel import Cell, is_failure
from repro.evalx.report import format_percent, render_table
from repro.evalx.result import ExperimentResult
from repro.predictors.exit_predictors import PathExitPredictor
from repro.predictors.folding import DolcSpec
from repro.predictors.ras import ReturnAddressStack
from repro.predictors.task_predictor import (
    CttbOnlyTaskPredictor,
    HeaderTaskPredictor,
)
from repro.predictors.ttb import CorrelatedTaskTargetBuffer
from repro.sim.functional import simulate_task_prediction
from repro.synth.profiles import get_profile
from repro.synth.workloads import load_workload

#: Depth-7, 14-bit exit predictor — the paper's "14 bits of index" (8KB).
_EXIT_SPEC = "7-4-9-9(3)"

#: Paper's Table 3 miss rates (percent) for side-by-side reporting.
PAPER_CTTB_ONLY = {
    "gcc": 10.5, "compress": 19.8, "espresso": 2.6, "sc": 5.3, "xlisp": 7.9,
}
PAPER_EXIT_PREDICTOR = {
    "gcc": 6.8, "compress": 19.1, "espresso": 2.5, "sc": 4.6, "xlisp": 5.6,
}


def _cell(name: str, tasks: int) -> dict[str, float]:
    """Both Table 3 prediction methods on one benchmark."""
    workload = load_workload(name, n_tasks=tasks)
    program = workload.compiled.program

    cttb_only = CttbOnlyTaskPredictor(
        CorrelatedTaskTargetBuffer(DolcSpec.parse(CTTB_ONLY_SPEC))
    )
    only_stats = simulate_task_prediction(workload, cttb_only)

    header_predictor = HeaderTaskPredictor(
        program=program,
        exit_predictor=PathExitPredictor(DolcSpec.parse(_EXIT_SPEC)),
        cttb=CorrelatedTaskTargetBuffer(DolcSpec.parse(SMALL_CTTB_SPEC)),
        ras=ReturnAddressStack(depth=32),
    )
    header_stats = simulate_task_prediction(workload, header_predictor)

    return {
        "cttb_only_miss": only_stats.address_miss_rate,
        "exit_predictor_miss": header_stats.address_miss_rate,
        "cttb_only_kbytes": only_stats.storage_bits / 8 / 1024,
        "exit_predictor_kbytes": header_stats.storage_bits / 8 / 1024,
        "return_miss_cttb_only": only_stats.miss_rate_for("return"),
        "return_miss_header": header_stats.miss_rate_for("return"),
    }


def cells(n_tasks: int | None = None, quick: bool = False) -> list[Cell]:
    out = []
    for name in BENCHMARKS:
        tasks = effective_tasks(
            n_tasks, quick, get_profile(name).default_dynamic_tasks
        )
        out.append(
            Cell(
                label=name,
                fn=_cell,
                kwargs={"name": name, "tasks": tasks},
                workload=(name, tasks),
            )
        )
    return out


def combine(
    cells: list[Cell],
    results: list[dict[str, float]],
    n_tasks: int | None = None,
    quick: bool = False,
) -> ExperimentResult:
    rows = []
    data: dict[str, dict[str, float]] = {}
    for cell, payload in zip(cells, results):
        name = cell.label
        if is_failure(payload):  # keep-going gap: paper columns only
            rows.append(
                [name, "-", f"{PAPER_CTTB_ONLY[name]:.1f}%",
                 "-", f"{PAPER_EXIT_PREDICTOR[name]:.1f}%"]
            )
            continue
        data[name] = payload
        rows.append(
            [
                name,
                format_percent(payload["cttb_only_miss"], 1),
                f"{PAPER_CTTB_ONLY[name]:.1f}%",
                format_percent(payload["exit_predictor_miss"], 1),
                f"{PAPER_EXIT_PREDICTOR[name]:.1f}%",
            ]
        )
    # Storage is config-determined, identical across benchmarks — quote
    # it from any benchmark that succeeded.
    sized = next(iter(data.values()), None)
    storage_note = "" if sized is None else (
        f"\nCTTB-only storage: {sized['cttb_only_kbytes']:.0f}KB; "
        "exit predictor + RAS + small CTTB: "
        f"{sized['exit_predictor_kbytes']:.0f}KB"
    )
    text = render_table(
        ["Benchmark", "CTTB-only", "(paper)",
         "Exit pred.+RAS+CTTB", "(paper)"],
        rows,
    ) + storage_note
    return ExperimentResult(
        experiment_id="table3",
        title="Miss rates: CTTB-only vs exit predictor with RAS & CTTB",
        text=text,
        data=data,
    )
