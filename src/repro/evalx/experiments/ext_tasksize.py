"""Extension: how task granularity affects predictability.

§3.2 notes that "the characteristics of tasks are dependent on the
compiler heuristics used to break a program into tasks" and that accuracy
is therefore compiler-dependent. This experiment turns that remark into a
measurement: re-partition the same source program with different task-size
caps and measure how exit-prediction accuracy and task shape respond.
Bigger tasks bury more control flow inside each task (fewer, harder
exits); smaller tasks expose more, easier exits but shrink the effective
instruction window.
"""

from __future__ import annotations

from dataclasses import replace

from repro.compiler import PartitionConfig, compile_program
from repro.evalx.experiments.common import effective_tasks
from repro.evalx.parallel import Cell, is_failure
from repro.evalx.report import render_table
from repro.evalx.result import ExperimentResult
from repro.predictors.exit_predictors import PathExitPredictor
from repro.predictors.folding import DolcSpec
from repro.sim.functional import simulate_exit_prediction
from repro.synth.executor import TraceExecutor
from repro.synth.generator import SyntheticProgramGenerator
from repro.synth.profiles import get_profile
from repro.synth.workloads import Workload

_BENCHMARKS = ("xlisp", "gcc")
_QUICK_BENCHMARKS = ("xlisp",)
_BLOCK_CAPS = (2, 4, 8, 16)
_DEFAULT_TASKS = 120_000
_SPEC = "6-5-8-9(3)"


def _build_workload(name: str, cap: int, n_tasks: int) -> Workload:
    profile = replace(get_profile(name), max_blocks_per_task=cap)
    program_cfg = SyntheticProgramGenerator(profile).generate()
    compiled = compile_program(
        program_cfg,
        name=f"{name}-cap{cap}",
        config=PartitionConfig(max_blocks_per_task=cap),
    )
    trace = TraceExecutor(
        compiled, seed=profile.seed, phase_period=profile.phase_period
    ).run(n_tasks)
    return Workload(profile=profile, compiled=compiled, trace=trace)


def _cell(name: str, cap: int, tasks: int) -> dict[str, float]:
    """Shape and accuracy of one benchmark re-partitioned at one cap."""
    workload = _build_workload(name, cap, tasks)
    stats = simulate_exit_prediction(
        workload, PathExitPredictor(DolcSpec.parse(_SPEC))
    )
    return {
        "static_tasks": float(
            workload.compiled.program.static_task_count
        ),
        "insns_per_task": (
            workload.trace.total_instructions() / len(workload.trace)
        ),
        "miss_rate": stats.miss_rate,
    }


def cells(n_tasks: int | None = None, quick: bool = False) -> list[Cell]:
    benchmarks = _QUICK_BENCHMARKS if quick else _BENCHMARKS
    tasks = effective_tasks(n_tasks, quick, _DEFAULT_TASKS)
    # The trace is rebuilt per (benchmark, cap) pair, so no prewarm hint.
    return [
        Cell(
            label=f"{name}:cap{cap}",
            fn=_cell,
            kwargs={"name": name, "cap": cap, "tasks": tasks},
        )
        for name in benchmarks
        for cap in _BLOCK_CAPS
    ]


def combine(
    cells: list[Cell],
    results: list[dict[str, float]],
    n_tasks: int | None = None,
    quick: bool = False,
) -> ExperimentResult:
    rows = []
    data: dict[str, dict[int, dict[str, float]]] = {}
    for cell, point in zip(cells, results):
        name = cell.kwargs["name"]
        cap = cell.kwargs["cap"]
        data.setdefault(name, {})
        if is_failure(point):  # keep-going gap: a "-" row
            rows.append([name, cap, "-", "-", "-"])
            continue
        data[name][cap] = point
        rows.append(
            [
                name,
                cap,
                int(point["static_tasks"]),
                f"{point['insns_per_task']:.1f}",
                f"{point['miss_rate'] * 100:.2f}%",
            ]
        )
    text = render_table(
        ["Benchmark", "max blocks/task", "static tasks",
         "insns/dyn task", "exit miss"],
        rows,
        title=f"task granularity sweep, PATH {_SPEC}",
    )
    return ExperimentResult(
        experiment_id="ext_tasksize",
        title="Task granularity vs predictability (§3.2)",
        text=text,
        data=data,
    )
