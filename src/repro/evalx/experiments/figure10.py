"""Figure 10: real 8KB path-based exit predictors vs the ideal.

Reproduces Figure 10: real implementations track the ideal closely. Each
D-O-L-C(F) point uses a 14-bit index — an 8KB PHT at 4 bits per LEH-2
entry, as in the paper. The ideal curve uses the same history depth with
no aliasing. gcc deviates most: its working set outgrows the table (see
Figure 11).

One cell per (benchmark, DOLC configuration).
"""

from __future__ import annotations

from repro.evalx.experiments.common import (
    BENCHMARKS,
    EXIT_DOLC_CONFIGS,
    effective_tasks,
    parse_configs,
)
from repro.evalx.parallel import Cell, is_failure
from repro.evalx.report import render_series
from repro.evalx.result import ExperimentResult
from repro.predictors.exit_predictors import PathExitPredictor
from repro.predictors.folding import DolcSpec
from repro.predictors.ideal import IdealPathPredictor
from repro.sim.functional import simulate_exit_prediction
from repro.synth.workloads import load_workload

_DEFAULT_TASKS = 200_000


def _sweep_specs(quick: bool) -> list[DolcSpec]:
    specs = parse_configs(EXIT_DOLC_CONFIGS)
    return specs[::2] if quick else specs


def _cell(name: str, spec_text: str, tasks: int) -> dict[str, float]:
    """Real and ideal miss rates for one DOLC point on one benchmark."""
    workload = load_workload(name, n_tasks=tasks)
    spec = DolcSpec.parse(spec_text)
    return {
        "real": simulate_exit_prediction(
            workload, PathExitPredictor(spec)
        ).miss_rate,
        "ideal": simulate_exit_prediction(
            workload, IdealPathPredictor(spec.depth)
        ).miss_rate,
    }


def cells(
    n_tasks: int | None = None,
    quick: bool = False,
    benchmarks: tuple[str, ...] = BENCHMARKS,
) -> list[Cell]:
    tasks = effective_tasks(n_tasks, quick, _DEFAULT_TASKS)
    return [
        Cell(
            label=f"{name}:{spec}",
            fn=_cell,
            kwargs={"name": name, "spec_text": str(spec), "tasks": tasks},
            workload=(name, tasks),
        )
        for name in benchmarks
        for spec in _sweep_specs(quick)
    ]


def combine(
    cells: list[Cell],
    results: list[dict[str, float]],
    n_tasks: int | None = None,
    quick: bool = False,
    benchmarks: tuple[str, ...] = BENCHMARKS,
) -> ExperimentResult:
    labels = [str(spec) for spec in _sweep_specs(quick)]
    curves: dict[str, dict[str, list[float]]] = {
        name: {"ideal": [], "real": []} for name in benchmarks
    }
    for cell, point in zip(cells, results):
        series = curves[cell.kwargs["name"]]
        if is_failure(point):  # keep-going gap at this config
            point = {"ideal": None, "real": None}
        series["ideal"].append(point["ideal"])
        series["real"].append(point["real"])
    sections = []
    data: dict[str, dict] = {"configs": labels}
    for name in benchmarks:
        data[name] = curves[name]
        sections.append(
            render_series(
                "DOLC (F)", labels, curves[name], title=name.upper()
            )
        )
    return ExperimentResult(
        experiment_id="figure10",
        title="Real (8KB) path predictors vs ideal",
        text="\n\n".join(sections),
        data=data,
    )
