"""Figure 10: real 8KB path-based exit predictors vs the ideal."""

from __future__ import annotations

from repro.evalx.experiments.common import (
    BENCHMARKS,
    EXIT_DOLC_CONFIGS,
    effective_tasks,
    parse_configs,
)
from repro.evalx.report import render_series
from repro.evalx.result import ExperimentResult
from repro.predictors.exit_predictors import PathExitPredictor
from repro.predictors.ideal import IdealPathPredictor
from repro.sim.functional import simulate_exit_prediction
from repro.synth.workloads import load_workload

_DEFAULT_TASKS = 200_000


def run(
    n_tasks: int | None = None,
    quick: bool = False,
    benchmarks: tuple[str, ...] = BENCHMARKS,
) -> ExperimentResult:
    """Reproduce Figure 10: real implementations track the ideal closely.

    Each D-O-L-C(F) point uses a 14-bit index — an 8KB PHT at 4 bits per
    LEH-2 entry, as in the paper. The ideal curve uses the same history
    depth with no aliasing. gcc deviates most: its working set outgrows the
    table (see Figure 11).
    """
    specs = parse_configs(EXIT_DOLC_CONFIGS)
    if quick:
        specs = specs[::2]
    labels = [str(spec) for spec in specs]
    sections = []
    data: dict[str, dict] = {"configs": labels}
    for name in benchmarks:
        workload = load_workload(
            name, n_tasks=effective_tasks(n_tasks, quick, _DEFAULT_TASKS)
        )
        real = []
        ideal = []
        for spec in specs:
            real.append(
                simulate_exit_prediction(
                    workload, PathExitPredictor(spec)
                ).miss_rate
            )
            ideal.append(
                simulate_exit_prediction(
                    workload, IdealPathPredictor(spec.depth)
                ).miss_rate
            )
        series = {"ideal": ideal, "real": real}
        data[name] = series
        sections.append(
            render_series("DOLC (F)", labels, series, title=name.upper())
        )
    return ExperimentResult(
        experiment_id="figure10",
        title="Real (8KB) path predictors vs ideal",
        text="\n\n".join(sections),
        data=data,
    )
