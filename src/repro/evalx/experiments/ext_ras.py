"""Extension: return-address-stack depth sweep.

§4.2 cites that "a reasonably deep RAS is nearly perfect in predicting
return addresses". This experiment quantifies "reasonably deep" for each
workload: return-address miss rate of the full header-based task predictor
as the RAS shrinks from 64 entries to 1.
"""

from __future__ import annotations

from repro.evalx.experiments.common import (
    BENCHMARKS,
    SMALL_CTTB_SPEC,
    effective_tasks,
)
from repro.evalx.parallel import Cell, is_failure
from repro.evalx.report import render_series
from repro.evalx.result import ExperimentResult
from repro.predictors.exit_predictors import PathExitPredictor
from repro.predictors.folding import DolcSpec
from repro.predictors.ras import ReturnAddressStack
from repro.predictors.task_predictor import HeaderTaskPredictor
from repro.predictors.ttb import CorrelatedTaskTargetBuffer
from repro.sim.functional import simulate_task_prediction
from repro.synth.profiles import get_profile
from repro.synth.workloads import load_workload

_DEPTHS = (1, 2, 4, 8, 16, 32, 64)
_QUICK_DEPTHS = (1, 4, 16, 64)
_EXIT_SPEC = "6-5-8-9(3)"


def _cell(name: str, tasks: int, depths: tuple[int, ...]) -> list[float]:
    """Return-address miss rate of one benchmark at each RAS depth."""
    workload = load_workload(name, n_tasks=tasks)
    rates = []
    for depth in depths:
        predictor = HeaderTaskPredictor(
            program=workload.compiled.program,
            exit_predictor=PathExitPredictor(
                DolcSpec.parse(_EXIT_SPEC)
            ),
            cttb=CorrelatedTaskTargetBuffer(
                DolcSpec.parse(SMALL_CTTB_SPEC)
            ),
            ras=ReturnAddressStack(depth=depth),
        )
        stats = simulate_task_prediction(workload, predictor)
        rates.append(stats.miss_rate_for("return"))
    return rates


def cells(n_tasks: int | None = None, quick: bool = False) -> list[Cell]:
    depths = _QUICK_DEPTHS if quick else _DEPTHS
    out = []
    for name in BENCHMARKS:
        tasks = effective_tasks(
            n_tasks, quick,
            min(150_000, get_profile(name).default_dynamic_tasks),
        )
        out.append(
            Cell(
                label=name,
                fn=_cell,
                kwargs={"name": name, "tasks": tasks, "depths": depths},
                workload=(name, tasks),
            )
        )
    return out


def combine(
    cells: list[Cell],
    results: list[list[float]],
    n_tasks: int | None = None,
    quick: bool = False,
) -> ExperimentResult:
    depths = _QUICK_DEPTHS if quick else _DEPTHS
    series: dict[str, list[float | None]] = {}
    for cell, rates in zip(cells, results):
        series[cell.label] = (
            [None] * len(depths) if is_failure(rates) else rates
        )
    text = render_series(
        "RAS depth", list(depths), series,
        title="return-address miss rate vs RAS depth",
    )
    return ExperimentResult(
        experiment_id="ext_ras",
        title="Return address stack depth sweep",
        text=text,
        data={"depths": list(depths), "series": series},
    )
