"""Figure 3: number of exits per task, static and dynamic.

Reproduces Figure 3: the distribution of exits per task (1-4 targets).
The paper's stacked bars become one static and one dynamic row per
benchmark plus the cross-benchmark average. The encouraging property the
paper highlights — "most tasks have fewer than four exits, many having
only a single exit" — is asserted by the test suite.

One cell per benchmark; see :mod:`repro.evalx.parallel`.
"""

from __future__ import annotations

from repro.evalx.experiments.common import BENCHMARKS, effective_tasks
from repro.evalx.parallel import Cell, is_failure
from repro.evalx.report import format_percent, render_table
from repro.evalx.result import ExperimentResult
from repro.isa.controlflow import MAX_EXITS_PER_TASK
from repro.synth.profiles import get_profile
from repro.synth.stats_view import compute_stats
from repro.synth.workloads import load_workload

_ARITIES = tuple(range(1, MAX_EXITS_PER_TASK + 1))


def _cell(name: str, tasks: int) -> dict[str, dict[int, float]]:
    """Static and dynamic exit-arity distributions for one benchmark."""
    workload = load_workload(name, n_tasks=tasks)
    stats = compute_stats(workload)
    return {
        "static": dict(stats.static_arity),
        "dynamic": dict(stats.dynamic_arity),
    }


def cells(n_tasks: int | None = None, quick: bool = False) -> list[Cell]:
    out = []
    for name in BENCHMARKS:
        tasks = effective_tasks(
            n_tasks, quick, get_profile(name).default_dynamic_tasks
        )
        out.append(
            Cell(
                label=name,
                fn=_cell,
                kwargs={"name": name, "tasks": tasks},
                workload=(name, tasks),
            )
        )
    return out


def combine(
    cells: list[Cell],
    results: list[dict[str, dict[int, float]]],
    n_tasks: int | None = None,
    quick: bool = False,
) -> ExperimentResult:
    rows = []
    data: dict[str, dict[str, dict[int, float]]] = {}
    sums = {
        "static": dict.fromkeys(_ARITIES, 0.0),
        "dynamic": dict.fromkeys(_ARITIES, 0.0),
    }
    n_ok = 0
    for cell, views in zip(cells, results):
        if is_failure(views):  # keep-going gap
            rows.append([cell.label, "-"] + ["-"] * len(_ARITIES))
            continue
        n_ok += 1
        data[cell.label] = views
        for kind, dist in views.items():
            rows.append(
                [cell.label, kind]
                + [format_percent(dist[k], 1) for k in _ARITIES]
            )
            for k in _ARITIES:
                sums[kind][k] += dist[k]
    for kind in ("static", "dynamic"):
        if n_ok == 0:
            break  # every cell failed; no average to report
        average = {k: sums[kind][k] / n_ok for k in _ARITIES}
        data.setdefault("average", {})[kind] = average
        rows.append(
            ["average", kind]
            + [format_percent(average[k], 1) for k in _ARITIES]
        )
    text = render_table(
        ["Benchmark", "View", "1 target", "2", "3", "4"], rows
    )
    return ExperimentResult(
        experiment_id="figure3",
        title="Number of exits per task",
        text=text,
        data=data,
    )
