"""Figure 12: real 8KB CTTBs vs ideal for indirect-target prediction."""

from __future__ import annotations

from repro.evalx.experiments.common import (
    CTTB_DOLC_CONFIGS,
    effective_tasks,
    parse_configs,
)
from repro.evalx.report import render_series
from repro.evalx.result import ExperimentResult
from repro.predictors.ttb import (
    CorrelatedTaskTargetBuffer,
    IdealCorrelatedTargetBuffer,
)
from repro.sim.functional import simulate_indirect_target_prediction
from repro.synth.workloads import load_workload

_BENCHMARKS = ("gcc", "xlisp")
_DEFAULT_TASKS = 250_000


def run(n_tasks: int | None = None, quick: bool = False) -> ExperimentResult:
    """Reproduce Figure 12: real CTTB implementations vs the ideal.

    Each point uses an 11-bit index (8KB at 4 bytes per entry, as in the
    paper). xlisp implementations track the ideal closely; gcc diverges
    because its path working set exceeds the table.
    """
    specs = parse_configs(CTTB_DOLC_CONFIGS)
    if quick:
        specs = specs[::2]
    labels = [str(spec) for spec in specs]
    sections = []
    data: dict[str, dict] = {"configs": labels}
    for name in _BENCHMARKS:
        workload = load_workload(
            name, n_tasks=effective_tasks(n_tasks, quick, _DEFAULT_TASKS)
        )
        real = []
        ideal = []
        for spec in specs:
            real.append(
                simulate_indirect_target_prediction(
                    workload, CorrelatedTaskTargetBuffer(spec)
                ).miss_rate
            )
            ideal.append(
                simulate_indirect_target_prediction(
                    workload, IdealCorrelatedTargetBuffer(spec.depth)
                ).miss_rate
            )
        series = {"ideal": ideal, "real": real}
        data[name] = series
        sections.append(
            render_series("DOLC (F)", labels, series, title=name.upper())
        )
    return ExperimentResult(
        experiment_id="figure12",
        title="Real (8KB) CTTB vs ideal for address prediction",
        text="\n\n".join(sections),
        data=data,
    )
