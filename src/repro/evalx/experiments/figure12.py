"""Figure 12: real 8KB CTTBs vs ideal for indirect-target prediction.

Reproduces Figure 12: real CTTB implementations vs the ideal. Each point
uses an 11-bit index (8KB at 4 bytes per entry, as in the paper). xlisp
implementations track the ideal closely; gcc diverges because its path
working set exceeds the table.

One cell per (benchmark, DOLC configuration).
"""

from __future__ import annotations

from repro.evalx.experiments.common import (
    CTTB_DOLC_CONFIGS,
    effective_tasks,
    parse_configs,
)
from repro.evalx.parallel import Cell, is_failure
from repro.evalx.report import render_series
from repro.evalx.result import ExperimentResult
from repro.predictors.folding import DolcSpec
from repro.predictors.ttb import (
    CorrelatedTaskTargetBuffer,
    IdealCorrelatedTargetBuffer,
)
from repro.sim.functional import simulate_indirect_target_prediction
from repro.synth.workloads import load_workload

_BENCHMARKS = ("gcc", "xlisp")
_DEFAULT_TASKS = 250_000


def _sweep_specs(quick: bool) -> list[DolcSpec]:
    specs = parse_configs(CTTB_DOLC_CONFIGS)
    return specs[::2] if quick else specs


def _cell(name: str, spec_text: str, tasks: int) -> dict[str, float]:
    """Real and ideal CTTB miss rates at one DOLC point."""
    workload = load_workload(name, n_tasks=tasks)
    spec = DolcSpec.parse(spec_text)
    return {
        "real": simulate_indirect_target_prediction(
            workload, CorrelatedTaskTargetBuffer(spec)
        ).miss_rate,
        "ideal": simulate_indirect_target_prediction(
            workload, IdealCorrelatedTargetBuffer(spec.depth)
        ).miss_rate,
    }


def cells(n_tasks: int | None = None, quick: bool = False) -> list[Cell]:
    tasks = effective_tasks(n_tasks, quick, _DEFAULT_TASKS)
    return [
        Cell(
            label=f"{name}:{spec}",
            fn=_cell,
            kwargs={"name": name, "spec_text": str(spec), "tasks": tasks},
            workload=(name, tasks),
        )
        for name in _BENCHMARKS
        for spec in _sweep_specs(quick)
    ]


def combine(
    cells: list[Cell],
    results: list[dict[str, float]],
    n_tasks: int | None = None,
    quick: bool = False,
) -> ExperimentResult:
    labels = [str(spec) for spec in _sweep_specs(quick)]
    curves: dict[str, dict[str, list[float]]] = {
        name: {"ideal": [], "real": []} for name in _BENCHMARKS
    }
    for cell, point in zip(cells, results):
        series = curves[cell.kwargs["name"]]
        if is_failure(point):  # keep-going gap at this config
            point = {"ideal": None, "real": None}
        series["ideal"].append(point["ideal"])
        series["real"].append(point["real"])
    sections = []
    data: dict[str, dict] = {"configs": labels}
    for name in _BENCHMARKS:
        data[name] = curves[name]
        sections.append(
            render_series(
                "DOLC (F)", labels, curves[name], title=name.upper()
            )
        )
    return ExperimentResult(
        experiment_id="figure12",
        title="Real (8KB) CTTB vs ideal for address prediction",
        text="\n\n".join(sections),
        data=data,
    )
