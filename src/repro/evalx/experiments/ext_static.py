"""Extension: profile-guided static hints vs dynamic prediction.

The cheapest conceivable task predictor is a compile-time hint: profile the
program, write each task's most frequent exit into its header. This
experiment measures how much of the paper's dynamic machinery that baseline
captures — i.e. how much of each benchmark's predictability is *bias*
(static gets it) vs *history* (only the dynamic schemes get it).

Training and evaluation are disjoint trace halves, so the static hints are
honestly profiled rather than fitted to the evaluation stream.
"""

from __future__ import annotations

from repro.evalx.experiments.common import BENCHMARKS, effective_tasks
from repro.evalx.parallel import Cell, is_failure
from repro.evalx.report import format_percent, render_table
from repro.evalx.result import ExperimentResult
from repro.predictors.exit_predictors import (
    PathExitPredictor,
    SimpleExitPredictor,
)
from repro.predictors.folding import DolcSpec
from repro.predictors.static_hints import StaticHintExitPredictor
from repro.synth.workloads import load_workload

_DEFAULT_TASKS = 200_000
_SPEC = "6-5-8-9(3)"


def _cell(name: str, tasks: int) -> dict[str, float]:
    """Static vs Simple vs PATH second-half miss rates for one benchmark."""
    workload = load_workload(name, n_tasks=tasks)
    half = len(workload.trace) // 2
    static = StaticHintExitPredictor.profile_from_trace(
        workload.trace, training_fraction=0.5
    )
    return {
        "static": _second_half_miss(workload, static, half),
        "simple": _second_half_miss(
            workload, SimpleExitPredictor(index_bits=14), half
        ),
        "path": _second_half_miss(
            workload, PathExitPredictor(DolcSpec.parse(_SPEC)), half
        ),
    }


def cells(n_tasks: int | None = None, quick: bool = False) -> list[Cell]:
    tasks = effective_tasks(n_tasks, quick, _DEFAULT_TASKS)
    return [
        Cell(
            label=name,
            fn=_cell,
            kwargs={"name": name, "tasks": tasks},
            workload=(name, tasks),
        )
        for name in BENCHMARKS
    ]


def combine(
    cells: list[Cell],
    results: list[dict[str, float]],
    n_tasks: int | None = None,
    quick: bool = False,
) -> ExperimentResult:
    rows = []
    data: dict[str, dict[str, float]] = {}
    for cell, point in zip(cells, results):
        name = cell.label
        if is_failure(point):  # keep-going gap: a "-" row
            rows.append([name, "-", "-", "-"])
            continue
        data[name] = point
        rows.append(
            [
                name,
                format_percent(point["static"]),
                format_percent(point["simple"]),
                format_percent(point["path"]),
            ]
        )
    text = render_table(
        ["Benchmark", "static hints", "Simple (dynamic)", f"PATH {_SPEC}"],
        rows,
        title="second-half exit miss rate (hints profiled on first half)",
    )
    return ExperimentResult(
        experiment_id="ext_static",
        title="Profile-guided static hints vs dynamic prediction",
        text=text,
        data=data,
    )


def _second_half_miss(workload, predictor, half: int) -> float:
    """Miss rate over records [half:), running the predictor from cold."""
    n_exits_of = workload.exit_counts()
    task_addrs = workload.trace.task_addr.tolist()
    actual_exits = workload.trace.exit_index.tolist()
    misses = 0
    trials = 0
    for i, (addr, actual) in enumerate(zip(task_addrs, actual_exits)):
        n_exits = n_exits_of[addr]
        predicted = predictor.predict(addr, n_exits)
        if i >= half:
            trials += 1
            if predicted != actual:
                misses += 1
        predictor.update(addr, n_exits, actual)
    return misses / trials if trials else 0.0
