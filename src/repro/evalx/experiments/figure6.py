"""Figure 6: comparison of prediction automata on gcc."""

from __future__ import annotations

from repro.evalx.experiments.common import effective_tasks
from repro.evalx.report import render_series
from repro.evalx.result import ExperimentResult
from repro.predictors.automata import AUTOMATON_SPECS, make_automaton_factory
from repro.predictors.ideal import IdealPathPredictor
from repro.sim.functional import simulate_exit_prediction
from repro.synth.workloads import load_workload
from repro.utils.rng import DeterministicRng

_DEFAULT_TASKS = 150_000
_DEPTHS = tuple(range(0, 10))
_QUICK_DEPTHS = (0, 2, 4, 7)


def run(n_tasks: int | None = None, quick: bool = False) -> ExperimentResult:
    """Reproduce Figure 6: seven automata under an aggressive path predictor.

    The paper's finding — three performance tiers (LE worst; 2-bit VC and
    LEH-1 indistinguishable; 3-bit VC and LEH-2 indistinguishable and best)
    — is asserted by the test suite on this experiment's data.
    """
    workload = load_workload(
        "gcc", n_tasks=effective_tasks(n_tasks, quick, _DEFAULT_TASKS)
    )
    depths = _QUICK_DEPTHS if quick else _DEPTHS
    series: dict[str, list[float]] = {spec: [] for spec in AUTOMATON_SPECS}
    for depth in depths:
        for spec in AUTOMATON_SPECS:
            rng = DeterministicRng(depth).fork(spec)
            predictor = IdealPathPredictor(
                depth, automaton=make_automaton_factory(spec, rng)
            )
            stats = simulate_exit_prediction(workload, predictor)
            series[spec].append(stats.miss_rate)
    text = render_series(
        "depth", list(depths), series,
        title="gcc miss rate by automaton (ideal path-based history)",
    )
    return ExperimentResult(
        experiment_id="figure6",
        title="Comparison of prediction automata (gcc)",
        text=text,
        data={"depths": list(depths), "series": series},
    )
