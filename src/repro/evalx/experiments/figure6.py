"""Figure 6: comparison of prediction automata on gcc.

Reproduces Figure 6: seven automata under an aggressive path predictor.
The paper's finding — three performance tiers (LE worst; 2-bit VC and
LEH-1 indistinguishable; 3-bit VC and LEH-2 indistinguishable and best)
— is asserted by the test suite on this experiment's data.

One cell per (depth, automaton); each cell reconstructs the same
``DeterministicRng(depth).fork(spec)`` stream the serial sweep used, so
randomised automata stay bit-identical under any worker count.
"""

from __future__ import annotations

from repro.evalx.experiments.common import effective_tasks
from repro.evalx.parallel import Cell, is_failure
from repro.evalx.report import render_series
from repro.evalx.result import ExperimentResult
from repro.predictors.automata import AUTOMATON_SPECS, make_automaton_factory
from repro.predictors.ideal import IdealPathPredictor
from repro.sim.functional import simulate_exit_prediction
from repro.synth.workloads import load_workload
from repro.utils.rng import DeterministicRng

_DEFAULT_TASKS = 150_000
_DEPTHS = tuple(range(0, 10))
_QUICK_DEPTHS = (0, 2, 4, 7)


def _cell(depth: int, spec: str, tasks: int) -> float:
    """Miss rate of one automaton at one history depth on gcc."""
    workload = load_workload("gcc", n_tasks=tasks)
    rng = DeterministicRng(depth).fork(spec)
    predictor = IdealPathPredictor(
        depth, automaton=make_automaton_factory(spec, rng)
    )
    return simulate_exit_prediction(workload, predictor).miss_rate


def cells(n_tasks: int | None = None, quick: bool = False) -> list[Cell]:
    tasks = effective_tasks(n_tasks, quick, _DEFAULT_TASKS)
    depths = _QUICK_DEPTHS if quick else _DEPTHS
    return [
        Cell(
            label=f"d{depth}:{spec}",
            fn=_cell,
            kwargs={"depth": depth, "spec": spec, "tasks": tasks},
            workload=("gcc", tasks),
        )
        for depth in depths
        for spec in AUTOMATON_SPECS
    ]


def combine(
    cells: list[Cell],
    results: list[float],
    n_tasks: int | None = None,
    quick: bool = False,
) -> ExperimentResult:
    depths = list(_QUICK_DEPTHS if quick else _DEPTHS)
    series: dict[str, list[float]] = {spec: [] for spec in AUTOMATON_SPECS}
    for cell, miss_rate in zip(cells, results):
        # A keep-going gap renders as "-" at its depth; alignment of the
        # other depths is preserved by appending a placeholder.
        series[cell.kwargs["spec"]].append(
            None if is_failure(miss_rate) else miss_rate
        )
    text = render_series(
        "depth", depths, series,
        title="gcc miss rate by automaton (ideal path-based history)",
    )
    return ExperimentResult(
        experiment_id="figure6",
        title="Comparison of prediction automata (gcc)",
        text=text,
        data={"depths": depths, "series": series},
    )
