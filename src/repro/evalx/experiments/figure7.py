"""Figure 7: ideal (alias-free) GLOBAL vs PATH vs PER, per benchmark.

Reproduces Figure 7: miss rate vs history depth for ideal predictors.
Expected shapes (asserted by tests): PATH beats GLOBAL on every
benchmark; PATH beats PER on four of five; sc is the exception where
per-task cyclic behaviour lets PER win.

One cell per (benchmark, scheme), each sweeping the full depth axis.
"""

from __future__ import annotations

from repro.evalx.experiments.common import BENCHMARKS, effective_tasks
from repro.evalx.parallel import Cell, is_failure
from repro.evalx.report import render_series
from repro.evalx.result import ExperimentResult
from repro.predictors.ideal import (
    IdealGlobalPredictor,
    IdealPathPredictor,
    IdealPerTaskPredictor,
)
from repro.sim.functional import simulate_exit_prediction
from repro.synth.workloads import load_workload

_DEFAULT_TASKS = 200_000
_DEPTHS = tuple(range(0, 8))
_QUICK_DEPTHS = (0, 2, 4, 7)

_SCHEMES = {
    "global": IdealGlobalPredictor,
    "path": IdealPathPredictor,
    "per": IdealPerTaskPredictor,
}


def _cell(
    name: str, scheme: str, depths: tuple[int, ...], tasks: int
) -> list[float]:
    """Miss rate of one ideal scheme across the depth sweep."""
    workload = load_workload(name, n_tasks=tasks)
    cls = _SCHEMES[scheme]
    return [
        simulate_exit_prediction(workload, cls(depth)).miss_rate
        for depth in depths
    ]


def cells(
    n_tasks: int | None = None,
    quick: bool = False,
    benchmarks: tuple[str, ...] = BENCHMARKS,
) -> list[Cell]:
    tasks = effective_tasks(n_tasks, quick, _DEFAULT_TASKS)
    depths = _QUICK_DEPTHS if quick else _DEPTHS
    return [
        Cell(
            label=f"{name}:{scheme}",
            fn=_cell,
            kwargs={
                "name": name,
                "scheme": scheme,
                "depths": depths,
                "tasks": tasks,
            },
            workload=(name, tasks),
        )
        for name in benchmarks
        for scheme in _SCHEMES
    ]


def combine(
    cells: list[Cell],
    results: list[list[float]],
    n_tasks: int | None = None,
    quick: bool = False,
    benchmarks: tuple[str, ...] = BENCHMARKS,
) -> ExperimentResult:
    depths = list(_QUICK_DEPTHS if quick else _DEPTHS)
    sections = []
    data: dict[str, dict] = {"depths": depths}
    for cell, curve in zip(cells, results):
        name = cell.kwargs["name"]
        if is_failure(curve):  # keep-going gap: a "-" column
            curve = [None] * len(depths)
        data.setdefault(name, {})[cell.kwargs["scheme"]] = curve
    for name in benchmarks:
        series = data[name]
        sections.append(
            render_series("depth", depths, series, title=name.upper())
        )
    return ExperimentResult(
        experiment_id="figure7",
        title="Performance of ideal (alias-free) prediction",
        text="\n\n".join(sections),
        data=data,
    )
