"""Figure 7: ideal (alias-free) GLOBAL vs PATH vs PER, per benchmark."""

from __future__ import annotations

from repro.evalx.experiments.common import BENCHMARKS, effective_tasks
from repro.evalx.report import render_series
from repro.evalx.result import ExperimentResult
from repro.predictors.ideal import (
    IdealGlobalPredictor,
    IdealPathPredictor,
    IdealPerTaskPredictor,
)
from repro.sim.functional import simulate_exit_prediction
from repro.synth.workloads import load_workload

_DEFAULT_TASKS = 200_000
_DEPTHS = tuple(range(0, 8))
_QUICK_DEPTHS = (0, 2, 4, 7)

_SCHEMES = (
    ("global", IdealGlobalPredictor),
    ("path", IdealPathPredictor),
    ("per", IdealPerTaskPredictor),
)


def run(
    n_tasks: int | None = None,
    quick: bool = False,
    benchmarks: tuple[str, ...] = BENCHMARKS,
) -> ExperimentResult:
    """Reproduce Figure 7: miss rate vs history depth for ideal predictors.

    Expected shapes (asserted by tests): PATH beats GLOBAL on every
    benchmark; PATH beats PER on four of five; sc is the exception where
    per-task cyclic behaviour lets PER win.
    """
    depths = _QUICK_DEPTHS if quick else _DEPTHS
    sections = []
    data: dict[str, dict] = {"depths": list(depths)}
    for name in benchmarks:
        workload = load_workload(
            name, n_tasks=effective_tasks(n_tasks, quick, _DEFAULT_TASKS)
        )
        series: dict[str, list[float]] = {}
        for label, cls in _SCHEMES:
            series[label] = [
                simulate_exit_prediction(workload, cls(depth)).miss_rate
                for depth in depths
            ]
        data[name] = series
        sections.append(
            render_series("depth", list(depths), series, title=name.upper())
        )
    return ExperimentResult(
        experiment_id="figure7",
        title="Performance of ideal (alias-free) prediction",
        text="\n\n".join(sections),
        data=data,
    )
