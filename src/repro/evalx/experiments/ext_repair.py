"""Extension: cost of the paper's perfect-history-repair idealisation.

The paper's functional simulator assumes mispredict recovery "completely
repairs data structures modified after a misprediction" (§3.1). This
experiment measures what that assumption is worth: the depth-7 path
predictor runs with speculative history and wrong-path pollution under
three repair policies — perfect checkpoint restore, squash-to-empty, and
no repair at all.
"""

from __future__ import annotations

from repro.evalx.experiments.common import effective_tasks
from repro.evalx.parallel import Cell, is_failure
from repro.evalx.report import render_series
from repro.evalx.result import ExperimentResult
from repro.predictors.exit_predictors import PathExitPredictor
from repro.predictors.folding import DolcSpec
from repro.predictors.speculative import (
    REPAIR_POLICIES,
    SpeculativePathPredictor,
)
from repro.sim.functional import simulate_exit_prediction
from repro.sim.relaxed import simulate_speculative_exit_prediction
from repro.synth.workloads import load_workload

_BENCHMARKS = ("gcc", "xlisp", "espresso")
_DEFAULT_TASKS = 150_000
_SPEC = "6-5-8-9(3)"

_IDEALISED = "idealised (paper §3.1)"


def _cell(name: str, tasks: int) -> dict[str, float]:
    """Miss rate per repair policy (plus the idealised bound) for one
    benchmark."""
    spec = DolcSpec.parse(_SPEC)
    workload = load_workload(name, n_tasks=tasks)
    point = {
        _IDEALISED: simulate_exit_prediction(
            workload, PathExitPredictor(spec)
        ).miss_rate
    }
    for policy in REPAIR_POLICIES:
        point[f"speculative/{policy}"] = (
            simulate_speculative_exit_prediction(
                workload,
                SpeculativePathPredictor(spec, repair=policy),
                wrong_path_depth=4,
            ).miss_rate
        )
    return point


def cells(n_tasks: int | None = None, quick: bool = False) -> list[Cell]:
    tasks = effective_tasks(n_tasks, quick, _DEFAULT_TASKS)
    return [
        Cell(
            label=name,
            fn=_cell,
            kwargs={"name": name, "tasks": tasks},
            workload=(name, tasks),
        )
        for name in _BENCHMARKS
    ]


def combine(
    cells: list[Cell],
    results: list[dict[str, float]],
    n_tasks: int | None = None,
    quick: bool = False,
) -> ExperimentResult:
    series: dict[str, list[float | None]] = {
        _IDEALISED: [],
        **{f"speculative/{policy}": [] for policy in REPAIR_POLICIES},
    }
    for point in results:
        for key in series:
            series[key].append(
                None if is_failure(point) else point[key]
            )
    text = render_series(
        "benchmark", list(_BENCHMARKS), series,
        title=f"exit miss rate, {_SPEC}, wrong-path depth 4",
    )
    return ExperimentResult(
        experiment_id="ext_repair",
        title="History repair policies under wrong-path pollution",
        text=text,
        data={"benchmarks": list(_BENCHMARKS), "series": series},
    )
