"""Extension: seed robustness of the headline orderings.

The synthetic workloads are calibrated under one generator seed per
benchmark; a fair question is whether the reproduced orderings (PATH <=
GLOBAL etc.) are properties of the workload *structure* or accidents of
the particular seed. This experiment regenerates each benchmark under
alternative seeds (same profile, different random draws) and re-measures
the depth-7 ideal schemes.
"""

from __future__ import annotations

from dataclasses import replace

from repro.compiler import PartitionConfig, compile_program
from repro.evalx.experiments.common import BENCHMARKS, effective_tasks
from repro.evalx.parallel import Cell, is_failure
from repro.evalx.report import format_percent, render_table
from repro.evalx.result import ExperimentResult
from repro.predictors.ideal import (
    IdealGlobalPredictor,
    IdealPathPredictor,
    IdealPerTaskPredictor,
)
from repro.sim.functional import simulate_exit_prediction
from repro.synth.executor import TraceExecutor
from repro.synth.generator import SyntheticProgramGenerator
from repro.synth.profiles import get_profile
from repro.synth.workloads import Workload

_DEFAULT_TASKS = 120_000
_N_SEEDS = 3
_DEPTH = 7


def _workload_for_seed(name: str, seed_offset: int, n_tasks: int) -> Workload:
    profile = get_profile(name)
    if seed_offset:
        profile = replace(profile, seed=profile.seed + seed_offset)
    program_cfg = SyntheticProgramGenerator(profile).generate()
    compiled = compile_program(
        program_cfg,
        name=f"{name}+{seed_offset}",
        config=PartitionConfig(
            max_blocks_per_task=profile.max_blocks_per_task
        ),
    )
    trace = TraceExecutor(
        compiled, seed=profile.seed, phase_period=profile.phase_period
    ).run(n_tasks)
    return Workload(profile=profile, compiled=compiled, trace=trace)


def _cell(name: str, offset: int, tasks: int) -> dict[str, float]:
    """Ideal depth-7 scheme miss rates for one (benchmark, seed) pair."""
    workload = _workload_for_seed(name, offset, tasks)
    return {
        "global": simulate_exit_prediction(
            workload, IdealGlobalPredictor(_DEPTH)
        ).miss_rate,
        "path": simulate_exit_prediction(
            workload, IdealPathPredictor(_DEPTH)
        ).miss_rate,
        "per": simulate_exit_prediction(
            workload, IdealPerTaskPredictor(_DEPTH)
        ).miss_rate,
    }


def cells(n_tasks: int | None = None, quick: bool = False) -> list[Cell]:
    tasks = effective_tasks(n_tasks, quick, _DEFAULT_TASKS)
    seed_offsets = (0, 1) if quick else tuple(range(_N_SEEDS))
    # Each cell regenerates its own workload, so no prewarm hint.
    return [
        Cell(
            label=f"{name}+{offset}",
            fn=_cell,
            kwargs={"name": name, "offset": offset, "tasks": tasks},
        )
        for name in BENCHMARKS
        for offset in seed_offsets
    ]


def combine(
    cells: list[Cell],
    results: list[dict[str, float]],
    n_tasks: int | None = None,
    quick: bool = False,
) -> ExperimentResult:
    rows = []
    data: dict[str, dict[int, dict[str, float]]] = {}
    for cell, point in zip(cells, results):
        name = cell.kwargs["name"]
        offset = cell.kwargs["offset"]
        data.setdefault(name, {})
        if is_failure(point):  # keep-going gap: a "-" row
            rows.append([name, offset, "-", "-", "-", "-"])
            continue
        data[name][offset] = point
        rows.append(
            [
                name,
                offset,
                format_percent(point["global"]),
                format_percent(point["path"]),
                format_percent(point["per"]),
                "yes" if point["path"] <= point["global"] + 0.003
                else "no",
            ]
        )
    text = render_table(
        ["Benchmark", "seed+", "GLOBAL d7", "PATH d7", "PER d7",
         "PATH<=GLOBAL?"],
        rows,
        title="seed robustness of the ideal-scheme orderings",
    )
    return ExperimentResult(
        experiment_id="ext_seeds",
        title="Seed robustness of headline orderings",
        text=text,
        data=data,
    )
