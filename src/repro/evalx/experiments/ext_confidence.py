"""Extension: confidence estimation for task predictions.

Applies the authors' MICRO-96 resetting-counter confidence estimator to
the depth-7 path predictor: how much of the prediction stream can be
flagged high-confidence, how accurate the flagged predictions are, and how
well low confidence predicts an actual miss (the signal a Multiscalar
sequencer would use to stop speculating deeper).
"""

from __future__ import annotations

from repro.evalx.experiments.common import BENCHMARKS, effective_tasks
from repro.evalx.parallel import Cell, is_failure
from repro.evalx.report import format_percent, render_table
from repro.evalx.result import ExperimentResult
from repro.predictors.confidence import (
    ResettingConfidenceEstimator,
    simulate_confidence,
)
from repro.predictors.exit_predictors import PathExitPredictor
from repro.predictors.folding import DolcSpec
from repro.synth.workloads import load_workload

_DEFAULT_TASKS = 200_000
_SPEC = "6-5-8-9(3)"
_THRESHOLD = 4


def _cell(name: str, tasks: int) -> dict[str, float]:
    """Coverage / high-confidence accuracy / PVN for one benchmark."""
    spec = DolcSpec.parse(_SPEC)
    workload = load_workload(name, n_tasks=tasks)
    stats = simulate_confidence(
        workload,
        PathExitPredictor(spec),
        ResettingConfidenceEstimator(spec, threshold=_THRESHOLD),
    )
    return {
        "coverage": stats.coverage,
        "high_accuracy": stats.high_confidence_accuracy,
        "pvn": stats.pvn,
    }


def cells(n_tasks: int | None = None, quick: bool = False) -> list[Cell]:
    tasks = effective_tasks(n_tasks, quick, _DEFAULT_TASKS)
    return [
        Cell(
            label=name,
            fn=_cell,
            kwargs={"name": name, "tasks": tasks},
            workload=(name, tasks),
        )
        for name in BENCHMARKS
    ]


def combine(
    cells: list[Cell],
    results: list[dict[str, float]],
    n_tasks: int | None = None,
    quick: bool = False,
) -> ExperimentResult:
    rows = []
    data: dict[str, dict[str, float]] = {}
    for cell, point in zip(cells, results):
        name = cell.label
        if is_failure(point):  # keep-going gap: a "-" row
            rows.append([name, "-", "-", "-"])
            continue
        data[name] = point
        rows.append(
            [
                name,
                format_percent(point["coverage"], 1),
                format_percent(point["high_accuracy"], 1),
                format_percent(point["pvn"], 1),
            ]
        )
    text = render_table(
        ["Benchmark", "coverage", "high-conf accuracy", "PVN"],
        rows,
        title=(
            f"resetting-counter estimator, threshold {_THRESHOLD}, "
            f"over {_SPEC} path prediction"
        ),
    )
    return ExperimentResult(
        experiment_id="ext_confidence",
        title="Confidence estimation for task predictions",
        text=text,
        data=data,
    )
