"""Table 2: benchmarks, inputs, and task-level characteristics."""

from __future__ import annotations

from repro.evalx.experiments.common import BENCHMARKS, effective_tasks
from repro.evalx.report import render_table
from repro.evalx.result import ExperimentResult
from repro.synth.profiles import get_profile
from repro.synth.workloads import load_workload


def run(n_tasks: int | None = None, quick: bool = False) -> ExperimentResult:
    """Reproduce Table 2: static / dynamic / distinct task counts.

    Paper columns are shown next to measured ones. Dynamic task counts are
    scaled down by design (see DESIGN.md); static and distinct counts are
    the calibration targets.
    """
    rows = []
    data: dict[str, dict[str, int]] = {}
    for name in BENCHMARKS:
        profile = get_profile(name)
        tasks = effective_tasks(n_tasks, quick, profile.default_dynamic_tasks)
        workload = load_workload(name, n_tasks=tasks)
        static = workload.compiled.program.static_task_count
        dynamic = workload.trace.dynamic_task_count
        seen = workload.trace.distinct_tasks_seen()
        paper = profile.paper
        rows.append(
            [
                name,
                paper.input_name,
                static,
                paper.static_tasks,
                dynamic,
                paper.dynamic_tasks,
                seen,
                paper.distinct_tasks_seen,
            ]
        )
        data[name] = {
            "static_tasks": static,
            "dynamic_tasks": dynamic,
            "distinct_tasks_seen": seen,
        }
    text = render_table(
        [
            "Benchmark", "Input",
            "Static", "(paper)",
            "Dynamic", "(paper)",
            "Distinct", "(paper)",
        ],
        rows,
    )
    return ExperimentResult(
        experiment_id="table2",
        title="Benchmarks, inputs and task information",
        text=text,
        data=data,
    )
