"""Table 2: benchmarks, inputs, and task-level characteristics.

Reproduces Table 2: static / dynamic / distinct task counts, with the
paper's columns shown next to measured ones. Dynamic task counts are
scaled down by design (see DESIGN.md); static and distinct counts are
the calibration targets.

One cell per benchmark; see :mod:`repro.evalx.parallel` for the
cells/combine execution model.
"""

from __future__ import annotations

from repro.evalx.experiments.common import BENCHMARKS, effective_tasks
from repro.evalx.parallel import Cell, is_failure
from repro.evalx.report import render_table
from repro.evalx.result import ExperimentResult
from repro.synth.profiles import get_profile
from repro.synth.workloads import load_workload


def _cell(name: str, tasks: int) -> dict[str, int]:
    """Task counts for one benchmark."""
    workload = load_workload(name, n_tasks=tasks)
    return {
        "static_tasks": workload.compiled.program.static_task_count,
        "dynamic_tasks": workload.trace.dynamic_task_count,
        "distinct_tasks_seen": workload.trace.distinct_tasks_seen(),
    }


def cells(n_tasks: int | None = None, quick: bool = False) -> list[Cell]:
    out = []
    for name in BENCHMARKS:
        tasks = effective_tasks(
            n_tasks, quick, get_profile(name).default_dynamic_tasks
        )
        out.append(
            Cell(
                label=name,
                fn=_cell,
                kwargs={"name": name, "tasks": tasks},
                workload=(name, tasks),
            )
        )
    return out


def combine(
    cells: list[Cell],
    results: list[dict[str, int]],
    n_tasks: int | None = None,
    quick: bool = False,
) -> ExperimentResult:
    rows = []
    data: dict[str, dict[str, int]] = {}
    for cell, counts in zip(cells, results):
        name = cell.label
        paper = get_profile(name).paper
        if is_failure(counts):  # keep-going gap: paper columns only
            rows.append(
                [name, paper.input_name,
                 "-", paper.static_tasks,
                 "-", paper.dynamic_tasks,
                 "-", paper.distinct_tasks_seen]
            )
            continue
        data[name] = counts
        rows.append(
            [
                name,
                paper.input_name,
                counts["static_tasks"],
                paper.static_tasks,
                counts["dynamic_tasks"],
                paper.dynamic_tasks,
                counts["distinct_tasks_seen"],
                paper.distinct_tasks_seen,
            ]
        )
    text = render_table(
        [
            "Benchmark", "Input",
            "Static", "(paper)",
            "Dynamic", "(paper)",
            "Distinct", "(paper)",
        ],
        rows,
    )
    return ExperimentResult(
        experiment_id="table2",
        title="Benchmarks, inputs and task information",
        text=text,
        data=data,
    )
