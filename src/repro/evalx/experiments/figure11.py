"""Figure 11: predictor states touched, ideal vs real (gcc, espresso)."""

from __future__ import annotations

from repro.evalx.experiments.common import (
    EXIT_DOLC_CONFIGS,
    effective_tasks,
    parse_configs,
)
from repro.evalx.report import render_series
from repro.evalx.result import ExperimentResult
from repro.predictors.exit_predictors import PathExitPredictor
from repro.predictors.ideal import IdealPathPredictor
from repro.sim.functional import simulate_exit_prediction
from repro.synth.workloads import load_workload

_BENCHMARKS = ("gcc", "espresso")
_DEFAULT_TASKS = 200_000


def run(n_tasks: int | None = None, quick: bool = False) -> ExperimentResult:
    """Reproduce Figure 11: how many PHT states each depth touches.

    The ideal predictor's state count grows without bound with depth; the
    real table saturates at its capacity. gcc's ideal count racing past the
    16K-entry table is why its real accuracy diverges from ideal in
    Figure 10.
    """
    specs = parse_configs(EXIT_DOLC_CONFIGS)
    if quick:
        specs = specs[::2]
    depths = [spec.depth for spec in specs]
    sections = []
    data: dict[str, dict] = {"depths": depths}
    for name in _BENCHMARKS:
        workload = load_workload(
            name, n_tasks=effective_tasks(n_tasks, quick, _DEFAULT_TASKS)
        )
        ideal = []
        real = []
        for spec in specs:
            ideal.append(
                float(
                    simulate_exit_prediction(
                        workload, IdealPathPredictor(spec.depth)
                    ).states_touched
                )
            )
            real.append(
                float(
                    simulate_exit_prediction(
                        workload, PathExitPredictor(spec)
                    ).states_touched
                )
            )
        series = {"ideal": ideal, "real": real}
        data[name] = {"ideal": ideal, "real": real}
        sections.append(
            render_series(
                "depth", depths, series,
                title=name.upper(), as_percent=False,
            )
        )
    return ExperimentResult(
        experiment_id="figure11",
        title="States touched in the PHT (ideal vs real)",
        text="\n\n".join(sections),
        data=data,
    )
