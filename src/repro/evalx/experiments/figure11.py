"""Figure 11: predictor states touched, ideal vs real (gcc, espresso).

Reproduces Figure 11: how many PHT states each depth touches. The ideal
predictor's state count grows without bound with depth; the real table
saturates at its capacity. gcc's ideal count racing past the 16K-entry
table is why its real accuracy diverges from ideal in Figure 10.

One cell per (benchmark, DOLC configuration).
"""

from __future__ import annotations

from repro.evalx.experiments.common import (
    EXIT_DOLC_CONFIGS,
    effective_tasks,
    parse_configs,
)
from repro.evalx.parallel import Cell, is_failure
from repro.evalx.report import render_series
from repro.evalx.result import ExperimentResult
from repro.predictors.exit_predictors import PathExitPredictor
from repro.predictors.folding import DolcSpec
from repro.predictors.ideal import IdealPathPredictor
from repro.sim.functional import simulate_exit_prediction
from repro.synth.workloads import load_workload

_BENCHMARKS = ("gcc", "espresso")
_DEFAULT_TASKS = 200_000


def _sweep_specs(quick: bool) -> list[DolcSpec]:
    specs = parse_configs(EXIT_DOLC_CONFIGS)
    return specs[::2] if quick else specs


def _cell(name: str, spec_text: str, tasks: int) -> dict[str, float]:
    """Ideal and real PHT states touched at one DOLC point."""
    workload = load_workload(name, n_tasks=tasks)
    spec = DolcSpec.parse(spec_text)
    return {
        "ideal": float(
            simulate_exit_prediction(
                workload, IdealPathPredictor(spec.depth)
            ).states_touched
        ),
        "real": float(
            simulate_exit_prediction(
                workload, PathExitPredictor(spec)
            ).states_touched
        ),
    }


def cells(n_tasks: int | None = None, quick: bool = False) -> list[Cell]:
    tasks = effective_tasks(n_tasks, quick, _DEFAULT_TASKS)
    return [
        Cell(
            label=f"{name}:{spec}",
            fn=_cell,
            kwargs={"name": name, "spec_text": str(spec), "tasks": tasks},
            workload=(name, tasks),
        )
        for name in _BENCHMARKS
        for spec in _sweep_specs(quick)
    ]


def combine(
    cells: list[Cell],
    results: list[dict[str, float]],
    n_tasks: int | None = None,
    quick: bool = False,
) -> ExperimentResult:
    depths = [spec.depth for spec in _sweep_specs(quick)]
    curves: dict[str, dict[str, list[float]]] = {
        name: {"ideal": [], "real": []} for name in _BENCHMARKS
    }
    for cell, point in zip(cells, results):
        series = curves[cell.kwargs["name"]]
        if is_failure(point):  # keep-going gap at this config
            point = {"ideal": None, "real": None}
        series["ideal"].append(point["ideal"])
        series["real"].append(point["real"])
    sections = []
    data: dict[str, dict] = {"depths": depths}
    for name in _BENCHMARKS:
        data[name] = curves[name]
        sections.append(
            render_series(
                "depth", depths, curves[name],
                title=name.upper(), as_percent=False,
            )
        )
    return ExperimentResult(
        experiment_id="figure11",
        title="States touched in the PHT (ideal vs real)",
        text="\n\n".join(sections),
        data=data,
    )
