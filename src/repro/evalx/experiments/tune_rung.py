"""One rung of the design-space autotuner (see :mod:`repro.evalx.tune`).

A rung evaluates a population of :class:`~repro.predictors.design_space.
TuneConfig` candidates on a set of benchmarks at one trace length. It is
an ordinary cells/combine driver — one cell per (benchmark, candidate) —
so every engine facility (``--jobs``, retries, checkpoint resume, fault
injection, the sweep service) applies to a rung with no new machinery.
The tune driver passes ``configs=`` explicitly; the default population
is empty, because a rung without a population is not an experiment.

Cell kwargs are canonical scalars (benchmark name, config key, trace
length), so every rung cell is content-addressable: a resumed search
re-requests the same fingerprints and the checkpoint store serves the
completed ones byte-identically.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.evalx.experiments.common import BENCHMARKS, effective_tasks
from repro.evalx.parallel import Cell, is_failure
from repro.evalx.report import format_percent, render_table
from repro.evalx.result import ExperimentResult
from repro.predictors.design_space import TuneConfig
from repro.sim.functional import simulate_exit_prediction
from repro.synth.workloads import load_workload

_DEFAULT_TASKS = 40_000


def _cell(name: str, config: str, tasks: int) -> dict[str, float]:
    """Miss rate and storage cost for one candidate on one benchmark."""
    tune = TuneConfig.parse(config)
    workload = load_workload(name, n_tasks=tasks)
    stats = simulate_exit_prediction(workload, tune.build_predictor())
    return {
        "miss_rate": stats.miss_rate,
        "storage_bits": tune.storage_bits(),
    }


def cells(
    n_tasks: int | None = None,
    quick: bool = False,
    configs: Sequence[str] = (),
    benchmarks: Sequence[str] = BENCHMARKS,
) -> list[Cell]:
    tasks = effective_tasks(n_tasks, quick, _DEFAULT_TASKS)
    return [
        Cell(
            label=f"{name}:{config}",
            fn=_cell,
            kwargs={"name": name, "config": config, "tasks": tasks},
            workload=(name, tasks),
        )
        for config in configs
        for name in benchmarks
    ]


def combine(
    cells: list[Cell],
    results: list,
    n_tasks: int | None = None,
    quick: bool = False,
    configs: Sequence[str] = (),
    benchmarks: Sequence[str] = BENCHMARKS,
) -> ExperimentResult:
    tasks = effective_tasks(n_tasks, quick, _DEFAULT_TASKS)
    grid: dict[str, dict[str, float | None]] = {
        config: {} for config in configs
    }
    for cell, payload in zip(cells, results):
        name = cell.kwargs["name"]
        config = cell.kwargs["config"]
        if is_failure(payload):  # keep-going gap at this candidate
            grid[config][name] = None
        else:
            grid[config][name] = payload["miss_rate"]
    rows = []
    for config in configs:
        storage_kb = TuneConfig.parse(config).storage_bits() / 8192
        misses = [grid[config].get(name) for name in benchmarks]
        row: list[object] = [config, f"{storage_kb:.1f}KB"]
        row.extend(
            "-" if m is None else format_percent(m) for m in misses
        )
        known = [m for m in misses if m is not None]
        row.append(
            format_percent(sum(known) / len(known)) if known else "-"
        )
        rows.append(row)
    text = render_table(
        ["Config", "Storage", *[b.upper() for b in benchmarks], "Mean"],
        rows,
        title=f"Rung at {tasks} tasks ({len(list(configs))} candidates)",
    )
    return ExperimentResult(
        experiment_id="tune_rung",
        title="Design-space rung: exit miss rate per candidate",
        text=text,
        data={
            "configs": list(configs),
            "benchmarks": list(benchmarks),
            "tasks": tasks,
            "grid": grid,
        },
    )
