"""One-screen reproduction scoreboard.

Runs the key qualitative checks from every experiment in quick mode and
prints a verdict per paper finding — the same checks the test suite
enforces, packaged as a report for a reader who wants the headline answer
to "did the paper reproduce?" without reading raw tables.
"""

from __future__ import annotations

from repro.evalx.report import render_table
from repro.evalx.result import ExperimentResult


def _verdict(ok: bool) -> str:
    return "REPRODUCED" if ok else "DEVIATION"


def run(
    n_tasks: int | None = None,
    quick: bool = True,
    jobs: int | None = None,
) -> ExperimentResult:
    """Run the scoreboard (always quick-mode unless n_tasks overrides).

    ``jobs`` is forwarded to each underlying paper experiment.
    """
    from repro.evalx.registry import run_experiment

    rows: list[list[str]] = []
    data: dict[str, bool] = {}

    def record(finding: str, source: str, ok: bool) -> None:
        rows.append([finding, source, _verdict(ok)])
        data[finding] = ok

    # gcc's working set unfolds slowly, so checks that depend on its size
    # need longer traces than quick mode's default.
    deep_tasks = n_tasks if n_tasks is not None else 120_000

    table2 = run_experiment(
        "table2", n_tasks=deep_tasks, quick=quick, jobs=jobs
    )
    seen = {
        name: row["distinct_tasks_seen"] for name, row in table2.data.items()
    }
    record(
        "gcc has the largest task working set, compress the smallest",
        "Table 2",
        seen["gcc"] == max(seen.values())
        and seen["compress"] == min(seen.values()),
    )

    figure6 = run_experiment(
        "figure6", n_tasks=n_tasks, quick=quick, jobs=jobs
    )
    series = figure6.data["series"]
    record(
        "automata stratify: LE worst, LEH-2 among best",
        "Figure 6",
        series["LE"][-1] >= series["LEH-2"][-1]
        and series["LEH-2"][-1] <= series["VC2-MRU"][-1] + 0.002,
    )

    figure7 = run_experiment(
        "figure7", n_tasks=deep_tasks, quick=quick, jobs=jobs
    )
    path_beats_global = all(
        figure7.data[name]["path"][-1]
        <= figure7.data[name]["global"][-1] + 0.003
        for name in ("gcc", "espresso", "sc", "xlisp")
    )
    record("PATH beats GLOBAL on every benchmark", "Figure 7",
           path_beats_global)
    record(
        "PER beats PATH only on sc",
        "Figure 7",
        figure7.data["sc"]["per"][-1] < figure7.data["sc"]["path"][-1]
        and figure7.data["gcc"]["path"][-1]
        < figure7.data["gcc"]["per"][-1],
    )

    figure8 = run_experiment(
        "figure8", n_tasks=n_tasks, quick=quick, jobs=jobs
    )
    record(
        "CTTB strongly outperforms the plain TTB for indirect targets",
        "Figure 8",
        all(
            min(figure8.data[name]["cttb"][1:])
            < figure8.data[name]["ttb"]
            for name in ("gcc", "xlisp")
        ),
    )

    figure10 = run_experiment(
        "figure10", n_tasks=n_tasks, quick=quick, jobs=jobs
    )
    record(
        "real 8KB predictors track the alias-free ideal",
        "Figure 10",
        all(
            real <= ideal + 0.05
            for name in ("espresso", "xlisp", "sc")
            for ideal, real in zip(
                figure10.data[name]["ideal"], figure10.data[name]["real"]
            )
        ),
    )

    table3 = run_experiment(
        "table3", n_tasks=n_tasks, quick=quick, jobs=jobs
    )
    record(
        "header-based prediction beats CTTB-only at 1/4 the storage",
        "Table 3",
        all(
            row["exit_predictor_miss"] <= row["cttb_only_miss"] + 0.01
            for row in table3.data.values()
        ),
    )

    table4 = run_experiment(
        "table4", n_tasks=n_tasks, quick=quick, jobs=jobs
    )
    record(
        "better task prediction raises IPC; Perfect bounds all schemes",
        "Table 4",
        all(
            ipcs["Perfect"]
            >= max(ipcs[s] for s in ("Simple", "GLOBAL", "PER", "PATH"))
            and ipcs["PATH"] >= ipcs["Simple"] - 0.02
            for ipcs in table4.data.values()
        ),
    )

    text = render_table(["Paper finding", "Source", "Verdict"], rows)
    return ExperimentResult(
        experiment_id="summary",
        title="Reproduction scoreboard",
        text=text,
        data=data,
    )
