"""Extension: confidence-gated speculation control, measured in IPC.

Closes the loop on ``ext_confidence``: instead of only scoring the
estimator, use it — a low-confidence task prediction makes the sequencer
*wait* for resolution rather than speculate. Gating trades lost overlap on
correct-but-unconfident predictions against avoided squashes on wrong
ones.

The result is a crossover study. With the default machine (mispredicts
redirect at completion plus a small penalty), gating *loses* everywhere:
stalling costs the same overlap a squash would have cost, and it also
stalls on correct-but-unconfident predictions. Gating only pays when
recovery is expensive (e.g. a deep recovery penalty modelling state repair
cost), which the second sweep shows — the classic speculation-control
trade-off (Grunwald et al. style) reproduced at task granularity.
"""

from __future__ import annotations

from repro.evalx.experiments.common import BENCHMARKS, effective_tasks
from repro.evalx.parallel import Cell, is_failure
from repro.evalx.report import render_table
from repro.evalx.result import ExperimentResult
from repro.predictors.confidence import ResettingConfidenceEstimator
from repro.predictors.exit_predictors import PathExitPredictor
from repro.predictors.folding import DolcSpec
from repro.predictors.ras import ReturnAddressStack
from repro.predictors.task_predictor import HeaderTaskPredictor
from repro.predictors.ttb import CorrelatedTaskTargetBuffer
from repro.sim.timing import TimingConfig, simulate_timing
from repro.synth.workloads import load_workload

_DEFAULT_TASKS = 150_000
_SPEC = "6-5-8-9(3)"
_THRESHOLDS = (2, 4, 8)
#: Recovery costs swept: the default cheap redirect and an expensive one.
_PENALTIES = (3, 40)


def _predictor(workload):
    return HeaderTaskPredictor(
        program=workload.compiled.program,
        exit_predictor=PathExitPredictor(DolcSpec.parse(_SPEC)),
        cttb=CorrelatedTaskTargetBuffer(DolcSpec.parse("5-5-6-7(3)")),
        ras=ReturnAddressStack(depth=32),
    )


def _cell(
    name: str, penalty: int, tasks: int, thresholds: tuple[int, ...]
) -> dict[str, float]:
    """Ungated and per-threshold gated IPC for one (benchmark, penalty)."""
    config = TimingConfig(task_mispredict_penalty=penalty)
    workload = load_workload(name, n_tasks=tasks)
    ungated = simulate_timing(
        workload, _predictor(workload), config=config
    )
    point = {"ungated": ungated.ipc}
    for threshold in thresholds:
        gated = simulate_timing(
            workload,
            _predictor(workload),
            config=config,
            confidence_gate=ResettingConfidenceEstimator(
                DolcSpec.parse(_SPEC), threshold=threshold
            ),
        )
        point[f"gated_t{threshold}"] = gated.ipc
    return point


def cells(n_tasks: int | None = None, quick: bool = False) -> list[Cell]:
    thresholds = _THRESHOLDS[1:2] if quick else _THRESHOLDS
    tasks = effective_tasks(n_tasks, quick, _DEFAULT_TASKS)
    return [
        Cell(
            label=f"{name}:p{penalty}",
            fn=_cell,
            kwargs={
                "name": name,
                "penalty": penalty,
                "tasks": tasks,
                "thresholds": thresholds,
            },
            workload=(name, tasks),
        )
        for penalty in _PENALTIES
        for name in BENCHMARKS
    ]


def combine(
    cells: list[Cell],
    results: list[dict[str, float]],
    n_tasks: int | None = None,
    quick: bool = False,
) -> ExperimentResult:
    thresholds = _THRESHOLDS[1:2] if quick else _THRESHOLDS
    points = dict(zip((c.label for c in cells), results))
    sections = []
    data: dict[str, dict[str, dict[str, float]]] = {}
    for penalty in _PENALTIES:
        rows = []
        for name in BENCHMARKS:
            point = points[f"{name}:p{penalty}"]
            if is_failure(point):  # keep-going gap: a "-" row
                rows.append(
                    [name, "-"] + ["-"] * len(thresholds)
                )
                continue
            data.setdefault(name, {})[f"penalty{penalty}"] = point
            rows.append(
                [name, f"{point['ungated']:.2f}"]
                + [f"{point[f'gated_t{t}']:.2f}" for t in thresholds]
            )
        headers = ["Benchmark", "ungated"] + [
            f"gated t={t}" for t in thresholds
        ]
        sections.append(
            render_table(
                headers, rows,
                title=(
                    f"IPC, mispredict recovery penalty = {penalty} cycles"
                ),
            )
        )
    return ExperimentResult(
        experiment_id="ext_gating",
        title="Confidence-gated speculation control (IPC)",
        text="\n\n".join(sections),
        data=data,
    )
