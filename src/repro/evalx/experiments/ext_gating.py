"""Extension: confidence-gated speculation control, measured in IPC.

Closes the loop on ``ext_confidence``: instead of only scoring the
estimator, use it — a low-confidence task prediction makes the sequencer
*wait* for resolution rather than speculate. Gating trades lost overlap on
correct-but-unconfident predictions against avoided squashes on wrong
ones.

The result is a crossover study. With the default machine (mispredicts
redirect at completion plus a small penalty), gating *loses* everywhere:
stalling costs the same overlap a squash would have cost, and it also
stalls on correct-but-unconfident predictions. Gating only pays when
recovery is expensive (e.g. a deep recovery penalty modelling state repair
cost), which the second sweep shows — the classic speculation-control
trade-off (Grunwald et al. style) reproduced at task granularity.
"""

from __future__ import annotations

from repro.evalx.experiments.common import BENCHMARKS, effective_tasks
from repro.evalx.report import render_table
from repro.evalx.result import ExperimentResult
from repro.predictors.confidence import ResettingConfidenceEstimator
from repro.predictors.exit_predictors import PathExitPredictor
from repro.predictors.folding import DolcSpec
from repro.predictors.ras import ReturnAddressStack
from repro.predictors.task_predictor import HeaderTaskPredictor
from repro.predictors.ttb import CorrelatedTaskTargetBuffer
from repro.sim.timing import TimingConfig, simulate_timing
from repro.synth.workloads import load_workload

_DEFAULT_TASKS = 150_000
_SPEC = "6-5-8-9(3)"
_THRESHOLDS = (2, 4, 8)
#: Recovery costs swept: the default cheap redirect and an expensive one.
_PENALTIES = (3, 40)


def _predictor(workload):
    return HeaderTaskPredictor(
        program=workload.compiled.program,
        exit_predictor=PathExitPredictor(DolcSpec.parse(_SPEC)),
        cttb=CorrelatedTaskTargetBuffer(DolcSpec.parse("5-5-6-7(3)")),
        ras=ReturnAddressStack(depth=32),
    )


def run(n_tasks: int | None = None, quick: bool = False) -> ExperimentResult:
    """IPC with and without confidence gating, per threshold."""
    thresholds = _THRESHOLDS[1:2] if quick else _THRESHOLDS
    sections = []
    data: dict[str, dict[str, dict[str, float]]] = {}
    for penalty in _PENALTIES:
        config = TimingConfig(task_mispredict_penalty=penalty)
        rows = []
        for name in BENCHMARKS:
            workload = load_workload(
                name,
                n_tasks=effective_tasks(n_tasks, quick, _DEFAULT_TASKS),
            )
            ungated = simulate_timing(
                workload, _predictor(workload), config=config
            )
            row: list[object] = [name, f"{ungated.ipc:.2f}"]
            per_bench = data.setdefault(name, {})
            per_penalty = per_bench.setdefault(
                f"penalty{penalty}", {"ungated": ungated.ipc}
            )
            for threshold in thresholds:
                gated = simulate_timing(
                    workload,
                    _predictor(workload),
                    config=config,
                    confidence_gate=ResettingConfidenceEstimator(
                        DolcSpec.parse(_SPEC), threshold=threshold
                    ),
                )
                row.append(f"{gated.ipc:.2f}")
                per_penalty[f"gated_t{threshold}"] = gated.ipc
            rows.append(row)
        headers = ["Benchmark", "ungated"] + [
            f"gated t={t}" for t in thresholds
        ]
        sections.append(
            render_table(
                headers, rows,
                title=(
                    f"IPC, mispredict recovery penalty = {penalty} cycles"
                ),
            )
        )
    return ExperimentResult(
        experiment_id="ext_gating",
        title="Confidence-gated speculation control (IPC)",
        text="\n\n".join(sections),
        data=data,
    )
