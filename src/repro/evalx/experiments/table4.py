"""Table 4: IPC from the timing simulator, per prediction scheme.

Reproduces Table 4: IPC per prediction scheme on a 4-unit machine. The
reproduction target is the ordering Simple <= GLOBAL/PER <= PATH <=
Perfect with PATH's largest gains on gcc and xlisp — absolute IPCs
depend on the task-granularity timing model's calibration.

One cell per (benchmark, scheme); the (dataclass, hence picklable)
``TimingConfig`` travels inside each cell's kwargs.
"""

from __future__ import annotations

from repro.evalx.experiments.common import BENCHMARKS, effective_tasks
from repro.evalx.parallel import Cell, is_failure
from repro.evalx.report import render_table
from repro.evalx.result import ExperimentResult
from repro.predictors.base import NextTaskPredictor
from repro.predictors.exit_predictors import (
    GlobalExitPredictor,
    PathExitPredictor,
    PerTaskExitPredictor,
    SimpleExitPredictor,
)
from repro.predictors.folding import DolcSpec
from repro.predictors.ras import ReturnAddressStack
from repro.predictors.task_predictor import (
    HeaderTaskPredictor,
    PerfectTaskPredictor,
)
from repro.predictors.ttb import CorrelatedTaskTargetBuffer
from repro.sim.timing import TimingConfig, simulate_timing
from repro.synth.workloads import Workload, load_workload

_DEFAULT_TASKS = 150_000

#: All schemes use a 16KB PHT (15-bit index at 4 bits/entry) and history
#: depth 7, a CTTB for indirects and a RAS for returns, as in §7.
_PATH_SPEC = "7-5-7-8(3)"
_SMALL_CTTB_SPEC = "5-5-6-7(3)"
_INDEX_BITS = 15

#: Paper's Table 4 IPCs for side-by-side reporting.
PAPER_IPC = {
    "gcc": {"Simple": 1.55, "GLOBAL": 1.59, "PER": 1.48, "PATH": 1.68,
            "Perfect": 1.83},
    "compress": {"Simple": 1.44, "GLOBAL": 1.47, "PER": 1.44, "PATH": 1.47,
                 "Perfect": 1.85},
    "espresso": {"Simple": 2.61, "GLOBAL": 2.67, "PER": 2.68, "PATH": 2.70,
                 "Perfect": 2.75},
    "sc": {"Simple": 2.13, "GLOBAL": 2.21, "PER": 2.22, "PATH": 2.22,
           "Perfect": 2.26},
    "xlisp": {"Simple": 1.59, "GLOBAL": 1.77, "PER": 1.76, "PATH": 1.89,
              "Perfect": 2.03},
}

SCHEMES = ("Simple", "GLOBAL", "PER", "PATH", "Perfect")


def _make_predictor(
    scheme: str, workload: Workload
) -> NextTaskPredictor:
    """Build the scheme's next-task predictor over this workload."""
    program = workload.compiled.program
    if scheme == "Perfect":
        return PerfectTaskPredictor(workload.trace)
    if scheme == "Simple":
        exit_predictor = SimpleExitPredictor(index_bits=_INDEX_BITS)
    elif scheme == "GLOBAL":
        exit_predictor = GlobalExitPredictor(
            depth=7, index_bits=_INDEX_BITS
        )
    elif scheme == "PER":
        exit_predictor = PerTaskExitPredictor(
            depth=7, index_bits=_INDEX_BITS
        )
    else:  # PATH
        exit_predictor = PathExitPredictor(DolcSpec.parse(_PATH_SPEC))
    return HeaderTaskPredictor(
        program=program,
        exit_predictor=exit_predictor,
        cttb=CorrelatedTaskTargetBuffer(DolcSpec.parse(_SMALL_CTTB_SPEC)),
        ras=ReturnAddressStack(depth=32),
    )


def _cell(
    name: str, scheme: str, tasks: int, config: TimingConfig
) -> float:
    """IPC of one scheme on one benchmark."""
    workload = load_workload(name, n_tasks=tasks)
    predictor = _make_predictor(scheme, workload)
    return simulate_timing(workload, predictor, config=config).ipc


def cells(
    n_tasks: int | None = None,
    quick: bool = False,
    config: TimingConfig | None = None,
) -> list[Cell]:
    tasks = effective_tasks(n_tasks, quick, _DEFAULT_TASKS)
    config = config or TimingConfig()
    return [
        Cell(
            label=f"{name}:{scheme}",
            fn=_cell,
            kwargs={
                "name": name,
                "scheme": scheme,
                "tasks": tasks,
                "config": config,
            },
            workload=(name, tasks),
        )
        for name in BENCHMARKS
        for scheme in SCHEMES
    ]


def combine(
    cells: list[Cell],
    results: list[float],
    n_tasks: int | None = None,
    quick: bool = False,
    config: TimingConfig | None = None,
) -> ExperimentResult:
    data: dict[str, dict[str, float]] = {}
    for cell, ipc in zip(cells, results):
        if is_failure(ipc):  # keep-going gap for this (name, scheme)
            continue
        data.setdefault(cell.kwargs["name"], {})[
            cell.kwargs["scheme"]
        ] = ipc
    rows = []
    for name in BENCHMARKS:
        row: list[object] = [name]
        for scheme in SCHEMES:
            ipc = data.get(name, {}).get(scheme)
            row.append("-" if ipc is None else f"{ipc:.2f}")
            row.append(f"({PAPER_IPC[name][scheme]:.2f})")
        rows.append(row)
    headers = ["Benchmark"]
    for scheme in SCHEMES:
        headers.extend([scheme, "(paper)"])
    text = render_table(headers, rows)
    return ExperimentResult(
        experiment_id="table4",
        title="IPC from the timing simulator",
        text=text,
        data=data,
    )
