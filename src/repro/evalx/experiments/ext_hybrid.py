"""Extension: tournament PATH+PER prediction.

Figure 7 shows PATH winning everywhere except sc, where PER's per-task
history captures cyclic behaviour PATH cannot. A McFarling-style tournament
of the two should match the better component on every benchmark — this
experiment verifies that, comparing the hybrid against its components at
equal history depth.
"""

from __future__ import annotations

from repro.evalx.experiments.common import BENCHMARKS, effective_tasks
from repro.evalx.report import render_series
from repro.evalx.result import ExperimentResult
from repro.predictors.exit_predictors import (
    PathExitPredictor,
    PerTaskExitPredictor,
)
from repro.predictors.folding import DolcSpec
from repro.predictors.hybrid import TournamentExitPredictor
from repro.sim.functional import simulate_exit_prediction
from repro.synth.workloads import load_workload

_DEFAULT_TASKS = 200_000
_PATH_SPEC = "6-5-8-9(3)"
_PER_DEPTH = 6


def _components():
    path = PathExitPredictor(DolcSpec.parse(_PATH_SPEC))
    per = PerTaskExitPredictor(depth=_PER_DEPTH, index_bits=14)
    return path, per


def run(n_tasks: int | None = None, quick: bool = False) -> ExperimentResult:
    """Measure PATH, PER, and their tournament on every benchmark."""
    series: dict[str, list[float]] = {
        "PATH": [], "PER": [], "tournament": [],
    }
    for name in BENCHMARKS:
        workload = load_workload(
            name, n_tasks=effective_tasks(n_tasks, quick, _DEFAULT_TASKS)
        )
        path, per = _components()
        series["PATH"].append(
            simulate_exit_prediction(workload, path).miss_rate
        )
        path, per = _components()
        series["PER"].append(
            simulate_exit_prediction(workload, per).miss_rate
        )
        path, per = _components()
        hybrid = TournamentExitPredictor(path, per)
        series["tournament"].append(
            simulate_exit_prediction(workload, hybrid).miss_rate
        )
    text = render_series(
        "benchmark", list(BENCHMARKS), series,
        title=f"exit miss rate: {_PATH_SPEC} vs PER d{_PER_DEPTH} vs hybrid",
    )
    return ExperimentResult(
        experiment_id="ext_hybrid",
        title="Tournament PATH+PER exit prediction",
        text=text,
        data={"benchmarks": list(BENCHMARKS), "series": series},
    )
