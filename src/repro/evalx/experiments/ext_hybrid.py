"""Extension: tournament PATH+PER prediction.

Figure 7 shows PATH winning everywhere except sc, where PER's per-task
history captures cyclic behaviour PATH cannot. A McFarling-style tournament
of the two should match the better component on every benchmark — this
experiment verifies that, comparing the hybrid against its components at
equal history depth.
"""

from __future__ import annotations

from repro.evalx.experiments.common import BENCHMARKS, effective_tasks
from repro.evalx.parallel import Cell, is_failure
from repro.evalx.report import render_series
from repro.evalx.result import ExperimentResult
from repro.predictors.exit_predictors import (
    PathExitPredictor,
    PerTaskExitPredictor,
)
from repro.predictors.folding import DolcSpec
from repro.predictors.hybrid import TournamentExitPredictor
from repro.sim.functional import simulate_exit_prediction
from repro.synth.workloads import load_workload

_DEFAULT_TASKS = 200_000
_PATH_SPEC = "6-5-8-9(3)"
_PER_DEPTH = 6

_SCHEMES = ("PATH", "PER", "tournament")


def _components():
    path = PathExitPredictor(DolcSpec.parse(_PATH_SPEC))
    per = PerTaskExitPredictor(depth=_PER_DEPTH, index_bits=14)
    return path, per


def _cell(name: str, scheme: str, tasks: int) -> float:
    """Miss rate of one scheme (component or tournament) on one
    benchmark; predictors are built fresh so every cell starts cold."""
    workload = load_workload(name, n_tasks=tasks)
    path, per = _components()
    predictor = {
        "PATH": path,
        "PER": per,
        "tournament": TournamentExitPredictor(path, per),
    }[scheme]
    return simulate_exit_prediction(workload, predictor).miss_rate


def cells(n_tasks: int | None = None, quick: bool = False) -> list[Cell]:
    tasks = effective_tasks(n_tasks, quick, _DEFAULT_TASKS)
    return [
        Cell(
            label=f"{name}:{scheme}",
            fn=_cell,
            kwargs={"name": name, "scheme": scheme, "tasks": tasks},
            workload=(name, tasks),
        )
        for name in BENCHMARKS
        for scheme in _SCHEMES
    ]


def combine(
    cells: list[Cell],
    results: list[float],
    n_tasks: int | None = None,
    quick: bool = False,
) -> ExperimentResult:
    series: dict[str, list[float | None]] = {s: [] for s in _SCHEMES}
    for cell, miss in zip(cells, results):
        series[cell.kwargs["scheme"]].append(
            None if is_failure(miss) else miss
        )
    text = render_series(
        "benchmark", list(BENCHMARKS), series,
        title=f"exit miss rate: {_PATH_SPEC} vs PER d{_PER_DEPTH} vs hybrid",
    )
    return ExperimentResult(
        experiment_id="ext_hybrid",
        title="Tournament PATH+PER exit prediction",
        text=text,
        data={"benchmarks": list(BENCHMARKS), "series": series},
    )
