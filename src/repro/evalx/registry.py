"""Experiment registry: id -> driver."""

from __future__ import annotations

import importlib

from repro.errors import ExperimentError
from repro.evalx.result import ExperimentResult

#: Every reproducible table and figure, in paper order.
EXPERIMENT_IDS = (
    "table2",
    "figure3",
    "figure4",
    "figure6",
    "figure7",
    "figure8",
    "figure10",
    "figure11",
    "figure12",
    "table3",
    "table4",
)

#: Extension studies beyond the paper's evaluation (see each module's
#: docstring): repair-policy cost, RAS depth, CTTB sizing.
EXTENSION_IDS = (
    "ext_repair",
    "ext_ras",
    "ext_cttb",
    "ext_hybrid",
    "ext_confidence",
    "ext_tasksize",
    "ext_dominance",
    "ext_static",
    "ext_seeds",
    "ext_gating",
)

ALL_IDS = EXPERIMENT_IDS + EXTENSION_IDS + ("summary",)


def run_experiment(
    experiment_id: str,
    n_tasks: int | None = None,
    quick: bool = False,
    **kwargs,
) -> ExperimentResult:
    """Run the named experiment and return its result.

    ``n_tasks`` overrides the trace length; ``quick`` shrinks both trace
    and sweep for smoke runs. Extra keyword arguments pass through to the
    driver (e.g. ``benchmarks=("gcc",)`` for figure7/figure10).
    """
    if experiment_id not in ALL_IDS:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {ALL_IDS}"
        )
    module = importlib.import_module(
        f"repro.evalx.experiments.{experiment_id}"
    )
    return module.run(n_tasks=n_tasks, quick=quick, **kwargs)
