"""Experiment registry: id -> driver."""

from __future__ import annotations

import importlib
import inspect

from repro.errors import ExperimentError
from repro.evalx.parallel import run_sharded
from repro.evalx.result import ExperimentResult

#: Every reproducible table and figure, in paper order.
EXPERIMENT_IDS = (
    "table2",
    "figure3",
    "figure4",
    "figure6",
    "figure7",
    "figure8",
    "figure10",
    "figure11",
    "figure12",
    "table3",
    "table4",
)

#: Extension studies beyond the paper's evaluation (see each module's
#: docstring): repair-policy cost, RAS depth, CTTB sizing.
EXTENSION_IDS = (
    "ext_repair",
    "ext_ras",
    "ext_cttb",
    "ext_hybrid",
    "ext_confidence",
    "ext_tasksize",
    "ext_dominance",
    "ext_static",
    "ext_seeds",
    "ext_gating",
)

#: Search drivers: cell grids parameterised by an external engine (the
#: design-space autotuner dispatches its rungs through these).
SEARCH_IDS = ("tune_rung",)

ALL_IDS = EXPERIMENT_IDS + EXTENSION_IDS + SEARCH_IDS + ("summary",)


def run_experiment(
    experiment_id: str,
    n_tasks: int | None = None,
    quick: bool = False,
    jobs: int | None = None,
    keep_going: bool = False,
    retry=None,
    metrics=None,
    checkpoint=None,
    **kwargs,
) -> ExperimentResult:
    """Run the named experiment and return its result.

    ``n_tasks`` overrides the trace length; ``quick`` shrinks both trace
    and sweep for smoke runs. ``jobs`` fans the experiment's independent
    (benchmark x config) cells over worker processes: ``None`` runs
    serially, ``0`` uses every CPU, and any value produces identical
    results.

    Fault handling and observability (cell-grid experiments only):
    ``keep_going`` degrades failed cells to
    :class:`~repro.evalx.parallel.CellFailure` gaps instead of aborting;
    ``retry`` is a :class:`~repro.evalx.parallel.RetryPolicy` (attempts,
    backoff, per-cell timeout); ``metrics`` is a
    :class:`~repro.evalx.metrics.RunMetrics` recorder; ``checkpoint``
    is a :class:`~repro.evalx.checkpoint.CheckpointStore` that persists
    each completed cell and (in resume mode) serves verified records
    instead of re-running. Extra keyword arguments pass through to the
    driver (e.g. ``benchmarks=("gcc",)`` for figure7/figure10).
    """
    if experiment_id not in ALL_IDS:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {ALL_IDS}"
        )
    module = importlib.import_module(
        f"repro.evalx.experiments.{experiment_id}"
    )
    if hasattr(module, "cells"):
        return run_sharded(
            module,
            n_tasks=n_tasks,
            quick=quick,
            jobs=jobs,
            keep_going=keep_going,
            retry=retry,
            metrics=metrics,
            checkpoint=checkpoint,
            **kwargs,
        )
    # Legacy monolithic drivers (extensions, summary) run serially;
    # summary forwards ``jobs`` to the paper experiments it re-runs.
    if "jobs" in inspect.signature(module.run).parameters:
        kwargs["jobs"] = jobs
    return module.run(n_tasks=n_tasks, quick=quick, **kwargs)
