"""Design-space autotuner: successive halving over the predictor space.

``repro-tune`` searches the D-O-L-C(F) x automaton x table-size x
hysteresis space (:mod:`repro.predictors.design_space`) for predictor
configurations on the accuracy-vs-storage Pareto frontier. The search
is successive halving: every surviving candidate is evaluated on every
benchmark at a short trace length (a *rung*), the best ``1/eta`` are
promoted to the next, longer rung, and the final rung runs the full
trace length. Cheap rungs screen out the bulk of the space; the full
budget is spent only on configurations that earned it.

Each rung is one batch of the :mod:`~repro.evalx.experiments.tune_rung`
driver dispatched through the ordinary engine — so ``--jobs`` fans the
rung over worker processes, ``--checkpoint-dir/--resume`` makes the
search crash-safe, ``--metrics`` records every cell, ``--inject-faults``
applies the chaos harness, and ``--service-dir`` submits each rung as a
distributed sweep-service job instead of running locally.

The determinism contract
------------------------

Every decision the search makes is a pure function of completed rung
results:

* the candidate population derives from the axis lists and ``--seed``
  (:func:`initial_population`);
* the rung trace lengths derive from ``--rung0-tasks/--final-tasks/
  --rungs`` (:func:`rung_schedule`);
* promotion ranks candidates by mean miss rate with the config key as
  the tie-break (:func:`promote`) — no clocks, no iteration-order
  dependence, no hidden RNG.

Rung cells are content-addressed in the checkpoint store, so a search
killed mid-rung and rerun with ``--resume`` replays the completed cells
from disk, recomputes only the missing ones, and reaches byte-identical
promotions, ranking, and frontier artifact.

Frontier artifact schema (``--out``)::

    {
      "tool": "repro-tune",
      "search":   {... every search parameter ...},
      "schedule": [tasks per rung],
      "rungs":    [{"rung": n, "tasks": n, "population": [...],
                    "scores": {key: mean-miss | null},
                    "promoted": [...]}],
      "ranking":  [config keys, best first],
      "frontier": {benchmark: [{"config": key, "storage_bits": n,
                                "miss_rate": x}, ...]}
    }

The artifact carries no timestamps or wall times, by design: two runs
of the same search — interrupted or not — produce identical bytes.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ReproError
from repro.evalx.experiments.common import BENCHMARKS
from repro.evalx.registry import run_experiment
from repro.evalx.report import render_frontier
from repro.predictors.design_space import (
    DEFAULT_AUTOMATA,
    DEFAULT_DEPTHS,
    DEFAULT_FOLDS,
    DEFAULT_INDEX_BITS,
    TuneConfig,
    enumerate_space,
)
from repro.utils.rng import DeterministicRng


class TuneError(ReproError):
    """The search cannot proceed (bad spec, empty space, dead rung)."""


@dataclass(frozen=True)
class TuneSpec:
    """Everything that identifies one search (and thus its artifact)."""

    benchmarks: tuple[str, ...] = BENCHMARKS
    budget: int = 16
    eta: int = 2
    rungs: int = 3
    rung0_tasks: int = 5_000
    final_tasks: int = 40_000
    seed: int = 0
    depths: tuple[int, ...] = DEFAULT_DEPTHS
    index_bits: tuple[int, ...] = DEFAULT_INDEX_BITS
    automata: tuple[str, ...] = DEFAULT_AUTOMATA
    folds: tuple[int, ...] = DEFAULT_FOLDS

    def __post_init__(self) -> None:
        if not self.benchmarks:
            raise TuneError("at least one benchmark is required")
        if self.budget < 1:
            raise TuneError("budget must be >= 1 candidate")
        if self.eta < 2:
            raise TuneError("eta must be >= 2 (promote a strict subset)")
        if self.rungs < 1:
            raise TuneError("at least one rung is required")
        if self.rung0_tasks < 1:
            raise TuneError("rung0_tasks must be >= 1")
        if self.final_tasks < self.rung0_tasks:
            raise TuneError("final_tasks must be >= rung0_tasks")


def rung_schedule(spec: TuneSpec) -> tuple[int, ...]:
    """Trace length per rung: geometric from rung0 to the full length."""
    if spec.rungs == 1:
        return (spec.final_tasks,)
    ratio = (spec.final_tasks / spec.rung0_tasks) ** (
        1.0 / (spec.rungs - 1)
    )
    tasks = [
        int(round(spec.rung0_tasks * ratio**r))
        for r in range(spec.rungs)
    ]
    tasks[-1] = spec.final_tasks
    return tuple(tasks)


def initial_population(spec: TuneSpec) -> list[str]:
    """The rung-0 candidate keys, sorted.

    When the enumerated space exceeds the budget, a seeded shuffle of
    the sorted space picks the sample — the one random decision in the
    search, and it happens before any cell runs, from the seed alone,
    so a resumed search rebuilds the identical population.
    """
    space = sorted(
        config.key
        for config in enumerate_space(
            depths=spec.depths,
            index_bits=spec.index_bits,
            automata=spec.automata,
            folds=spec.folds,
        )
    )
    if not space:
        raise TuneError("design space is empty for the given axes")
    if spec.budget >= len(space):
        return space
    rng = DeterministicRng(spec.seed).fork("tune-population")
    rng.shuffle(space)
    return sorted(space[: spec.budget])


def score_rung(
    grid: dict[str, dict[str, float | None]],
    population: Sequence[str],
    benchmarks: Sequence[str],
) -> list[tuple[str, float | None]]:
    """Mean miss rate per candidate, or None where any cell failed.

    Pure function of the rung's combined grid: the same completed cells
    always yield the same scores, however they were computed.
    """
    scored: list[tuple[str, float | None]] = []
    for key in population:
        row = grid.get(key, {})
        misses = [row.get(name) for name in benchmarks]
        if any(miss is None for miss in misses):
            scored.append((key, None))
        else:
            scored.append((key, sum(misses) / len(misses)))
    return scored


def promote(
    scored: Sequence[tuple[str, float | None]],
    eta: int,
    keep: int | None = None,
) -> list[str]:
    """The candidates advancing to the next rung, best first.

    Failed candidates (score None) never advance. Ties rank on the
    config key so promotion is deterministic. ``keep`` overrides the
    ``len(scored) // eta`` halving (the final rung keeps everyone to
    produce the full ranking).
    """
    ranked = sorted(
        (score, key) for key, score in scored if score is not None
    )
    if keep is None:
        keep = max(1, len(scored) // eta)
    return [key for _, key in ranked[:keep]]


def pareto_frontier(
    points: Sequence[tuple[str, int, float]],
) -> list[dict]:
    """Non-dominated (storage, miss-rate) points, cheapest first.

    ``points`` holds ``(config key, storage_bits, miss_rate)``. A point
    survives when nothing at equal-or-lower storage predicts better;
    equal (storage, miss) ties keep the lexicographically first key.
    """
    frontier: list[dict] = []
    best_miss: float | None = None
    for storage, miss, key in sorted(
        (storage, miss, key) for key, storage, miss in points
    ):
        if best_miss is None or miss < best_miss:
            frontier.append(
                {
                    "config": key,
                    "storage_bits": storage,
                    "miss_rate": miss,
                }
            )
            best_miss = miss
    return frontier


# -- rung execution ---------------------------------------------------


class LocalRungRunner:
    """Run each rung in-process through :func:`run_experiment`."""

    def __init__(
        self,
        jobs: int | None = None,
        keep_going: bool = False,
        retry=None,
        metrics=None,
        checkpoint=None,
    ) -> None:
        self.jobs = jobs
        self.keep_going = keep_going
        self.retry = retry
        self.metrics = metrics
        self.checkpoint = checkpoint

    def run_rung(
        self,
        tasks: int,
        population: Sequence[str],
        benchmarks: Sequence[str],
    ):
        return run_experiment(
            "tune_rung",
            n_tasks=tasks,
            jobs=self.jobs,
            keep_going=self.keep_going,
            retry=self.retry,
            metrics=self.metrics,
            checkpoint=self.checkpoint,
            configs=tuple(population),
            benchmarks=tuple(benchmarks),
        )


class ServiceRungRunner:
    """Submit each rung as a sweep-service job and await its result.

    Requires a coordinator and at least one worker serving ``root``;
    the rung parameters travel in the job spec's ``params`` so the
    coordinator expands exactly the cells a local rung would build.
    """

    def __init__(
        self,
        root: str | Path,
        tenant: str = "tune",
        keep_going: bool = False,
        retries: int = 0,
        poll_seconds: float = 0.2,
        timeout_seconds: float = 600.0,
    ) -> None:
        self.root = Path(root)
        self.tenant = tenant
        self.keep_going = keep_going
        self.retries = retries
        self.poll_seconds = poll_seconds
        self.timeout_seconds = timeout_seconds

    def run_rung(
        self,
        tasks: int,
        population: Sequence[str],
        benchmarks: Sequence[str],
    ):
        from repro.evalx.service.jobs import JobSpec, JobStore

        store = JobStore(self.root)
        job_id = store.submit(
            JobSpec(
                experiment="tune_rung",
                n_tasks=tasks,
                keep_going=self.keep_going,
                retries=self.retries,
                tenant=self.tenant,
                params={
                    "configs": list(population),
                    "benchmarks": list(benchmarks),
                },
            )
        )
        deadline = time.monotonic() + self.timeout_seconds
        while True:
            record = store.get(job_id)
            if record.state == "done":
                return store.fetch(job_id)
            if record.state == "failed":
                raise TuneError(
                    f"rung job {job_id} failed: {record.error}"
                )
            if time.monotonic() >= deadline:
                raise TuneError(
                    f"rung job {job_id} still {record.state} after "
                    f"{self.timeout_seconds:.0f}s; is the service up?"
                )
            time.sleep(self.poll_seconds)


# -- the search -------------------------------------------------------


def run_search(
    spec: TuneSpec,
    runner,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Run the full search; returns the frontier artifact dict.

    Raises :class:`TuneError` when a rung leaves no live candidate.
    The returned dict is a pure function of the spec and the rung cell
    results — serialising it with :func:`dump_artifact` yields the
    byte-identical artifact on any replay, resumed or not.
    """
    say = progress or (lambda message: None)
    schedule = rung_schedule(spec)
    population = initial_population(spec)
    rungs: list[dict] = []
    ranking: list[str] = []
    final_grid: dict[str, dict[str, float | None]] = {}
    for number, tasks in enumerate(schedule):
        say(
            f"rung {number}: {len(population)} candidate(s) x "
            f"{len(spec.benchmarks)} benchmark(s) at {tasks} tasks"
        )
        result = runner.run_rung(tasks, population, spec.benchmarks)
        grid = result.data["grid"]
        scored = score_rung(grid, population, spec.benchmarks)
        survivors = sum(1 for _, score in scored if score is not None)
        if not survivors:
            raise TuneError(
                f"every candidate failed at rung {number} "
                f"({tasks} tasks); nothing to promote"
            )
        last = number == len(schedule) - 1
        promoted = promote(
            scored, spec.eta, keep=survivors if last else None
        )
        rungs.append(
            {
                "rung": number,
                "tasks": tasks,
                "population": list(population),
                "scores": dict(scored),
                "promoted": list(promoted),
            }
        )
        population = promoted
        if last:
            ranking = promoted
            final_grid = grid
    frontier: dict[str, list[dict]] = {}
    for name in spec.benchmarks:
        points = []
        for key in ranking:
            miss = final_grid.get(key, {}).get(name)
            if miss is None:
                continue
            points.append((key, TuneConfig.parse(key).storage_bits(), miss))
        frontier[name] = pareto_frontier(points)
    return {
        "tool": "repro-tune",
        "search": {
            "benchmarks": list(spec.benchmarks),
            "budget": spec.budget,
            "eta": spec.eta,
            "rungs": spec.rungs,
            "rung0_tasks": spec.rung0_tasks,
            "final_tasks": spec.final_tasks,
            "seed": spec.seed,
            "depths": list(spec.depths),
            "index_bits": list(spec.index_bits),
            "automata": list(spec.automata),
            "folds": list(spec.folds),
        },
        "schedule": list(schedule),
        "rungs": rungs,
        "ranking": ranking,
        "frontier": frontier,
    }


def dump_artifact(artifact: dict) -> str:
    """Canonical JSON serialisation — byte-stable across replays."""
    return json.dumps(artifact, sort_keys=True, indent=2) + "\n"


def render_report(artifact: dict) -> str:
    """Human-readable frontier tables plus the final ranking."""
    sections = []
    for name in artifact["search"]["benchmarks"]:
        sections.append(
            render_frontier(
                artifact["frontier"][name],
                title=f"{name.upper()} accuracy-vs-storage frontier",
            )
        )
    ranking = artifact["ranking"]
    lines = [f"Final ranking ({len(ranking)} candidate(s)):"]
    lines.extend(
        f"  {position + 1}. {key}"
        for position, key in enumerate(ranking)
    )
    sections.append("\n".join(lines))
    return "\n\n".join(sections)


# -- CLI --------------------------------------------------------------


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _eta_arg(text: str) -> int:
    value = _positive_int(text)
    if value < 2:
        raise argparse.ArgumentTypeError(
            f"--eta must be >= 2 so each rung prunes, got {value}"
        )
    return value


def _build_parser() -> argparse.ArgumentParser:
    from repro.evalx.__main__ import (
        _fault_spec,
        _jobs_arg,
        _nonnegative_int,
        _positive_float,
    )

    parser = argparse.ArgumentParser(
        prog="repro-tune",
        description=(
            "Successive-halving search over the predictor design space "
            "(DOLC x automaton x table size x hysteresis) for the "
            "accuracy-vs-storage Pareto frontier."
        ),
    )
    search = parser.add_argument_group("search space and budget")
    search.add_argument(
        "--benchmarks", nargs="+", default=list(BENCHMARKS),
        metavar="NAME", help="workloads to evaluate candidates on",
    )
    search.add_argument(
        "--budget", type=_positive_int, default=16, metavar="N",
        help="rung-0 population size (seeded sample of the space; "
        "default 16)",
    )
    search.add_argument(
        "--eta", type=_eta_arg, default=2, metavar="N",
        help="promotion divisor: each rung keeps ~1/eta (default 2)",
    )
    search.add_argument(
        "--rungs", type=_positive_int, default=3, metavar="N",
        help="number of rungs (default 3)",
    )
    search.add_argument(
        "--rung0-tasks", type=_positive_int, default=5_000, metavar="N",
        help="trace length of the cheapest rung (default 5000)",
    )
    search.add_argument(
        "--final-tasks", type=_positive_int, default=40_000, metavar="N",
        help="trace length of the last rung (default 40000)",
    )
    search.add_argument(
        "--seed", type=_nonnegative_int, default=0, metavar="N",
        help="seed for the population sample (default 0)",
    )
    search.add_argument(
        "--depths", type=_nonnegative_int, nargs="+", default=None,
        metavar="D", help="history depths to search (default 0..7)",
    )
    search.add_argument(
        "--index-bits", type=_positive_int, nargs="+", default=None,
        metavar="B", help="PHT index widths to search (default 10 12 14)",
    )
    search.add_argument(
        "--automata", nargs="+", default=None, metavar="SPEC",
        help="automata to search (default LE LEH-1 LEH-2 LEH-3 "
        "VC2-MRU VC3-MRU)",
    )
    search.add_argument(
        "--folds", type=_positive_int, nargs="+", default=None,
        metavar="F", help="XOR-fold counts to search (default 1 2 3)",
    )
    engine = parser.add_argument_group("execution engine")
    engine.add_argument(
        "--jobs", type=_jobs_arg, default=None, metavar="N",
        help="fan each rung's cells over N worker processes "
        "(0 = one per CPU; default serial)",
    )
    engine.add_argument(
        "--keep-going", action="store_true",
        help="a failed cell drops its candidate from the search "
        "instead of aborting the rung",
    )
    engine.add_argument(
        "--retries", type=_nonnegative_int, default=0, metavar="N",
        help="extra attempts granted to each failing cell (default 0)",
    )
    engine.add_argument(
        "--retry-backoff", type=_positive_float, default=0.25,
        metavar="SECONDS",
        help="delay before a cell's first retry; doubles per retry",
    )
    engine.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="append per-cell JSONL metrics to FILE",
    )
    engine.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="persist every completed rung cell to DIR (crash-safe); "
        "combine with --resume to replay a killed search",
    )
    engine.add_argument(
        "--resume", action="store_true",
        help="serve verified records from --checkpoint-dir; a resumed "
        "search reaches byte-identical promotions and frontier",
    )
    engine.add_argument(
        "--inject-faults", type=_fault_spec, default=None, metavar="SPEC",
        help="chaos harness over the rung cells (see repro.evalx.faults)",
    )
    engine.add_argument(
        "--fault-seed", type=_nonnegative_int, default=0, metavar="N",
        help="seed for the fault injector's victim choice (default 0)",
    )
    service = parser.add_argument_group("sweep-service dispatch")
    service.add_argument(
        "--service-dir", metavar="DIR", default=None,
        help="submit each rung as a job to this sweep-service "
        "directory instead of running locally (needs a coordinator "
        "and workers serving it)",
    )
    service.add_argument(
        "--service-tenant", default="tune", metavar="NAME",
        help="tenant name for rung jobs (default 'tune')",
    )
    service.add_argument(
        "--service-timeout", type=_positive_float, default=600.0,
        metavar="SECONDS",
        help="give up on a rung job after this long (default 600)",
    )
    parser.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the frontier artifact JSON to FILE",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.resume and not args.checkpoint_dir:
        parser.error("--resume requires --checkpoint-dir")
    if args.service_dir and (args.jobs is not None or args.checkpoint_dir):
        parser.error(
            "--service-dir dispatches rungs to the service; "
            "--jobs/--checkpoint-dir apply to its workers, not here"
        )
    try:
        spec = TuneSpec(
            benchmarks=tuple(args.benchmarks),
            budget=args.budget,
            eta=args.eta,
            rungs=args.rungs,
            rung0_tasks=args.rung0_tasks,
            final_tasks=args.final_tasks,
            seed=args.seed,
            depths=(
                tuple(args.depths)
                if args.depths is not None
                else DEFAULT_DEPTHS
            ),
            index_bits=(
                tuple(args.index_bits)
                if args.index_bits is not None
                else DEFAULT_INDEX_BITS
            ),
            automata=(
                tuple(args.automata)
                if args.automata is not None
                else DEFAULT_AUTOMATA
            ),
            folds=(
                tuple(args.folds)
                if args.folds is not None
                else DEFAULT_FOLDS
            ),
        )
        population = initial_population(spec)
    except TuneError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.inject_faults:
        _install_fault_plan(
            args.inject_faults, args.fault_seed, population, spec
        )

    from repro.evalx.metrics import RunMetrics
    from repro.evalx.parallel import RetryPolicy

    checkpoint = None
    if args.checkpoint_dir:
        from repro.evalx.checkpoint import CheckpointStore

        checkpoint = CheckpointStore(
            args.checkpoint_dir, resume=args.resume
        )
    metrics = RunMetrics(path=args.metrics)
    with metrics:
        if args.service_dir:
            runner = ServiceRungRunner(
                args.service_dir,
                tenant=args.service_tenant,
                keep_going=args.keep_going,
                retries=args.retries,
                timeout_seconds=args.service_timeout,
            )
        else:
            runner = LocalRungRunner(
                jobs=args.jobs,
                keep_going=args.keep_going,
                retry=RetryPolicy(
                    retries=args.retries,
                    backoff_seconds=args.retry_backoff,
                ),
                metrics=metrics,
                checkpoint=checkpoint,
            )
        try:
            artifact = run_search(
                spec,
                runner,
                progress=lambda message: print(
                    f"[{message}]", file=sys.stderr
                ),
            )
        except TuneError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    print(render_report(artifact))
    if args.out:
        Path(args.out).write_text(
            dump_artifact(artifact), encoding="utf-8"
        )
        print(f"[frontier artifact written to {args.out}]", file=sys.stderr)
    return 0


def _install_fault_plan(
    spec_text: str, seed: int, population: list[str], spec: TuneSpec
) -> None:
    """Arm the chaos injector against this search's rung cell labels."""
    from repro.evalx import faults
    from repro.evalx.experiments import tune_rung

    labels = [
        cell.label
        for cell in tune_rung.cells(
            n_tasks=1,
            configs=population,
            benchmarks=spec.benchmarks,
        )
    ]
    plan = faults.FaultPlan.compile(spec_text, seed=seed, labels=labels)
    faults.install(plan)
    print(
        f"[fault injection armed: {len(plan.triggers)} trigger(s) "
        f"from spec {spec_text!r}, seed {seed}]",
        file=sys.stderr,
    )


if __name__ == "__main__":
    sys.exit(main())
