"""The sweep worker: fairly lease cells, run them, persist records.

A worker is one process on one host. Each ``run_once``:

1. Picks the running job this worker has served *least* (ties go to
   the older submission) — the fair round-robin that keeps two tenants'
   concurrent sweeps interleaving instead of queueing behind each
   other.
2. Walks that job's shards in order, preferring to stay on a shard it
   already works (shard affinity keeps the cost-balanced grouping
   meaningful) and leases the first open cell: no checkpoint record, no
   fail marker, no live lease. Expired leases are stolen.
3. Runs the cell in-process with the engine's retry discipline, under a
   heartbeat thread that renews the lease for as long as the cell
   takes.
4. Publishes the result as an ordinary checkpoint record — the durable
   "done" bit every other participant polls — and releases the lease.
   A failure that survives the retry budget becomes a job-scoped fail
   marker instead.

Chaos hooks: :func:`repro.evalx.faults.fire` runs at the top of every
cell attempt exactly as in pooled runs (``raise``/``hang``/``kill``),
and :func:`repro.evalx.faults.fire_worker` runs right after a lease is
acquired, so a planned ``kill-worker`` fault dies holding a live lease
— the precise crash the expiry/steal path exists to repair.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from pathlib import Path

from repro.evalx import faults
from repro.evalx.checkpoint import CheckpointStore
from repro.evalx.metrics import RunMetrics
from repro.evalx.parallel import (
    CellFailure,
    RetryPolicy,
    _backoff,
    _run_cell_instrumented,
)
from repro.evalx.service import manifest as mf
from repro.evalx.service.jobs import JobRecord, JobStore
from repro.evalx.service.queue import DEFAULT_TTL_SECONDS, LeaseQueue


def default_worker_id() -> str:
    """``host:pid`` — unique per live worker process across hosts."""
    return f"{socket.gethostname()}:{os.getpid()}"


#: Consecutive failed lease renewals before a worker concludes it no
#: longer holds the cell. Three beats at TTL/3 means ownership is
#: declared lost right around the moment the unrenewed lease actually
#: expires and becomes stealable.
RENEW_FAILURE_THRESHOLD = 3


class Worker:
    """One lease-and-run loop over a shared service directory.

    Args:
        root: The shared service directory.
        worker_id: Lease-ownership identity; defaults to ``host:pid``.
        ttl_seconds: Lease lifetime between heartbeats.
        retry: Engine retry policy for in-process attempts (the
            per-cell timeout is not enforced here, like the serial
            path; a dead worker is handled by lease expiry instead).
        metrics: Optional recorder (cell attempts + lease events).
        renew_failure_threshold: Consecutive heartbeat renewal
            failures after which the worker treats its lease as lost
            and abandons the cell instead of publishing.
    """

    def __init__(
        self,
        root: str | Path,
        worker_id: str | None = None,
        ttl_seconds: float = DEFAULT_TTL_SECONDS,
        retry: RetryPolicy | None = None,
        metrics: RunMetrics | None = None,
        renew_failure_threshold: int = RENEW_FAILURE_THRESHOLD,
    ) -> None:
        self.root = Path(root)
        self.worker_id = worker_id or default_worker_id()
        self.jobs = JobStore(self.root)
        self.store = CheckpointStore(self.root / "store", resume=True)
        self.metrics = metrics or RunMetrics.disabled()
        self.queue = LeaseQueue(
            self.store, ttl_seconds=ttl_seconds, metrics=self.metrics
        )
        self.retry = retry or RetryPolicy()
        self.renew_failure_threshold = max(1, renew_failure_threshold)
        self._served: dict[str, int] = {}
        self._shard_affinity: dict[str, int] = {}

    # -- scheduling ---------------------------------------------------

    def _job_ring(self) -> list[JobRecord]:
        """Running jobs, least-served by this worker first."""
        running = self.jobs.list_jobs(state="running")
        return sorted(
            running,
            key=lambda r: (
                self._served.get(r.job_id, 0),
                r.submitted_ts,
                r.job_id,
            ),
        )

    def _claim(self, job: JobRecord) -> mf.ManifestCell | None:
        """Lease the next open cell of one job, or None."""
        try:
            manifest = mf.read_manifest(self.root, job.job_id)
        except mf.ManifestError:
            return None
        done = self.store.fingerprints()
        fails = mf.failed_fingerprints(self.root, job.job_id)
        shards = list(manifest.shards)
        # Shard affinity: resume the shard this worker last served so
        # the cost-balanced grouping stays a grouping.
        preferred = self._shard_affinity.get(job.job_id)
        if preferred is not None:
            shards.sort(key=lambda s: (s.index != preferred, s.index))
        for shard in shards:
            for entry in manifest.shard_cells(shard):
                if (
                    entry.fingerprint in done
                    or entry.fingerprint in fails
                ):
                    continue
                if self.queue.acquire(
                    entry.fingerprint,
                    entry.label,
                    job.job_id,
                    self.worker_id,
                ):
                    self._shard_affinity[job.job_id] = shard.index
                    return entry
        return None

    def run_once(self) -> str | None:
        """Serve one cell from the fairest job; its label, or None."""
        for job in self._job_ring():
            entry = self._claim(job)
            if entry is None:
                continue
            self._served[job.job_id] = (
                self._served.get(job.job_id, 0) + 1
            )
            faults.fire_worker(entry.label)
            self._execute(job, entry)
            return entry.label
        return None

    def serve(
        self,
        poll_seconds: float = 0.5,
        max_cells: int | None = None,
        idle_rounds: int = 3,
    ) -> int:
        """Run cells until ``max_cells`` or the queue stays empty.

        ``idle_rounds`` consecutive empty polls end the loop (pass a
        large value for a long-lived daemon worker); returns the number
        of cells this worker completed or finalised as failed.
        """
        ran = 0
        idle = 0
        while True:
            label = self.run_once()
            if label is None:
                idle += 1
                if idle >= idle_rounds:
                    return ran
                time.sleep(poll_seconds)
                continue
            idle = 0
            ran += 1
            if max_cells is not None and ran >= max_cells:
                return ran

    # -- execution ----------------------------------------------------

    def _execute(self, job: JobRecord, entry: mf.ManifestCell) -> None:
        """Run one leased cell with retries under a heartbeat.

        When the heartbeat declares the lease lost (``lost`` set after
        repeated renewal failures), nothing is published: a checkpoint
        record or fail marker written by a worker that no longer holds
        the cell would race the worker that re-leased it.
        """
        stop = threading.Event()
        lost = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat,
            args=(entry, job.job_id, stop, lost),
            daemon=True,
        )
        beat.start()
        try:
            retries = max(self.retry.retries, job.spec.retries)
            attempts = 0
            while True:
                if lost.is_set():
                    self._abandon(job, entry)
                    return
                attempts += 1
                started = time.perf_counter()
                try:
                    outcome = _run_cell_instrumented(
                        entry.cell, attempts
                    )
                except Exception as exc:
                    wall = time.perf_counter() - started
                    final = attempts > retries
                    self.metrics.cell_attempt(
                        entry.label,
                        status="error",
                        attempt=attempts,
                        wall_seconds=wall,
                        final=final,
                        worker_pid=os.getpid(),
                        error=repr(exc),
                    )
                    if not final:
                        time.sleep(_backoff(self.retry, attempts))
                        continue
                    if lost.is_set():
                        self._abandon(job, entry)
                        return
                    mf.write_fail(
                        self.root,
                        job.job_id,
                        entry.fingerprint,
                        CellFailure(
                            label=entry.label,
                            kind="error",
                            error=repr(exc),
                            attempts=attempts,
                            wall_seconds=wall,
                        ),
                    )
                    self.metrics.lease_event(
                        entry.label,
                        "failed",
                        entry.fingerprint,
                        worker=self.worker_id,
                        job=job.job_id,
                    )
                    return
                else:
                    self.metrics.cell_attempt(
                        entry.label,
                        status="ok",
                        attempt=attempts,
                        wall_seconds=outcome.wall_seconds,
                        worker_pid=outcome.worker_pid,
                        cache=outcome.cache,
                    )
                    if lost.is_set():
                        self._abandon(job, entry)
                        return
                    saved = self.store.save(
                        entry.fingerprint,
                        entry.label,
                        job.spec.experiment,
                        outcome.payload,
                    )
                    self.metrics.checkpoint_event(
                        entry.label,
                        "saved" if saved else "save-failed",
                        entry.fingerprint,
                    )
                    self.metrics.lease_event(
                        entry.label,
                        "completed",
                        entry.fingerprint,
                        worker=self.worker_id,
                        job=job.job_id,
                    )
                    return
        finally:
            stop.set()
            beat.join(timeout=5.0)
            self.queue.release(entry.fingerprint, self.worker_id)

    def _abandon(self, job: JobRecord, entry: mf.ManifestCell) -> None:
        """Walk away from a cell whose lease this worker lost.

        Publishes nothing — no checkpoint record, no fail marker —
        because whoever re-leases the cell owns its outcome now. The
        cell stays open (or already belongs to the thief), so no work
        is lost, only the duplicate publication.
        """
        self.metrics.lease_event(
            entry.label,
            "abandoned",
            entry.fingerprint,
            worker=self.worker_id,
            job=job.job_id,
        )

    def _heartbeat(
        self,
        entry: mf.ManifestCell,
        job_id: str,
        stop: threading.Event,
        lost: threading.Event,
    ) -> None:
        """Renew the lease at a third of its TTL until told to stop.

        A renewal can fail because ownership moved (the lease expired
        while this worker was descheduled and someone stole it) or
        because the write itself failed (ENOSPC, queue directory
        removed). Either way the lease is dying under a live worker:
        after ``renew_failure_threshold`` consecutive failures the
        thread sets ``lost`` and exits, and the executor abandons the
        cell instead of publishing a result it no longer owns.
        """
        interval = max(self.queue.ttl_seconds / 3.0, 0.05)
        failures = 0
        while not stop.wait(interval):
            if self.queue.renew(
                entry.fingerprint, entry.label, job_id, self.worker_id
            ):
                failures = 0
                continue
            failures += 1
            if failures >= self.renew_failure_threshold:
                lost.set()
                return
