"""The sweep worker: fairly lease cells, run them, persist records.

A worker is one process on one host. Each ``run_once``:

1. Picks the running job this worker has served *least* (ties go to
   the older submission) — the fair round-robin that keeps two tenants'
   concurrent sweeps interleaving instead of queueing behind each
   other.
2. Walks that job's shards in order, preferring to stay on a shard it
   already works (shard affinity keeps the cost-balanced grouping
   meaningful) and leases the first open cell: no checkpoint record, no
   fail marker, no live lease. Expired leases are stolen — unless the
   expired claim's cross-steal attempt counter has reached
   ``max_lease_attempts``, in which case the cell is *quarantined*: a
   poison cell that kills every worker that leases it is finalised as a
   typed ``quarantined`` fail marker instead of crash-looping the fleet
   forever. Known-failed fingerprints are memoised per job, so a claim
   pass stats at most one new marker per candidate cell instead of
   rescanning the whole fails directory.
3. Runs the cell in-process with the engine's retry discipline, under a
   heartbeat thread that renews the lease for as long as the cell
   takes.
4. Publishes the result as an ordinary checkpoint record — the durable
   "done" bit every other participant polls — and releases the lease.
   A failure that survives the retry budget becomes a job-scoped fail
   marker instead. Before *any* publication the worker re-confirms it
   still owns the lease (`queue.owns`): a zombie worker — one that hung
   past its TTL, lost the lease to a thief, and woke up again — walks
   away instead of overwriting what the thief published.

Graceful drain: :meth:`Worker.request_drain` (wired to SIGTERM/SIGINT
by the CLI) lets the in-flight cell finish, then stops the serve loop
before the next claim — leases are released by the normal completion
path and the exit is clean.

Chaos hooks: :func:`repro.evalx.faults.fire` runs at the top of every
cell attempt exactly as in pooled runs (``raise``/``hang``/``kill``),
and :func:`repro.evalx.faults.fire_worker` runs right after a lease is
acquired — with the lease's attempt generation, so ``kill-worker@X~0``
kills *every* worker that ever leases X (a poison cell) — and a
planned ``kill-worker`` fault dies holding a live lease, the precise
crash the expiry/steal path exists to repair.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from pathlib import Path

from repro.evalx import faults
from repro.evalx.checkpoint import CheckpointStore
from repro.evalx.metrics import RunMetrics
from repro.evalx.parallel import (
    CellFailure,
    RetryPolicy,
    _backoff,
    _run_cell_instrumented,
)
from repro.evalx.service import manifest as mf
from repro.evalx.service.jobs import JobRecord, JobStore
from repro.evalx.service.queue import (
    DEFAULT_TTL_SECONDS,
    Lease,
    LeaseQueue,
)


def default_worker_id() -> str:
    """``host:pid`` — unique per live worker process across hosts."""
    return f"{socket.gethostname()}:{os.getpid()}"


#: Consecutive failed lease renewals before a worker concludes it no
#: longer holds the cell. Three beats at TTL/3 means ownership is
#: declared lost right around the moment the unrenewed lease actually
#: expires and becomes stealable.
RENEW_FAILURE_THRESHOLD = 3

#: Lease generations (fresh claim + steals) a cell may burn before it
#: is quarantined. Three mirrors the engine's renew threshold: worker
#: deaths are rare and independent, so three in a row on one cell is a
#: poison cell, not bad luck.
DEFAULT_MAX_LEASE_ATTEMPTS = 3


class Worker:
    """One lease-and-run loop over a shared service directory.

    Args:
        root: The shared service directory.
        worker_id: Lease-ownership identity; defaults to ``host:pid``.
        ttl_seconds: Lease lifetime between heartbeats.
        retry: Engine retry policy for in-process attempts (the
            per-cell timeout is not enforced here, like the serial
            path; a dead worker is handled by lease expiry instead).
        metrics: Optional recorder (cell attempts + lease events).
        renew_failure_threshold: Consecutive heartbeat renewal
            failures after which the worker treats its lease as lost
            and abandons the cell instead of publishing.
        max_lease_attempts: Lease generations (fresh + steals) a cell
            may burn before this worker quarantines it instead of
            stealing the expired claim.
    """

    def __init__(
        self,
        root: str | Path,
        worker_id: str | None = None,
        ttl_seconds: float = DEFAULT_TTL_SECONDS,
        retry: RetryPolicy | None = None,
        metrics: RunMetrics | None = None,
        renew_failure_threshold: int = RENEW_FAILURE_THRESHOLD,
        max_lease_attempts: int = DEFAULT_MAX_LEASE_ATTEMPTS,
    ) -> None:
        self.root = Path(root)
        self.worker_id = worker_id or default_worker_id()
        self.jobs = JobStore(self.root)
        self.store = CheckpointStore(self.root / "store", resume=True)
        self.metrics = metrics or RunMetrics.disabled()
        self.queue = LeaseQueue(
            self.store, ttl_seconds=ttl_seconds, metrics=self.metrics
        )
        self.retry = retry or RetryPolicy()
        self.renew_failure_threshold = max(1, renew_failure_threshold)
        self.max_lease_attempts = max(1, max_lease_attempts)
        self._served: dict[str, int] = {}
        self._shard_affinity: dict[str, int] = {}
        # Per-job memo of fingerprints with a recorded fail marker, so
        # a claim pass checks one path per candidate instead of
        # re-globbing the fails directory every time.
        self._failed: dict[str, set[str]] = {}
        self._drain = threading.Event()

    # -- scheduling ---------------------------------------------------

    def _job_ring(self) -> list[JobRecord]:
        """Running jobs, least-served by this worker first."""
        running = self.jobs.list_jobs(state="running")
        return sorted(
            running,
            key=lambda r: (
                self._served.get(r.job_id, 0),
                r.submitted_ts,
                r.job_id,
            ),
        )

    def _is_failed(self, job_id: str, fingerprint: str) -> bool:
        """Whether the cell already has a final fail marker.

        Positive answers are memoised (markers are never retracted
        within a job), so steady-state claims cost one ``stat`` per
        still-open candidate rather than a directory glob per claim.
        """
        memo = self._failed.setdefault(job_id, set())
        if fingerprint in memo:
            return True
        if mf.fail_path(self.root, job_id, fingerprint).exists():
            memo.add(fingerprint)
            return True
        return False

    def _claim(
        self, job: JobRecord
    ) -> tuple[mf.ManifestCell, Lease] | None:
        """Lease the next open cell of one job, or None.

        An expired lease whose attempt counter has reached
        ``max_lease_attempts`` marks a poison cell: instead of stealing
        it (and probably dying like the previous owners), the cell is
        quarantined with a typed fail marker and skipped.
        """
        try:
            manifest = mf.read_manifest(self.root, job.job_id)
        except mf.ManifestError:
            return None
        shards = list(manifest.shards)
        # Shard affinity: resume the shard this worker last served so
        # the cost-balanced grouping stays a grouping.
        preferred = self._shard_affinity.get(job.job_id)
        if preferred is not None:
            shards.sort(key=lambda s: (s.index != preferred, s.index))
        for shard in shards:
            for entry in manifest.shard_cells(shard):
                if self._is_failed(job.job_id, entry.fingerprint):
                    continue
                if self.store.has(entry.fingerprint):
                    continue
                current = self.queue.read(entry.fingerprint)
                if (
                    current is not None
                    and current.expired()
                    and current.attempt >= self.max_lease_attempts
                ):
                    self._quarantine(job, entry, current)
                    continue
                lease = self.queue.acquire(
                    entry.fingerprint,
                    entry.label,
                    job.job_id,
                    self.worker_id,
                )
                if lease is not None:
                    self._shard_affinity[job.job_id] = shard.index
                    return entry, lease
        return None

    def _quarantine(
        self, job: JobRecord, entry: mf.ManifestCell, lease: Lease
    ) -> None:
        """Finalise a poison cell as failed instead of re-leasing it.

        First writer wins on the marker, so of N workers noticing the
        exhausted claim at once exactly one records the quarantine (and
        clears the dead lease); the rest just memoise the marker.
        """
        failure = CellFailure(
            label=entry.label,
            kind=mf.QUARANTINED,
            error=(
                f"cell burned {lease.attempt} lease attempt(s) — its "
                "workers keep dying or losing the lease; quarantined "
                f"at the {self.max_lease_attempts}-attempt threshold "
                "instead of being re-leased"
            ),
            attempts=lease.attempt,
            wall_seconds=0.0,
        )
        if mf.write_fail(
            self.root, job.job_id, entry.fingerprint, failure
        ):
            self.metrics.lease_event(
                entry.label,
                "quarantined",
                entry.fingerprint,
                worker=self.worker_id,
                job=job.job_id,
            )
            self.queue.clear(entry.fingerprint)
        self._failed.setdefault(job.job_id, set()).add(
            entry.fingerprint
        )

    def run_once(self) -> str | None:
        """Serve one cell from the fairest job; its label, or None."""
        for job in self._job_ring():
            claimed = self._claim(job)
            if claimed is None:
                continue
            entry, lease = claimed
            self._served[job.job_id] = (
                self._served.get(job.job_id, 0) + 1
            )
            faults.fire_worker(entry.label, attempt=lease.attempt)
            self._execute(job, entry)
            return entry.label
        return None

    def request_drain(self) -> None:
        """Ask :meth:`serve` to stop once in-flight work finishes.

        Signal-safe (a bare ``Event.set``), so the CLI's SIGTERM/SIGINT
        handlers call it directly: the current cell runs to completion
        (or is abandoned by the normal ownership checks), its lease is
        released on the usual path, and the loop exits cleanly instead
        of leasing another cell.
        """
        self._drain.set()

    @property
    def draining(self) -> bool:
        return self._drain.is_set()

    def serve(
        self,
        poll_seconds: float = 0.5,
        max_cells: int | None = None,
        idle_rounds: int = 3,
    ) -> int:
        """Run cells until ``max_cells``, a drain, or an empty queue.

        ``idle_rounds`` consecutive empty polls end the loop (pass a
        large value for a long-lived daemon worker); returns the number
        of cells this worker completed or finalised as failed.
        """
        ran = 0
        idle = 0
        while not self._drain.is_set():
            label = self.run_once()
            if label is None:
                idle += 1
                if idle >= idle_rounds:
                    return ran
                if self._drain.wait(poll_seconds):
                    return ran
                continue
            idle = 0
            ran += 1
            if max_cells is not None and ran >= max_cells:
                return ran
        return ran

    # -- execution ----------------------------------------------------

    def _execute(self, job: JobRecord, entry: mf.ManifestCell) -> None:
        """Run one leased cell with retries under a heartbeat.

        When the heartbeat declares the lease lost (``lost`` set after
        repeated renewal failures), nothing is published: a checkpoint
        record or fail marker written by a worker that no longer holds
        the cell would race the worker that re-leased it. Ownership is
        additionally re-probed on disk (`queue.owns`) right before each
        publication: a zombie worker frozen past its TTL can wake and
        reach this point *before* its heartbeat accumulates enough
        failures to set ``lost``, and must still not overwrite whatever
        the thief published.
        """
        stop = threading.Event()
        lost = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat,
            args=(entry, job.job_id, stop, lost),
            daemon=True,
        )
        beat.start()
        try:
            retries = max(self.retry.retries, job.spec.retries)
            attempts = 0
            while True:
                if lost.is_set():
                    self._abandon(job, entry)
                    return
                attempts += 1
                started = time.perf_counter()
                try:
                    outcome = _run_cell_instrumented(
                        entry.cell, attempts
                    )
                except Exception as exc:
                    wall = time.perf_counter() - started
                    final = attempts > retries
                    self.metrics.cell_attempt(
                        entry.label,
                        status="error",
                        attempt=attempts,
                        wall_seconds=wall,
                        final=final,
                        worker_pid=os.getpid(),
                        error=repr(exc),
                    )
                    if not final:
                        time.sleep(_backoff(self.retry, attempts))
                        continue
                    if lost.is_set():
                        self._abandon(job, entry)
                        return
                    if not self.queue.owns(
                        entry.fingerprint, self.worker_id
                    ):
                        self._abandon(job, entry)
                        return
                    published = mf.write_fail(
                        self.root,
                        job.job_id,
                        entry.fingerprint,
                        CellFailure(
                            label=entry.label,
                            kind="error",
                            error=repr(exc),
                            attempts=attempts,
                            wall_seconds=wall,
                        ),
                    )
                    if not published:
                        # Someone else's marker is already final.
                        self._abandon(job, entry)
                        return
                    self.metrics.lease_event(
                        entry.label,
                        "failed",
                        entry.fingerprint,
                        worker=self.worker_id,
                        job=job.job_id,
                    )
                    return
                else:
                    self.metrics.cell_attempt(
                        entry.label,
                        status="ok",
                        attempt=attempts,
                        wall_seconds=outcome.wall_seconds,
                        worker_pid=outcome.worker_pid,
                        cache=outcome.cache,
                    )
                    if lost.is_set():
                        self._abandon(job, entry)
                        return
                    if not self.queue.owns(
                        entry.fingerprint, self.worker_id
                    ):
                        self._abandon(job, entry)
                        return
                    saved = self.store.save(
                        entry.fingerprint,
                        entry.label,
                        job.spec.experiment,
                        outcome.payload,
                    )
                    self.metrics.checkpoint_event(
                        entry.label,
                        "saved" if saved else "save-failed",
                        entry.fingerprint,
                    )
                    self.metrics.lease_event(
                        entry.label,
                        "completed",
                        entry.fingerprint,
                        worker=self.worker_id,
                        job=job.job_id,
                    )
                    return
        finally:
            stop.set()
            beat.join(timeout=5.0)
            self.queue.release(entry.fingerprint, self.worker_id)

    def _abandon(self, job: JobRecord, entry: mf.ManifestCell) -> None:
        """Walk away from a cell whose lease this worker lost.

        Publishes nothing — no checkpoint record, no fail marker —
        because whoever re-leases the cell owns its outcome now. The
        cell stays open (or already belongs to the thief), so no work
        is lost, only the duplicate publication.
        """
        self.metrics.lease_event(
            entry.label,
            "abandoned",
            entry.fingerprint,
            worker=self.worker_id,
            job=job.job_id,
        )

    def _heartbeat(
        self,
        entry: mf.ManifestCell,
        job_id: str,
        stop: threading.Event,
        lost: threading.Event,
    ) -> None:
        """Renew the lease at a third of its TTL until told to stop.

        A renewal can fail because ownership moved (the lease expired
        while this worker was descheduled and someone stole it) or
        because the write itself failed (ENOSPC, queue directory
        removed). Either way the lease is dying under a live worker:
        after ``renew_failure_threshold`` consecutive failures the
        thread sets ``lost`` and exits, and the executor abandons the
        cell instead of publishing a result it no longer owns.
        """
        interval = max(self.queue.ttl_seconds / 3.0, 0.05)
        failures = 0
        while not stop.wait(interval):
            if self.queue.renew(
                entry.fingerprint, entry.label, job_id, self.worker_id
            ):
                failures = 0
                continue
            failures += 1
            if failures >= self.renew_failure_threshold:
                lost.set()
                return
