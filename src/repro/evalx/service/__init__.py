"""Distributed sweep service: lease cells to multi-host workers.

The cells/combine protocol (:mod:`repro.evalx.parallel`) plus the
content-addressed checkpoint store (:mod:`repro.evalx.checkpoint`) is
already a work-queue substrate: a cell fingerprint is a task id and a
checkpoint record is its durable result. This package layers the three
missing pieces on top and turns the single-host engine into a
multi-tenant service:

* **Lease queue** (:mod:`~repro.evalx.service.queue`) — workers claim a
  cell by atomically creating ``<fingerprint>.lease.json`` next to the
  record it will become; a heartbeat thread renews the lease while the
  cell runs, and a lease whose renewal stops (worker SIGKILLed, host
  lost) expires and is stolen by a surviving worker. A *completed*
  lease is just the existing atomic ``.ckpt.json`` record, so
  crash-recovery and byte-identical resume come for free. Leases are an
  anti-duplication optimisation, never a correctness mechanism: results
  are content-addressed and idempotent, so the worst a lost race costs
  is one duplicate execution.
* **Cost-model partitioner** (:mod:`~repro.evalx.service.costs`) — the
  coordinator estimates each cell as *trace length x config weight*
  (weights calibrated from :class:`~repro.evalx.metrics.RunMetrics`
  wall-time records) and packs cells into balanced shards (LPT greedy)
  instead of fanning out blindly; a shard is the unit of worker
  affinity, a cell the unit of leasing.
* **Async job API** (:mod:`~repro.evalx.service.jobs`,
  :mod:`~repro.evalx.service.coordinator`) — ``submit(sweep) -> job
  id``, ``status(job)``, ``fetch(job) -> ExperimentResult``, with fair
  round-robin scheduling across concurrent tenants: a worker always
  serves the job it has served least, so two tenants submitting at once
  see interleaved progress, not head-of-line blocking.

Everything is plain files under one service directory, so "multi-host"
means "hosts sharing a filesystem" (NFS, a CI workspace, one box with
many processes) with reasonably synchronised clocks for lease expiry::

    <root>/
      jobs/    <id>.job.json          job record (state machine)
               <id>.result.pkl        combined ExperimentResult
      queue/   <id>/manifest.json     cells + fingerprints + shards
               <id>/fails/<fp>.json   final per-cell failure markers
      store/   <fp>.ckpt.json         completed-cell records (PR 4)
               <fp>.lease.json        in-flight claims

CLI entry points: ``repro-sweep`` (submit/status/fetch),
``repro-sweep-coordinator`` and ``repro-sweep-worker`` (or
``python -m repro.evalx.service <command>``).
"""

from __future__ import annotations

from repro.evalx.service.coordinator import Coordinator
from repro.evalx.service.costs import CostModel, Shard, shard_cells
from repro.evalx.service.jobs import (
    TERMINAL_STATES,
    JobError,
    JobSpec,
    JobStatus,
    JobStore,
)
from repro.evalx.service.queue import Lease, LeaseQueue
from repro.evalx.service.worker import DEFAULT_MAX_LEASE_ATTEMPTS, Worker

__all__ = [
    "Coordinator",
    "CostModel",
    "DEFAULT_MAX_LEASE_ATTEMPTS",
    "JobError",
    "JobSpec",
    "JobStatus",
    "JobStore",
    "Lease",
    "LeaseQueue",
    "Shard",
    "TERMINAL_STATES",
    "Worker",
    "shard_cells",
]
