"""Sweep-service CLI: ``python -m repro.evalx.service <command>``.

Commands::

    submit  EXPERIMENT --dir DIR [--tasks N --quick --keep-going
            --retries N --tenant NAME --params JSON --job-timeout S]
                                                -> prints the job id
    status  --dir DIR [JOB_ID]                  -> one line per job
    fetch   --dir DIR JOB_ID [--wait [--timeout S]]
                                                -> prints the report
    cancel  --dir DIR JOB_ID [--reason TEXT --metrics FILE]
                                                -> terminal `cancelled`
    coordinator --dir DIR [--poll S --shards N --exit-when-idle
            --rounds N --calibrate-metrics FILE... --metrics FILE
            --inject-faults SPEC --fault-seed N]
    worker  --dir DIR [--worker-id ID --ttl S --poll S --max-cells N
            --idle-rounds N --retries N --retry-backoff S
            --max-lease-attempts N --metrics FILE
            --inject-faults SPEC --fault-seed N]

The console scripts ``repro-sweep``, ``repro-sweep-coordinator`` and
``repro-sweep-worker`` map to the same commands.

The worker and coordinator loops drain gracefully: the first
SIGTERM/SIGINT finishes (or abandons) the in-flight work, releases
leases on the normal path, records a ``drain`` metrics event, and
exits 0; a second signal interrupts immediately.
"""

from __future__ import annotations

import argparse
import contextlib
import signal
import sys
import threading
import time


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evalx.service",
        description=(
            "Distributed sweep service: submit sweeps as jobs, lease "
            "their cells to workers over a shared directory, fetch "
            "byte-identical results."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_dir(p):
        p.add_argument(
            "--dir", required=True, metavar="DIR",
            help="shared service directory (jobs/, queue/, store/)",
        )

    submit = sub.add_parser("submit", help="enqueue one sweep as a job")
    add_dir(submit)
    submit.add_argument(
        "experiment",
        help="experiment id to sweep (e.g. table2, table4, figure7)",
    )
    submit.add_argument("--tasks", type=int, default=None)
    submit.add_argument("--quick", action="store_true")
    submit.add_argument(
        "--keep-going", action="store_true",
        help="degrade failed cells to report gaps instead of failing "
        "the job",
    )
    submit.add_argument(
        "--retries", type=int, default=0,
        help="extra attempts workers grant each failing cell",
    )
    submit.add_argument(
        "--tenant", default="default",
        help="tenant name for fair scheduling across submitters",
    )
    submit.add_argument(
        "--params", default=None, metavar="JSON",
        help="extra driver keyword arguments as a JSON object (e.g. "
        '\'{"configs": [...]}\' for a tune_rung job)',
    )
    submit.add_argument(
        "--job-timeout", type=float, default=None, metavar="S",
        help="wall-clock deadline from submission; the coordinator "
        "retires the job to the terminal 'expired' state past it",
    )

    status = sub.add_parser("status", help="poll job progress")
    add_dir(status)
    status.add_argument("job_id", nargs="?", default=None)

    cancel = sub.add_parser(
        "cancel", help="move an in-flight job to 'cancelled'"
    )
    add_dir(cancel)
    cancel.add_argument("job_id")
    cancel.add_argument(
        "--reason", default="",
        help="recorded in the job record's error field",
    )
    cancel.add_argument("--metrics", default=None, metavar="FILE")

    fetch = sub.add_parser("fetch", help="print a finished job's report")
    add_dir(fetch)
    fetch.add_argument("job_id")
    fetch.add_argument(
        "--wait", action="store_true",
        help="block until the job resolves instead of failing fast",
    )
    fetch.add_argument(
        "--timeout", type=float, default=600.0,
        help="give up waiting after this many seconds (default 600)",
    )

    coord = sub.add_parser(
        "coordinator", help="run the job coordinator loop"
    )
    add_dir(coord)
    coord.add_argument("--poll", type=float, default=0.5)
    coord.add_argument(
        "--shards", type=int, default=None,
        help="shards per job (default 4); the cost model balances them",
    )
    coord.add_argument(
        "--exit-when-idle", action="store_true",
        help="return once no job is submitted or running",
    )
    coord.add_argument(
        "--rounds", type=int, default=None,
        help="stop after N scheduling passes (default: run forever)",
    )
    coord.add_argument(
        "--calibrate-metrics", nargs="*", default=(), metavar="FILE",
        help="RunMetrics JSONL files to calibrate cell-cost weights "
        "from",
    )
    coord.add_argument("--metrics", default=None, metavar="FILE")
    coord.add_argument(
        "--inject-faults", default=None, metavar="SPEC",
        help="chaos harness for the coordinator path: stage labels "
        "'expand:<job_id>' and 'finalise:<job_id>' target the crash "
        "windows between a durable artifact and its record update; "
        "inert unless given",
    )
    coord.add_argument("--fault-seed", type=int, default=0)

    worker = sub.add_parser("worker", help="run one sweep worker loop")
    add_dir(worker)
    worker.add_argument("--worker-id", default=None)
    worker.add_argument(
        "--ttl", type=float, default=30.0,
        help="lease lifetime between heartbeats (default 30s)",
    )
    worker.add_argument("--poll", type=float, default=0.5)
    worker.add_argument(
        "--max-cells", type=int, default=None,
        help="exit after completing N cells",
    )
    worker.add_argument(
        "--idle-rounds", type=int, default=3,
        help="exit after N consecutive empty polls (default 3)",
    )
    worker.add_argument("--retries", type=int, default=0)
    worker.add_argument("--retry-backoff", type=float, default=0.25)
    worker.add_argument(
        "--max-lease-attempts", type=int, default=None,
        help="lease generations (fresh + steals) before a cell is "
        "quarantined as poison (default 3)",
    )
    worker.add_argument("--metrics", default=None, metavar="FILE")
    worker.add_argument(
        "--inject-faults", default=None, metavar="SPEC",
        help="chaos harness for the distributed path (adds "
        "kill-worker to the single-host grammar); inert unless given",
    )
    worker.add_argument("--fault-seed", type=int, default=0)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


def _cmd_submit(args) -> int:
    import json

    from repro.evalx.registry import ALL_IDS
    from repro.evalx.service.jobs import JobSpec, JobStore

    if args.experiment not in ALL_IDS:
        print(
            f"error: unknown experiment {args.experiment!r}; known: "
            f"{', '.join(ALL_IDS)}",
            file=sys.stderr,
        )
        return 2
    params = {}
    if args.params:
        try:
            params = json.loads(args.params)
        except ValueError as exc:
            print(f"error: --params is not JSON: {exc}", file=sys.stderr)
            return 2
        if not isinstance(params, dict):
            print(
                "error: --params must be a JSON object", file=sys.stderr
            )
            return 2
    if args.job_timeout is not None and args.job_timeout <= 0:
        print(
            "error: --job-timeout must be > 0 seconds",
            file=sys.stderr,
        )
        return 2
    job_id = JobStore(args.dir).submit(
        JobSpec(
            experiment=args.experiment,
            n_tasks=args.tasks,
            quick=args.quick,
            keep_going=args.keep_going,
            retries=args.retries,
            tenant=args.tenant,
            params=params,
            timeout_seconds=args.job_timeout,
        )
    )
    print(job_id)
    return 0


def _cmd_status(args) -> int:
    from repro.evalx.service.coordinator import Coordinator
    from repro.evalx.service.jobs import JobError, JobStore

    coordinator = Coordinator(args.dir)
    if args.job_id is not None:
        try:
            print(coordinator.status(args.job_id).summary())
        except JobError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return 0
    records = JobStore(args.dir).list_jobs()
    if not records:
        print("no jobs")
        return 0
    for record in records:
        try:
            print(coordinator.status(record.job_id).summary())
        except JobError as exc:
            # Deleted or damaged between the listing and this poll.
            print(f"error: {exc}", file=sys.stderr)
    return 0


def _cmd_cancel(args) -> int:
    from repro.evalx.metrics import RunMetrics
    from repro.evalx.service.coordinator import Coordinator
    from repro.evalx.service.jobs import JobError

    with RunMetrics(path=args.metrics) as metrics:
        try:
            record = Coordinator(args.dir, metrics=metrics).cancel(
                args.job_id, reason=args.reason
            )
        except JobError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    print(f"{record.job_id} [cancelled] {record.error}")
    return 0


def _cmd_fetch(args) -> int:
    from repro.evalx.service.jobs import (
        TERMINAL_STATES,
        JobError,
        JobStore,
    )

    store = JobStore(args.dir)
    deadline = time.monotonic() + args.timeout
    while True:
        try:
            record = store.get(args.job_id)
        except JobError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if record.state in TERMINAL_STATES:
            break
        if not args.wait or time.monotonic() >= deadline:
            print(
                f"job {args.job_id} is {record.state}; use --wait or "
                "poll status",
                file=sys.stderr,
            )
            return 3
        time.sleep(0.5)
    try:
        result = store.fetch(args.job_id)
    except JobError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(result)
    if result.failures:
        print(
            f"warning: {len(result.failures)} cell(s) failed and were "
            "reported as gaps (keep-going job)",
            file=sys.stderr,
        )
        return 1
    return 0


@contextlib.contextmanager
def _drain_on_signals(request_drain):
    """Translate the first SIGTERM/SIGINT into a graceful drain.

    The first signal calls ``request_drain`` (a signal-safe Event set)
    so the serve loop finishes its in-flight work, releases leases on
    the normal path, and returns; its name is appended to the yielded
    list so the caller can record a ``drain`` metrics event. A second
    signal raises ``KeyboardInterrupt`` — the operator's escalation
    when the in-flight cell is wedged. No-op off the main thread
    (signal handlers can only be installed there), mirroring the
    engine's PR 4 interrupt handling.
    """
    received: list[str] = []
    if threading.current_thread() is not threading.main_thread():
        yield received
        return

    def _handler(signum, frame):
        if received:
            raise KeyboardInterrupt
        received.append(signal.Signals(signum).name)
        request_drain()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _handler)
        except (ValueError, OSError):  # pragma: no cover
            pass
    try:
        yield received
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)


def _cmd_coordinator(args) -> int:
    from repro.evalx.metrics import RunMetrics
    from repro.evalx.service.coordinator import (
        DEFAULT_SHARDS,
        Coordinator,
    )
    from repro.evalx.service.costs import CostModel

    if args.inject_faults:
        _arm_faults(args.dir, args.inject_faults, args.fault_seed)
    cost_model = (
        CostModel.from_metrics(args.calibrate_metrics)
        if args.calibrate_metrics
        else CostModel()
    )
    with RunMetrics(path=args.metrics) as metrics:
        coordinator = Coordinator(
            args.dir,
            cost_model=cost_model,
            n_shards=args.shards or DEFAULT_SHARDS,
            metrics=metrics,
        )
        with _drain_on_signals(coordinator.request_drain) as received:
            coordinator.serve(
                poll_seconds=args.poll,
                exit_when_idle=args.exit_when_idle,
                max_rounds=args.rounds,
            )
        if received:
            metrics.drain_event("coordinator", received[0])
    if received:
        print(
            f"[coordinator drained after {received[0]}]",
            file=sys.stderr,
        )
    return 0


def _cmd_worker(args) -> int:
    from repro.evalx.metrics import RunMetrics
    from repro.evalx.parallel import RetryPolicy
    from repro.evalx.service.worker import (
        DEFAULT_MAX_LEASE_ATTEMPTS,
        Worker,
    )

    if args.ttl <= 0:
        print("error: --ttl must be > 0 seconds", file=sys.stderr)
        return 2
    if args.inject_faults:
        _arm_faults(args.dir, args.inject_faults, args.fault_seed)
    with RunMetrics(path=args.metrics) as metrics:
        worker = Worker(
            args.dir,
            worker_id=args.worker_id,
            ttl_seconds=args.ttl,
            retry=RetryPolicy(
                retries=args.retries,
                backoff_seconds=args.retry_backoff,
            ),
            metrics=metrics,
            max_lease_attempts=(
                args.max_lease_attempts
                if args.max_lease_attempts is not None
                else DEFAULT_MAX_LEASE_ATTEMPTS
            ),
        )
        with _drain_on_signals(worker.request_drain) as received:
            ran = worker.serve(
                poll_seconds=args.poll,
                max_cells=args.max_cells,
                idle_rounds=args.idle_rounds,
            )
        if received:
            metrics.drain_event("worker", received[0], served=ran)
    print(
        f"[worker {worker.worker_id} served {ran} cell(s)"
        + (f", drained after {received[0]}" if received else "")
        + "]",
        file=sys.stderr,
    )
    return 0


def _arm_faults(root: str, spec: str, seed: int) -> None:
    """Compile a chaos plan against queued cell + stage labels.

    The explicit ``--inject-faults`` opt-in mirrors the single-host
    CLI. Victim labels are drawn from whatever jobs exist when the
    process starts: every expanded manifest's cell labels (worker
    faults) plus the synthetic ``expand:<job_id>`` /
    ``finalise:<job_id>`` stage labels (coordinator crash windows).
    """
    from repro.evalx import faults
    from repro.evalx.service import manifest as mf
    from repro.evalx.service.jobs import JobStore

    labels: list[str] = []
    for record in JobStore(root).list_jobs():
        labels.append(f"expand:{record.job_id}")
        labels.append(f"finalise:{record.job_id}")
        try:
            manifest = mf.read_manifest(root, record.job_id)
        except mf.ManifestError:
            continue
        labels.extend(entry.label for entry in manifest.cells)
    plan = faults.FaultPlan.compile(spec, seed=seed, labels=labels)
    faults.install(plan)
    print(
        f"[fault injection armed: {len(plan.triggers)} trigger(s) "
        f"from spec {spec!r}, seed {seed}]",
        file=sys.stderr,
    )


_COMMANDS = {
    "submit": _cmd_submit,
    "status": _cmd_status,
    "cancel": _cmd_cancel,
    "fetch": _cmd_fetch,
    "coordinator": _cmd_coordinator,
    "worker": _cmd_worker,
}


def coordinator_main() -> int:
    """Console-script entry: ``repro-sweep-coordinator``."""
    return main(["coordinator", *sys.argv[1:]])


def worker_main() -> int:
    """Console-script entry: ``repro-sweep-worker``."""
    return main(["worker", *sys.argv[1:]])


if __name__ == "__main__":
    sys.exit(main())
