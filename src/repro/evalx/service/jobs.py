"""Job records and the async job API's durable state machine.

A job is one submitted sweep. Its record is a small JSON file whose
``state`` walks ``submitted -> running -> done | failed | cancelled |
expired``:

* ``submitted`` — written by :meth:`JobStore.submit` (any tenant, any
  host); carries only the sweep spec.
* ``running`` — the coordinator expanded the sweep into cells, wrote
  the queue manifest, and workers may now lease.
* ``done`` — every cell resolved; the combined
  :class:`~repro.evalx.result.ExperimentResult` sits in
  ``<id>.result.pkl`` for :meth:`JobStore.fetch`.
* ``failed`` — a cell's failure became final without ``keep_going``,
  or the sweep could not be expanded; ``error`` says why.
* ``cancelled`` — an operator called :meth:`JobStore.cancel` (or the
  CLI ``cancel`` command) before the job resolved.
* ``expired`` — the job outlived its ``timeout_seconds`` deadline and
  the coordinator retired it.

``done``/``failed``/``cancelled``/``expired`` are terminal
(:data:`TERMINAL_STATES`): the coordinator never expands or finalises
a terminal job, and workers only lease cells of ``running`` jobs — so
cancelling or expiring a job stops further work as soon as each
participant's next poll, and any in-flight leases simply expire.

All writes are atomic (tmp + ``os.replace``), so a coordinator or
client crash never leaves a half-written record, and concurrent
``status`` polls always see a consistent state. Every malformed,
unknown, or concurrently-deleted record surfaces as a typed
:class:`JobError` — never a raw ``KeyError``/``FileNotFoundError``.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.evalx.result import ExperimentResult
from repro.utils.fsio import fsync_write_bytes, fsync_write_text

#: Job records are ``<job_id>.job.json`` under ``<root>/jobs``.
JOB_SUFFIX = ".job.json"

#: Combined results are pickled next to the record.
RESULT_SUFFIX = ".result.pkl"

JOB_STATES = (
    "submitted",
    "running",
    "done",
    "failed",
    "cancelled",
    "expired",
)

#: States a job never leaves; the coordinator skips these entirely.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled", "expired"})


class JobError(ReproError):
    """A job id is unknown, or an operation is invalid in its state."""


@dataclass(frozen=True)
class JobSpec:
    """What one tenant asked the service to run.

    Mirrors the ``run_sharded`` surface so a job's result is
    byte-identical to a local run of the same sweep. ``params`` holds
    extra driver keyword arguments (e.g. the autotuner's ``configs``
    and ``benchmarks`` for a ``tune_rung`` job) and must stay
    JSON-serialisable — it is stored verbatim in the job record and
    passed to both ``cells`` and ``combine``.
    """

    experiment: str
    n_tasks: int | None = None
    quick: bool = False
    keep_going: bool = False
    retries: int = 0
    tenant: str = "default"
    params: dict[str, Any] = field(default_factory=dict)
    #: Wall-clock deadline measured from submission; ``None`` (the
    #: default) means the job may run forever. The coordinator moves a
    #: job past its deadline to the terminal ``expired`` state.
    timeout_seconds: float | None = None


@dataclass(frozen=True)
class JobStatus:
    """One poll of a job: state plus live cell-level progress."""

    job_id: str
    state: str
    tenant: str
    experiment: str
    cells_total: int = 0
    cells_done: int = 0
    cells_failed: int = 0
    cells_leased: int = 0
    shards: int = 0
    error: str = ""

    def summary(self) -> str:
        line = (
            f"{self.job_id} [{self.state}] {self.experiment} "
            f"(tenant {self.tenant}): {self.cells_done}/"
            f"{self.cells_total} cells done"
        )
        if self.cells_leased:
            line += f", {self.cells_leased} leased"
        if self.cells_failed:
            line += f", {self.cells_failed} failed"
        if self.error:
            line += f" — {self.error}"
        return line


@dataclass
class JobRecord:
    """The on-disk job record (state machine + spec + bookkeeping)."""

    job_id: str
    state: str
    spec: JobSpec
    submitted_ts: float
    cells_total: int = 0
    shards: int = 0
    estimated_cost: float = 0.0
    error: str = ""
    extra: dict[str, Any] = field(default_factory=dict)


class JobStore:
    """Atomic JSON job records under ``<root>/jobs``."""

    def __init__(self, root: str | Path) -> None:
        self.directory = Path(root) / "jobs"

    # -- the tenant-facing API ---------------------------------------

    def submit(self, spec: JobSpec) -> str:
        """Durably enqueue a sweep; returns the new job id.

        The id embeds the tenant (readable in listings) plus enough
        randomness that concurrent submitters on different hosts can
        never collide.
        """
        job_id = f"{spec.tenant}-{os.getpid():x}-{os.urandom(4).hex()}"
        record = JobRecord(
            job_id=job_id,
            state="submitted",
            spec=spec,
            submitted_ts=time.time(),
        )
        self._write(record)
        return job_id

    def fetch(self, job_id: str) -> ExperimentResult:
        """The finished job's combined result.

        Raises :class:`JobError` while the job is still in flight, or
        with the recorded error when it failed.
        """
        record = self.get(job_id)
        if record.state in ("failed", "cancelled", "expired"):
            raise JobError(
                f"job {job_id} {record.state}: "
                f"{record.error or 'no result was produced'}"
            )
        if record.state != "done":
            raise JobError(
                f"job {job_id} is {record.state}, not done; poll status"
            )
        path = self.result_path(job_id)
        try:
            with open(path, "rb") as handle:
                result = pickle.load(handle)
        except Exception as exc:
            # A damaged pickle raises essentially anything (EOFError,
            # UnpicklingError, AttributeError, UnicodeDecodeError...);
            # all of it means the same thing to the caller.
            raise JobError(
                f"job {job_id} result unreadable: {exc!r}"
            ) from exc
        if not isinstance(result, ExperimentResult):
            raise JobError(
                f"job {job_id} result has unexpected type "
                f"{type(result).__name__}"
            )
        return result

    def cancel(self, job_id: str, reason: str = "") -> JobRecord:
        """Move an in-flight job to the terminal ``cancelled`` state.

        Raises :class:`JobError` when the job is unknown or already
        terminal — cancelling a finished job would silently discard a
        result the tenant may be about to fetch. Workers stop serving
        the job at their next poll (only ``running`` jobs are leased);
        in-flight leases are left to expire on their own.
        """
        record = self.get(job_id)
        if record.state in TERMINAL_STATES:
            raise JobError(
                f"job {job_id} is already {record.state}; "
                "cannot cancel a terminal job"
            )
        return self.update(
            record,
            state="cancelled",
            error=reason or "cancelled by operator",
        )

    # -- record plumbing ---------------------------------------------

    def path_for(self, job_id: str) -> Path:
        return self.directory / f"{job_id}{JOB_SUFFIX}"

    def result_path(self, job_id: str) -> Path:
        return self.directory / f"{job_id}{RESULT_SUFFIX}"

    def get(self, job_id: str) -> JobRecord:
        """Load one job record, or raise a typed :class:`JobError`.

        Unknown ids, records deleted between the listing and this read,
        and structurally malformed records (valid JSON that is not a
        job record) all raise :class:`JobError` — callers never see a
        raw ``FileNotFoundError``/``KeyError``.
        """
        try:
            raw = self.path_for(job_id).read_text(encoding="utf-8")
            data = json.loads(raw)
        except FileNotFoundError:
            raise JobError(f"unknown job {job_id!r}") from None
        except (OSError, ValueError) as exc:
            raise JobError(
                f"job record for {job_id!r} unreadable: {exc}"
            ) from exc
        return self._decode(data, job_id=job_id)

    def list_jobs(self, state: str | None = None) -> list[JobRecord]:
        """All job records, oldest submission first (the fairness ring
        and every CLI listing share this order)."""
        records = []
        if self.directory.is_dir():
            for path in self.directory.glob(f"*{JOB_SUFFIX}"):
                if path.name.startswith("."):
                    continue
                try:
                    records.append(
                        self._decode(
                            json.loads(path.read_text(encoding="utf-8")),
                            job_id=path.name[: -len(JOB_SUFFIX)],
                        )
                    )
                except (OSError, ValueError, JobError):
                    continue  # torn/damaged by another writer; skip
        records.sort(key=lambda r: (r.submitted_ts, r.job_id))
        if state is not None:
            records = [r for r in records if r.state == state]
        return records

    def update(self, record: JobRecord, **fields: Any) -> JobRecord:
        """Persist a changed record (returns the new value)."""
        for name, value in fields.items():
            setattr(record, name, value)
        if record.state not in JOB_STATES:
            raise JobError(f"invalid job state {record.state!r}")
        self._write(record)
        return record

    def save_result(self, job_id: str, result: ExperimentResult) -> None:
        """Atomically publish a finished job's combined result."""
        path = self.result_path(job_id)
        tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        try:
            fsync_write_bytes(tmp, pickle.dumps(result))
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)
            raise

    def _write(self, record: JobRecord) -> None:
        data = {
            "job_id": record.job_id,
            "state": record.state,
            "spec": asdict(record.spec),
            "submitted_ts": record.submitted_ts,
            "cells_total": record.cells_total,
            "shards": record.shards,
            "estimated_cost": record.estimated_cost,
            "error": record.error,
            "extra": record.extra,
        }
        path = self.path_for(record.job_id)
        tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        self.directory.mkdir(parents=True, exist_ok=True)
        try:
            fsync_write_text(
                tmp, json.dumps(data, sort_keys=True) + "\n"
            )
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)
            raise

    @staticmethod
    def _decode(data: object, job_id: str = "?") -> JobRecord:
        """Turn parsed JSON into a record, or raise :class:`JobError`.

        Anything structurally wrong — non-object JSON (``null``, a
        list), missing required keys, uncastable field types — becomes
        a typed error naming the job, so a damaged record can never
        leak a raw ``KeyError``/``AttributeError``/``TypeError`` into
        ``get``/``fetch``/``status`` callers.
        """
        try:
            if not isinstance(data, dict):
                raise TypeError(
                    f"expected a JSON object, got "
                    f"{type(data).__name__}"
                )
            spec_data = dict(data.get("spec") or {})
            timeout = spec_data.get("timeout_seconds")
            spec = JobSpec(
                experiment=str(spec_data.get("experiment", "?")),
                n_tasks=spec_data.get("n_tasks"),
                quick=bool(spec_data.get("quick", False)),
                keep_going=bool(spec_data.get("keep_going", False)),
                retries=int(spec_data.get("retries", 0)),
                tenant=str(spec_data.get("tenant", "default")),
                params=dict(spec_data.get("params") or {}),
                timeout_seconds=(
                    None if timeout is None else float(timeout)
                ),
            )
            return JobRecord(
                job_id=str(data["job_id"]),
                state=str(data["state"]),
                spec=spec,
                submitted_ts=float(data.get("submitted_ts", 0.0)),
                cells_total=int(data.get("cells_total", 0)),
                shards=int(data.get("shards", 0)),
                estimated_cost=float(data.get("estimated_cost", 0.0)),
                error=str(data.get("error", "")),
                extra=dict(data.get("extra") or {}),
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise JobError(
                f"job record for {job_id!r} malformed: {exc!r}"
            ) from exc
