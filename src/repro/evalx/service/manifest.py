"""The queue manifest: one job's cells, fingerprints, and shards.

Written once by the coordinator when it expands a submitted job, read
by every worker that serves the job. Cells travel as base64 pickles
(module-level fn by reference + picklable kwargs — the same contract
the process-pool scheduler relies on), so workers need the same code
checkout, which a multi-host deployment of this repo has by
construction.

Final per-cell failures are job-scoped *fail markers* under
``<root>/queue/<job>/fails/<fingerprint>.json``: unlike results,
failures are environmental, so they must not be content-addressed into
the shared store where a later job with the same fingerprint would
inherit them.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.errors import ReproError
from repro.evalx.parallel import Cell, CellFailure
from repro.evalx.service.costs import Shard
from repro.utils.fsio import fsync_write_text

MANIFEST_NAME = "manifest.json"


class ManifestError(ReproError):
    """A queue manifest is missing or unreadable."""


@dataclass(frozen=True)
class ManifestCell:
    """One cell as listed in a job's manifest."""

    index: int
    label: str
    fingerprint: str
    cost: float
    cell: Cell


@dataclass(frozen=True)
class Manifest:
    """One expanded job: ordered cells plus their shard grouping."""

    job_id: str
    experiment: str
    cells: tuple[ManifestCell, ...]
    shards: tuple[Shard, ...]

    def shard_cells(self, shard: Shard) -> list[ManifestCell]:
        return [self.cells[i] for i in shard.cell_indices]


def queue_dir(root: str | Path, job_id: str) -> Path:
    return Path(root) / "queue" / job_id


def manifest_path(root: str | Path, job_id: str) -> Path:
    return queue_dir(root, job_id) / MANIFEST_NAME


def write_manifest(
    root: str | Path,
    job_id: str,
    experiment: str,
    cells: Sequence[Cell],
    fingerprints: Sequence[str],
    costs: Sequence[float],
    shards: Sequence[Shard],
) -> Path:
    """Atomically publish a job's expansion for workers to serve."""
    data = {
        "job": job_id,
        "experiment": experiment,
        "cells": [
            {
                "index": index,
                "label": cell.label,
                "fingerprint": fingerprints[index],
                "cost": costs[index],
                "pickle": base64.b64encode(pickle.dumps(cell)).decode(
                    "ascii"
                ),
            }
            for index, cell in enumerate(cells)
        ],
        "shards": [
            {
                "index": shard.index,
                "cells": list(shard.cell_indices),
                "estimated_cost": shard.estimated_cost,
            }
            for shard in shards
        ],
    }
    path = manifest_path(root, job_id)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{MANIFEST_NAME}.tmp-{os.getpid()}")
    try:
        fsync_write_text(tmp, json.dumps(data) + "\n")
        os.replace(tmp, path)
    except OSError:
        tmp.unlink(missing_ok=True)
        raise
    return path


def read_manifest(root: str | Path, job_id: str) -> Manifest:
    """Load a job's manifest (raises :class:`ManifestError` if absent)."""
    path = manifest_path(root, job_id)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
        cells = tuple(
            ManifestCell(
                index=int(entry["index"]),
                label=str(entry["label"]),
                fingerprint=str(entry["fingerprint"]),
                cost=float(entry["cost"]),
                cell=pickle.loads(base64.b64decode(entry["pickle"])),
            )
            for entry in data["cells"]
        )
        shards = tuple(
            Shard(
                index=int(entry["index"]),
                cell_indices=tuple(int(i) for i in entry["cells"]),
                estimated_cost=float(entry["estimated_cost"]),
            )
            for entry in data["shards"]
        )
    except (OSError, ValueError, KeyError, pickle.PickleError) as exc:
        raise ManifestError(
            f"queue manifest for job {job_id!r} unreadable: {exc!r}"
        ) from exc
    return Manifest(
        job_id=str(data.get("job", job_id)),
        experiment=str(data.get("experiment", "?")),
        cells=cells,
        shards=shards,
    )


# -- fail markers -----------------------------------------------------

#: ``CellFailure.kind`` for a cell quarantined by the lease attempt
#: policy: its workers kept dying, so it is finalised as failed instead
#: of being re-leased forever (see :mod:`repro.evalx.service.worker`).
QUARANTINED = "quarantined"


def fail_path(root: str | Path, job_id: str, fingerprint: str) -> Path:
    return queue_dir(root, job_id) / "fails" / f"{fingerprint}.json"


def write_fail(
    root: str | Path, job_id: str, fingerprint: str, failure: CellFailure
) -> bool:
    """Atomically record one cell's final failure (job-scoped).

    First writer wins: the marker is published with a hard link from a
    pid-unique temp, which atomically fails if a marker already exists.
    That keeps a zombie worker — one that hung past its lease and woke
    after the cell was re-served — from overwriting the verdict of the
    worker that legitimately owned the cell. Returns whether *this*
    call published the marker.
    """
    path = fail_path(root, job_id, fingerprint)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{fingerprint}.tmp-{os.getpid()}")
    body = json.dumps(
        {
            "label": failure.label,
            "kind": failure.kind,
            "error": failure.error,
            "attempts": failure.attempts,
            "wall_seconds": failure.wall_seconds,
        },
        sort_keys=True,
    )
    try:
        fsync_write_text(tmp, body + "\n")
        os.link(tmp, path)
    except FileExistsError:
        return False
    except OSError:
        return False
    finally:
        tmp.unlink(missing_ok=True)
    return True


def read_fail(
    root: str | Path, job_id: str, fingerprint: str
) -> CellFailure | None:
    """The cell's final-failure marker, if one was recorded."""
    try:
        data = json.loads(
            fail_path(root, job_id, fingerprint).read_text(
                encoding="utf-8"
            )
        )
        return CellFailure(
            label=str(data["label"]),
            kind=str(data["kind"]),
            error=str(data["error"]),
            attempts=int(data["attempts"]),
            wall_seconds=float(data["wall_seconds"]),
        )
    except FileNotFoundError:
        return None
    except (OSError, ValueError, KeyError, TypeError):
        return None


def failed_fingerprints(root: str | Path, job_id: str) -> set[str]:
    """Fingerprints with a recorded final failure for this job."""
    fails = queue_dir(root, job_id) / "fails"
    if not fails.is_dir():
        return set()
    return {
        path.stem
        for path in fails.glob("*.json")
        if not path.name.startswith(".")
    }
