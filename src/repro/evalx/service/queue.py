"""Filesystem lease queue layered on the checkpoint store.

A lease is one worker's claim on one cell, written as
``<fingerprint>.lease.json`` in the same directory as the checkpoint
record the cell will become. The protocol is deliberately tiny:

* **Acquire** — atomic ``O_EXCL`` create. Exactly one worker wins a
  fresh claim; everyone else moves on to the next open cell.
* **Heartbeat** — the owner periodically rewrites the lease (atomic
  tmp + ``os.replace``) pushing ``expires_at`` forward. A healthy
  worker's lease never expires, however long the cell runs.
* **Expiry + steal** — a lease whose ``expires_at`` has passed marks a
  dead worker (SIGKILL, OOM, lost host). Any worker may steal it by
  replacing the file with its own claim and re-reading to confirm
  ownership (last writer wins).
* **Complete** — the worker persists the cell's checkpoint record and
  unlinks the lease. A record on disk always outranks any lease.

Leases reduce duplicate work; they do not guard correctness. Results
are content-addressed and byte-identical regardless of which worker
computes them, and record publication is an atomic ``os.replace`` — so
the worst a steal race can cost is one redundant execution, never a
wrong or torn result. Expiry compares ``expires_at`` against the local
clock, which is the one cross-host assumption: hosts sharing the
service directory must also share a reasonably synchronised clock.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass

from repro.evalx.checkpoint import CheckpointStore
from repro.evalx.metrics import RunMetrics

#: Default seconds before an unrenewed lease may be stolen.
DEFAULT_TTL_SECONDS = 30.0


@dataclass(frozen=True)
class Lease:
    """One worker's on-disk claim on one cell."""

    fingerprint: str
    label: str
    job: str
    worker: str
    expires_at: float
    created_ts: float

    def expired(self, now: float | None = None) -> bool:
        """Whether the claim may be stolen (heartbeats stopped).

        A lease is valid strictly *before* ``expires_at``: at the
        boundary instant it is already stealable, so a TTL of t seconds
        never protects a claim for longer than t.
        """
        return (time.time() if now is None else now) >= self.expires_at


class LeaseQueue:
    """Lease operations over one :class:`CheckpointStore` directory.

    Args:
        store: The store whose records are the durable "done" state;
            lease files live next to its records.
        ttl_seconds: How long a lease stays valid past its last renewal.
        metrics: Optional recorder; every acquire/steal/heartbeat/
            release/complete is a ``lease`` event.
    """

    def __init__(
        self,
        store: CheckpointStore,
        ttl_seconds: float = DEFAULT_TTL_SECONDS,
        metrics: RunMetrics | None = None,
    ) -> None:
        if ttl_seconds <= 0:
            raise ValueError(
                f"ttl_seconds must be > 0, got {ttl_seconds!r}: a "
                "non-positive TTL makes every lease born expired"
            )
        self.store = store
        self.ttl_seconds = ttl_seconds
        self.metrics = metrics or RunMetrics.disabled()

    # -- reading ------------------------------------------------------

    def read(self, fingerprint: str) -> Lease | None:
        """The current lease for a fingerprint, or None.

        An unreadable or truncated lease file (a claim torn by a crash
        mid-write cannot happen — writes are atomic — but a hand-edited
        or damaged one can) is treated as expired-at-epoch so it gets
        stolen rather than wedging the cell forever.
        """
        path = self.store.lease_path_for(fingerprint)
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
            return Lease(
                fingerprint=fingerprint,
                label=str(record["label"]),
                job=str(record["job"]),
                worker=str(record["worker"]),
                expires_at=float(record["expires_at"]),
                created_ts=float(record.get("created_ts", 0.0)),
            )
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            return Lease(
                fingerprint=fingerprint,
                label="?",
                job="?",
                worker="?",
                expires_at=0.0,
                created_ts=0.0,
            )

    def state(self, fingerprint: str) -> str:
        """``done`` / ``leased`` / ``expired`` / ``open`` for one cell."""
        if self.store.has(fingerprint):
            return "done"
        lease = self.read(fingerprint)
        if lease is None:
            return "open"
        return "expired" if lease.expired() else "leased"

    # -- claiming -----------------------------------------------------

    def acquire(
        self, fingerprint: str, label: str, job: str, worker: str
    ) -> bool:
        """Try to claim a cell; True when this worker now owns it.

        Fresh cells are claimed with an exclusive create; an expired
        lease is stolen with an atomic replace followed by a re-read,
        so of N racing stealers exactly the last writer proceeds.
        """
        if self.store.has(fingerprint):
            return False
        path = self.store.lease_path_for(fingerprint)
        body = self._body(fingerprint, label, job, worker)
        try:
            self.store.directory.mkdir(parents=True, exist_ok=True)
            with open(path, "x", encoding="utf-8") as handle:
                handle.write(body)
        except FileExistsError:
            current = self.read(fingerprint)
            if current is None:
                # Released between our create and read; next round.
                return False
            if not current.expired():
                return False
            if not self._replace(path, fingerprint, body):
                return False
            stolen = self.read(fingerprint)
            if stolen is None or stolen.worker != worker:
                return False  # lost the steal race to a later writer
            self.metrics.lease_event(
                label, "steal", fingerprint, worker=worker, job=job
            )
            return True
        except OSError:
            return False
        self.metrics.lease_event(
            label, "leased", fingerprint, worker=worker, job=job
        )
        return True

    def renew(self, fingerprint: str, label: str, job: str, worker: str) -> bool:
        """Heartbeat: push the owned lease's expiry forward.

        Returns False when this worker no longer owns the lease (it was
        stolen after an expiry, or the cell completed and the lease is
        gone) — the caller keeps running regardless, since duplicate
        execution is harmless, but stops renewing.
        """
        current = self.read(fingerprint)
        if current is None or current.worker != worker:
            return False
        path = self.store.lease_path_for(fingerprint)
        if not self._replace(
            path, fingerprint, self._body(fingerprint, label, job, worker)
        ):
            return False
        self.metrics.lease_event(
            label, "heartbeat", fingerprint, worker=worker, job=job
        )
        return True

    def release(self, fingerprint: str, worker: str) -> None:
        """Drop this worker's lease, if it still owns one."""
        current = self.read(fingerprint)
        if current is None or current.worker != worker:
            return
        try:
            self.store.lease_path_for(fingerprint).unlink()
        except OSError:
            pass
        self.metrics.lease_event(
            current.label,
            "released",
            fingerprint,
            worker=worker,
            job=current.job,
        )

    # -- internals ----------------------------------------------------

    def _body(
        self, fingerprint: str, label: str, job: str, worker: str
    ) -> str:
        now = time.time()
        return (
            json.dumps(
                {
                    "fingerprint": fingerprint,
                    "label": label,
                    "job": job,
                    "worker": worker,
                    "expires_at": now + self.ttl_seconds,
                    "created_ts": now,
                },
                sort_keys=True,
            )
            + "\n"
        )

    def _replace(self, path, fingerprint: str, body: str) -> bool:
        tmp = path.with_name(f".{fingerprint}.lease.tmp-{os.getpid()}")
        try:
            tmp.write_text(body, encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)
            return False
        return True
