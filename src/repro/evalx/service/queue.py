"""Filesystem lease queue layered on the checkpoint store.

A lease is one worker's claim on one cell, written as
``<fingerprint>.lease.json`` in the same directory as the checkpoint
record the cell will become. The protocol is deliberately tiny:

* **Acquire** — atomic ``O_EXCL`` create. Exactly one worker wins a
  fresh claim; everyone else moves on to the next open cell.
* **Heartbeat** — the owner periodically rewrites the lease (atomic
  tmp + ``os.replace``) pushing ``expires_at`` forward. A healthy
  worker's lease never expires, however long the cell runs.
* **Expiry + steal** — a lease whose ``expires_at`` has passed marks a
  dead worker (SIGKILL, OOM, lost host). Any worker may steal it by
  replacing the file with its own claim and re-reading to confirm
  ownership (last writer wins). A steal carries the previous claim's
  ``attempt`` counter forward, incremented — the lease generation — so
  a poison cell that keeps killing its workers is visible as a chain of
  expired high-attempt leases and can be quarantined instead of
  re-leased forever (:mod:`repro.evalx.service.worker`).
* **Complete** — the worker persists the cell's checkpoint record and
  unlinks the lease. A record on disk always outranks any lease.

Leases reduce duplicate work; they do not guard correctness. Results
are content-addressed and byte-identical regardless of which worker
computes them, and record publication is an atomic ``os.replace`` — so
the worst a steal race can cost is one redundant execution, never a
wrong or torn result. Expiry compares ``expires_at`` against the local
clock, which is the one cross-host assumption: hosts sharing the
service directory must also share a reasonably synchronised clock.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass

from repro.evalx.checkpoint import CheckpointStore
from repro.evalx.metrics import RunMetrics

#: Default seconds before an unrenewed lease may be stolen.
DEFAULT_TTL_SECONDS = 30.0


@dataclass(frozen=True)
class Lease:
    """One worker's on-disk claim on one cell.

    ``attempt`` is the lease *generation*: 1 on a fresh claim, +1 each
    time an expired claim is stolen. Renewals by the same owner keep
    it. Because a healthy worker's lease never expires, the counter
    approximates "how many workers died (or abandoned) holding this
    cell" — the signal the quarantine policy thresholds on.
    """

    fingerprint: str
    label: str
    job: str
    worker: str
    expires_at: float
    created_ts: float
    attempt: int = 1

    def expired(self, now: float | None = None) -> bool:
        """Whether the claim may be stolen (heartbeats stopped).

        A lease is valid strictly *before* ``expires_at``: at the
        boundary instant it is already stealable, so a TTL of t seconds
        never protects a claim for longer than t.
        """
        return (time.time() if now is None else now) >= self.expires_at


class LeaseQueue:
    """Lease operations over one :class:`CheckpointStore` directory.

    Args:
        store: The store whose records are the durable "done" state;
            lease files live next to its records.
        ttl_seconds: How long a lease stays valid past its last renewal.
        metrics: Optional recorder; every acquire/steal/heartbeat/
            release/complete is a ``lease`` event.
    """

    def __init__(
        self,
        store: CheckpointStore,
        ttl_seconds: float = DEFAULT_TTL_SECONDS,
        metrics: RunMetrics | None = None,
    ) -> None:
        if ttl_seconds <= 0:
            raise ValueError(
                f"ttl_seconds must be > 0, got {ttl_seconds!r}: a "
                "non-positive TTL makes every lease born expired"
            )
        self.store = store
        self.ttl_seconds = ttl_seconds
        self.metrics = metrics or RunMetrics.disabled()

    # -- reading ------------------------------------------------------

    def read(self, fingerprint: str) -> Lease | None:
        """The current lease for a fingerprint, or None.

        An unreadable or truncated lease file (a claim torn by a crash
        mid-write cannot happen — writes are atomic — but a hand-edited
        or damaged one can) is treated as expired-at-epoch so it gets
        stolen rather than wedging the cell forever.
        """
        path = self.store.lease_path_for(fingerprint)
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
            return Lease(
                fingerprint=fingerprint,
                label=str(record["label"]),
                job=str(record["job"]),
                worker=str(record["worker"]),
                expires_at=float(record["expires_at"]),
                created_ts=float(record.get("created_ts", 0.0)),
                attempt=int(record.get("attempt", 1)),
            )
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # attempt 0: a damaged claim loses its generation count, so
            # the steal restarts it at 1 rather than inheriting garbage.
            return Lease(
                fingerprint=fingerprint,
                label="?",
                job="?",
                worker="?",
                expires_at=0.0,
                created_ts=0.0,
                attempt=0,
            )

    def state(self, fingerprint: str) -> str:
        """``done`` / ``leased`` / ``expired`` / ``open`` for one cell."""
        if self.store.has(fingerprint):
            return "done"
        lease = self.read(fingerprint)
        if lease is None:
            return "open"
        return "expired" if lease.expired() else "leased"

    # -- claiming -----------------------------------------------------

    def acquire(
        self, fingerprint: str, label: str, job: str, worker: str
    ) -> Lease | None:
        """Try to claim a cell; the owned lease when this worker won.

        Fresh cells are claimed with an exclusive create (attempt 1);
        an expired lease is stolen with an atomic replace followed by a
        re-read, so of N racing stealers exactly the last writer
        proceeds — and the stolen claim carries ``attempt + 1``.
        Returns ``None`` when the cell is done, validly leased by
        someone else, or the race was lost (truthiness is claim
        success, so boolean call sites read unchanged).
        """
        if self.store.has(fingerprint):
            return None
        path = self.store.lease_path_for(fingerprint)
        fresh = self._make(fingerprint, label, job, worker, attempt=1)
        try:
            self.store.directory.mkdir(parents=True, exist_ok=True)
            with open(path, "x", encoding="utf-8") as handle:
                handle.write(self._body(fresh))
        except FileExistsError:
            current = self.read(fingerprint)
            if current is None:
                # Released between our create and read; next round.
                return None
            if not current.expired():
                return None
            taken = self._make(
                fingerprint,
                label,
                job,
                worker,
                attempt=current.attempt + 1,
            )
            if not self._replace(path, fingerprint, self._body(taken)):
                return None
            stolen = self.read(fingerprint)
            if stolen is None or stolen.worker != worker:
                return None  # lost the steal race to a later writer
            self.metrics.lease_event(
                label, "steal", fingerprint, worker=worker, job=job
            )
            return stolen
        except OSError:
            return None
        self.metrics.lease_event(
            label, "leased", fingerprint, worker=worker, job=job
        )
        return fresh

    def renew(self, fingerprint: str, label: str, job: str, worker: str) -> bool:
        """Heartbeat: push the owned lease's expiry forward.

        Returns False when this worker no longer owns the lease (it was
        stolen after an expiry, or the cell completed and the lease is
        gone) — the caller keeps running regardless, since duplicate
        execution is harmless, but stops renewing. The claim's
        ``attempt`` generation is preserved across renewals.
        """
        current = self.read(fingerprint)
        if current is None or current.worker != worker:
            return False
        path = self.store.lease_path_for(fingerprint)
        renewed = self._make(
            fingerprint, label, job, worker, attempt=current.attempt
        )
        if not self._replace(path, fingerprint, self._body(renewed)):
            return False
        self.metrics.lease_event(
            label, "heartbeat", fingerprint, worker=worker, job=job
        )
        return True

    def owns(self, fingerprint: str, worker: str) -> bool:
        """Whether ``worker`` still holds a live claim on the cell.

        The publication guard: a worker that was descheduled long
        enough for its lease to expire (and possibly be stolen) calls
        this right before persisting a record or fail marker, and walks
        away instead of overwriting whatever the thief published. An
        expired-but-unstolen claim also reads as not-owned — the cell
        is already up for grabs, so publishing under it would race the
        next claimant.
        """
        current = self.read(fingerprint)
        return (
            current is not None
            and current.worker == worker
            and not current.expired()
        )

    def release(self, fingerprint: str, worker: str) -> None:
        """Drop this worker's lease, if it still owns one."""
        current = self.read(fingerprint)
        if current is None or current.worker != worker:
            return
        try:
            self.store.lease_path_for(fingerprint).unlink()
        except OSError:
            pass
        self.metrics.lease_event(
            current.label,
            "released",
            fingerprint,
            worker=worker,
            job=current.job,
        )

    def clear(self, fingerprint: str) -> None:
        """Drop a cell's lease regardless of owner (quarantine path).

        Only correct once a durable artifact outranking the lease — a
        checkpoint record or a fail marker — is already on disk for the
        cell; anyone racing us re-reads that artifact, not the lease.
        """
        try:
            self.store.lease_path_for(fingerprint).unlink()
        except OSError:
            pass

    # -- internals ----------------------------------------------------

    def _make(
        self,
        fingerprint: str,
        label: str,
        job: str,
        worker: str,
        attempt: int,
    ) -> Lease:
        now = time.time()
        return Lease(
            fingerprint=fingerprint,
            label=label,
            job=job,
            worker=worker,
            expires_at=now + self.ttl_seconds,
            created_ts=now,
            attempt=attempt,
        )

    def _body(self, lease: Lease) -> str:
        return (
            json.dumps(
                {
                    "fingerprint": lease.fingerprint,
                    "label": lease.label,
                    "job": lease.job,
                    "worker": lease.worker,
                    "expires_at": lease.expires_at,
                    "created_ts": lease.created_ts,
                    "attempt": lease.attempt,
                },
                sort_keys=True,
            )
            + "\n"
        )

    def _replace(self, path, fingerprint: str, body: str) -> bool:
        tmp = path.with_name(f".{fingerprint}.lease.tmp-{os.getpid()}")
        try:
            tmp.write_text(body, encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)
            return False
        return True
