"""Cost-aware shard partitioning for the sweep service.

The coordinator does not fan cells out blindly: it estimates each
cell's cost as *trace length x config weight* and packs cells into
balanced shards with a longest-processing-time greedy. The contract
follows the hydra partitioner exemplar — a ``shard`` function that
returns the task lists plus a runtime estimate — translated to this
engine's cells.

Weights come from real wall-time records: feed
:meth:`CostModel.from_metrics` one or more
:class:`~repro.evalx.metrics.RunMetrics` JSONL files and each
``(experiment, variant)`` (the variant is the cell label's config part,
e.g. ``PATH`` in ``gcc:PATH``) gets the ratio of its mean wall time to
the experiment's overall mean. Uncalibrated variants weigh 1.0, which
degrades to pure trace-length balancing — still far better than one
shard per cell or round-robin over a grid whose Perfect-predictor cells
run 10x faster than its PATH cells.
"""

from __future__ import annotations

import json
import warnings
from collections import defaultdict
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.evalx.parallel import Cell


@dataclass(frozen=True)
class Shard:
    """One balanced group of cells, the unit of worker affinity.

    Attributes:
        index: Shard position within its job (stable, 0-based).
        cell_indices: Positions of this shard's cells in the job's
            original cell order — results always reassemble by these.
        estimated_cost: Sum of the member cells' cost estimates, in
            trace-length units.
    """

    index: int
    cell_indices: tuple[int, ...]
    estimated_cost: float


def _variant(label: str) -> str:
    """The config part of a cell label (``gcc:PATH`` -> ``PATH``)."""
    return label.rsplit(":", 1)[1] if ":" in label else ""


def _cell_tasks(cell: Cell) -> int:
    """Trace length a cell will process (the cost model's base unit)."""
    if cell.workload is not None and cell.workload[1]:
        return int(cell.workload[1])
    for key in ("tasks", "n_tasks"):
        value = cell.kwargs.get(key)
        if isinstance(value, int) and value > 0:
            return value
    return 1


class CostModel:
    """Per-cell cost estimates: trace length x calibrated config weight.

    Args:
        weights: ``(experiment_id, variant) -> weight`` multipliers,
            typically from :meth:`from_metrics`; missing keys weigh 1.0.
    """

    def __init__(
        self, weights: dict[tuple[str, str], float] | None = None
    ) -> None:
        self.weights = dict(weights or {})
        #: How many :meth:`weight` lookups fell back to the default 1.0
        #: because the ``(experiment, variant)`` pair was never
        #: calibrated — the observable signal that shard balancing is
        #: running blind on part of a grid.
        self.unknown_variant_misses = 0

    @classmethod
    def from_metrics(
        cls, paths: Iterable[str | Path] | str | Path
    ) -> CostModel:
        """Calibrate config weights from RunMetrics JSONL files.

        Reads every ``cell`` record with ``status == "ok"``, groups the
        wall times by ``(experiment, variant)``, and sets each group's
        weight to its mean wall time relative to the experiment's
        overall mean. Unreadable files and malformed lines are skipped:
        calibration is an optimisation, never a failure mode.
        """
        if isinstance(paths, (str, Path)):
            paths = [paths]
        walls: dict[tuple[str, str], list[float]] = defaultdict(list)
        for path in paths:
            try:
                lines = Path(path).read_text(encoding="utf-8").splitlines()
            except OSError:
                continue
            for line in lines:
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if (
                    not isinstance(record, dict)
                    or record.get("event") != "cell"
                    or record.get("status") != "ok"
                ):
                    continue
                try:
                    wall = float(record["wall_seconds"])
                    experiment = str(record["experiment"])
                    variant = _variant(str(record["cell"]))
                except (KeyError, TypeError, ValueError):
                    continue
                walls[(experiment, variant)].append(wall)
        by_experiment: dict[str, list[float]] = defaultdict(list)
        for (experiment, _), values in walls.items():
            by_experiment[experiment].extend(values)
        weights = {}
        degraded = set()
        for (experiment, variant), values in walls.items():
            overall = sum(by_experiment[experiment]) / len(
                by_experiment[experiment]
            )
            if overall > 0:
                weights[(experiment, variant)] = (
                    sum(values) / len(values) / overall
                )
            else:
                # Every wall time rounded to zero (coarse timer): there
                # is no signal to calibrate from. Degrade to an explicit
                # uniform weight — the variant stays *known*, so it does
                # not show up as an unknown-variant miss later — and say
                # so, instead of silently dropping the experiment from
                # the model.
                weights[(experiment, variant)] = 1.0
                degraded.add(experiment)
        if degraded:
            warnings.warn(
                "cost calibration fell back to uniform weights for "
                f"{', '.join(sorted(degraded))}: every recorded wall "
                "time is zero (timer too coarse to rank variants)",
                RuntimeWarning,
                stacklevel=2,
            )
        return cls(weights)

    def weight(self, experiment_id: str, label: str) -> float:
        """Config-weight multiplier for one cell label.

        Unknown ``(experiment, variant)`` pairs weigh 1.0 and bump
        :attr:`unknown_variant_misses` so blind fan-out is observable.
        """
        value = self.weights.get((experiment_id, _variant(label)))
        if value is None:
            self.unknown_variant_misses += 1
            return 1.0
        return value

    def estimate(self, experiment_id: str, cell: Cell) -> float:
        """Estimated cost of one cell, in trace-length units."""
        return _cell_tasks(cell) * self.weight(experiment_id, cell.label)


def shard_cells(
    cells: Sequence[Cell],
    n_shards: int,
    experiment_id: str,
    cost_model: CostModel | None = None,
) -> tuple[list[Shard], float]:
    """Pack cells into at most ``n_shards`` balanced shards.

    Longest-processing-time greedy: cells sorted by descending estimate
    each go to the currently lightest shard, which keeps the makespan
    within 4/3 of optimal. Fully deterministic (ties break on cell
    index, then shard index). Returns the non-empty shards in stable
    order plus the estimated total cost of the whole grid — the hydra
    partitioner contract, translated to cells.
    """
    model = cost_model or CostModel()
    costs = [model.estimate(experiment_id, cell) for cell in cells]
    n_shards = max(1, min(n_shards, len(cells)))
    loads = [0.0] * n_shards
    members: list[list[int]] = [[] for _ in range(n_shards)]
    order = sorted(range(len(cells)), key=lambda i: (-costs[i], i))
    for i in order:
        lightest = min(range(n_shards), key=lambda s: (loads[s], s))
        loads[lightest] += costs[i]
        members[lightest].append(i)
    shards = [
        Shard(
            index=index,
            cell_indices=tuple(sorted(chosen)),
            estimated_cost=loads[at],
        )
        for index, (at, chosen) in enumerate(
            (at, chosen)
            for at, chosen in enumerate(members)
            if chosen
        )
    ]
    return shards, float(sum(costs))
