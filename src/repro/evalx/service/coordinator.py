"""The sweep coordinator: expand jobs, watch progress, combine results.

The coordinator owns the job state machine; workers only ever touch the
lease queue and the checkpoint store. One ``run_once`` pass:

1. **Expand** every ``submitted`` job — import its experiment driver,
   build the cell grid, fingerprint each cell (the task id), estimate
   costs, pack balanced shards, publish the queue manifest, and move
   the job to ``running``. A sweep whose cells cannot be fingerprinted
   cannot be distributed and fails immediately with a clear error.
2. **Finalise** every ``running`` job whose cells have all resolved —
   load each cell's verified checkpoint record (a corrupt record is
   discarded exactly as ``--resume`` does, reopening the cell for
   workers), slot job-scoped fail markers in as
   :class:`~repro.evalx.parallel.CellFailure` gaps, call the driver's
   ``combine`` with the cells in submission order, and publish the
   pickled :class:`~repro.evalx.result.ExperimentResult`.

Because payloads round-trip pickle exactly as checkpoint resume does,
a job's fetched result is byte-identical to a serial ``run_sharded`` of
the same grid — regardless of how many workers served it, in what
order, or how many of them died along the way.

The squash-vs-local-repair discipline the engine follows extends here
to hosts: losing a worker never squashes the sweep; its leases expire,
surviving workers re-lease exactly the unfinished cells, and the
completed records stand.
"""

from __future__ import annotations

import importlib
import time
from dataclasses import replace
from pathlib import Path

from repro.evalx.checkpoint import (
    CheckpointCorrupt,
    CheckpointKeyError,
    CheckpointStore,
    cell_fingerprint,
)
from repro.evalx.metrics import RunMetrics
from repro.evalx.parallel import CellFailure, is_failure
from repro.evalx.report import render_failures
from repro.evalx.service import manifest as mf
from repro.evalx.service.costs import CostModel, shard_cells
from repro.evalx.service.jobs import JobRecord, JobStatus, JobStore
from repro.evalx.service.queue import LeaseQueue

#: Default shard count per job when the submitter does not say.
DEFAULT_SHARDS = 4


class Coordinator:
    """Drives jobs through ``submitted -> running -> done | failed``.

    Args:
        root: The shared service directory.
        cost_model: Cell-cost estimates for shard balancing; default
            uncalibrated (pure trace-length).
        n_shards: Shards per job (worker-affinity granularity).
        metrics: Optional recorder for checkpoint/lease events.
    """

    def __init__(
        self,
        root: str | Path,
        cost_model: CostModel | None = None,
        n_shards: int = DEFAULT_SHARDS,
        metrics: RunMetrics | None = None,
    ) -> None:
        self.root = Path(root)
        self.jobs = JobStore(self.root)
        self.store = CheckpointStore(self.root / "store", resume=True)
        self.queue = LeaseQueue(self.store, metrics=metrics)
        self.cost_model = cost_model or CostModel()
        self.n_shards = n_shards
        self.metrics = metrics or RunMetrics.disabled()

    # -- one scheduling pass ------------------------------------------

    def run_once(self) -> dict[str, int]:
        """Expand and finalise whatever is ready; returns counts."""
        expanded = sum(
            self._expand(record)
            for record in self.jobs.list_jobs(state="submitted")
        )
        finished = sum(
            self._finalise(record)
            for record in self.jobs.list_jobs(state="running")
        )
        open_jobs = len(self.jobs.list_jobs(state="submitted")) + len(
            self.jobs.list_jobs(state="running")
        )
        return {
            "expanded": expanded,
            "finished": finished,
            "open": open_jobs,
        }

    def serve(
        self,
        poll_seconds: float = 0.5,
        exit_when_idle: bool = False,
        max_rounds: int | None = None,
    ) -> None:
        """Poll until told to stop (or, optionally, until idle)."""
        rounds = 0
        while True:
            summary = self.run_once()
            rounds += 1
            if exit_when_idle and summary["open"] == 0:
                return
            if max_rounds is not None and rounds >= max_rounds:
                return
            time.sleep(poll_seconds)

    # -- status -------------------------------------------------------

    def status(self, job_id: str) -> JobStatus:
        """Live cell-level progress for one job."""
        record = self.jobs.get(job_id)
        done = failed = leased = 0
        if record.state in ("running", "done"):
            try:
                manifest = mf.read_manifest(self.root, job_id)
            except mf.ManifestError:
                manifest = None
            if manifest is not None:
                records = self.store.fingerprints()
                fails = mf.failed_fingerprints(self.root, job_id)
                live_leases = self.store.leases()
                for entry in manifest.cells:
                    if entry.fingerprint in records:
                        done += 1
                    elif entry.fingerprint in fails:
                        failed += 1
                    elif entry.fingerprint in live_leases:
                        leased += 1
        return JobStatus(
            job_id=record.job_id,
            state=record.state,
            tenant=record.spec.tenant,
            experiment=record.spec.experiment,
            cells_total=record.cells_total,
            cells_done=done,
            cells_failed=failed,
            cells_leased=leased,
            shards=record.shards,
            error=record.error,
        )

    # -- expansion ----------------------------------------------------

    def _expand(self, record: JobRecord) -> bool:
        spec = record.spec
        try:
            module = importlib.import_module(
                f"repro.evalx.experiments.{spec.experiment}"
            )
            cells = module.cells(
                n_tasks=spec.n_tasks, quick=spec.quick, **spec.params
            )
        except Exception as exc:
            self.jobs.update(
                record,
                state="failed",
                error=f"cannot expand sweep: {exc!r}",
            )
            return False
        fingerprints = []
        try:
            for cell in cells:
                fingerprints.append(
                    cell_fingerprint(spec.experiment, cell)
                )
        except CheckpointKeyError as exc:
            self.jobs.update(
                record,
                state="failed",
                error=(
                    "sweep has unfingerprintable cells and cannot be "
                    f"distributed: {exc}"
                ),
            )
            return False
        costs = [
            self.cost_model.estimate(spec.experiment, cell)
            for cell in cells
        ]
        shards, total = shard_cells(
            cells, self.n_shards, spec.experiment, self.cost_model
        )
        mf.write_manifest(
            self.root,
            record.job_id,
            spec.experiment,
            cells,
            fingerprints,
            costs,
            shards,
        )
        self.jobs.update(
            record,
            state="running",
            cells_total=len(cells),
            shards=len(shards),
            estimated_cost=total,
        )
        return True

    # -- finalisation -------------------------------------------------

    def _finalise(self, record: JobRecord) -> bool:
        job_id = record.job_id
        try:
            manifest = mf.read_manifest(self.root, job_id)
        except mf.ManifestError as exc:
            self.jobs.update(record, state="failed", error=str(exc))
            return False
        done = self.store.fingerprints()
        fails = mf.failed_fingerprints(self.root, job_id)
        if any(
            entry.fingerprint not in done
            and entry.fingerprint not in fails
            for entry in manifest.cells
        ):
            return False  # still in flight
        results: list = []
        for entry in manifest.cells:
            if entry.fingerprint in done:
                loaded = self.store.load(entry.fingerprint, entry.label)
                if loaded is None or isinstance(
                    loaded, CheckpointCorrupt
                ):
                    # The bad record was discarded; the cell is open
                    # again and a worker will redo it. Finalise later.
                    if isinstance(loaded, CheckpointCorrupt):
                        self.metrics.checkpoint_event(
                            entry.label,
                            "corrupt",
                            entry.fingerprint,
                            loaded.reason,
                        )
                    return False
                results.append(loaded.payload)
                continue
            failure = mf.read_fail(self.root, job_id, entry.fingerprint)
            if failure is None:  # marker vanished between the scans
                return False
            if not record.spec.keep_going:
                self.jobs.update(
                    record,
                    state="failed",
                    error=(
                        f"cell {failure.label!r} failed "
                        f"({failure.kind} after {failure.attempts} "
                        f"attempt(s)): {failure.error}"
                    ),
                )
                return False
            results.append(failure)
        spec = record.spec
        cells = [entry.cell for entry in manifest.cells]
        try:
            result = manifest_combine(
                spec.experiment,
                cells,
                results,
                spec.n_tasks,
                spec.quick,
                params=spec.params,
            )
        except Exception as exc:
            self.jobs.update(
                record, state="failed", error=f"combine failed: {exc!r}"
            )
            return False
        self.jobs.save_result(job_id, result)
        self.jobs.update(record, state="done")
        return True


def manifest_combine(
    experiment: str,
    cells: list,
    results: list,
    n_tasks: int | None,
    quick: bool,
    params: dict | None = None,
):
    """Assemble a distributed job exactly as ``run_sharded`` would.

    Same ``combine`` call, same failure appendix, same
    ``data["_failed_cells"]`` bookkeeping — this is what makes a fetched
    job result byte-identical to a local serial run of the same sweep.
    ``params`` carries the job spec's extra driver keyword arguments,
    which ``combine`` needs exactly as ``cells`` did.
    """
    module = importlib.import_module(
        f"repro.evalx.experiments.{experiment}"
    )
    result = module.combine(
        cells, results, n_tasks=n_tasks, quick=quick, **(params or {})
    )
    failures = tuple(r for r in results if is_failure(r))
    if failures:
        result = replace(
            result,
            failures=failures,
            text=result.text + "\n\n" + render_failures(failures),
        )
        result.data["_failed_cells"] = [f.label for f in failures]
    return result


# Re-exported for the worker's fail markers.
__all__ = ["Coordinator", "manifest_combine", "CellFailure"]
