"""The sweep coordinator: expand jobs, watch progress, combine results.

The coordinator owns the job state machine; workers only ever touch the
lease queue and the checkpoint store. One ``run_once`` pass:

1. **Expand** every ``submitted`` job — import its experiment driver,
   build the cell grid, fingerprint each cell (the task id), estimate
   costs, pack balanced shards, publish the queue manifest, and move
   the job to ``running``. A sweep whose cells cannot be fingerprinted
   cannot be distributed and fails immediately with a clear error.
2. **Finalise** every ``running`` job whose cells have all resolved —
   load each cell's verified checkpoint record (a corrupt record is
   discarded exactly as ``--resume`` does, reopening the cell for
   workers), slot job-scoped fail markers in as
   :class:`~repro.evalx.parallel.CellFailure` gaps, call the driver's
   ``combine`` with the cells in submission order, and publish the
   pickled :class:`~repro.evalx.result.ExperimentResult`.

Because payloads round-trip pickle exactly as checkpoint resume does,
a job's fetched result is byte-identical to a serial ``run_sharded`` of
the same grid — regardless of how many workers served it, in what
order, or how many of them died along the way.

The squash-vs-local-repair discipline the engine follows extends here
to hosts: losing a worker never squashes the sweep; its leases expire,
surviving workers re-lease exactly the unfinished cells, and the
completed records stand.

The coordinator itself is crash-safe in the same sense:

* ``_expand`` is idempotent — a coordinator killed after publishing
  the manifest but before moving the record to ``running`` leaves a
  ``submitted`` job with a manifest on disk, and the next expansion
  pass *adopts* that manifest instead of re-expanding.
* ``reconcile`` (run at ``serve`` startup) repairs the two other
  torn states a dead coordinator can leave: a ``running`` job with no
  readable manifest is demoted to ``submitted`` for re-expansion, and
  a ``done`` job whose result pickle is missing or unreadable is
  demoted to ``running`` so the next pass re-finalises it from the
  still-present checkpoint records.
* Deadlines and cancellation bound a job's lifetime: a job past its
  spec's ``timeout_seconds`` moves to the terminal ``expired`` state,
  and :meth:`Coordinator.cancel` moves an in-flight job to
  ``cancelled``; workers stop serving either at their next poll.

Chaos hooks: :func:`repro.evalx.faults.fire` runs on the synthetic
stage labels ``expand:<job_id>`` (after the manifest is durable,
before the record moves to ``running``) and ``finalise:<job_id>``
(after the result is durable, before the record moves to ``done``) —
the two crash windows above — so ``repro-chaos`` can kill a real
coordinator at exactly the instants the recovery paths exist for.
"""

from __future__ import annotations

import importlib
import pickle
import threading
import time
from dataclasses import replace
from pathlib import Path

from repro.evalx import faults
from repro.evalx.checkpoint import (
    CheckpointCorrupt,
    CheckpointKeyError,
    CheckpointStore,
    cell_fingerprint,
)
from repro.evalx.metrics import RunMetrics
from repro.evalx.parallel import CellFailure, is_failure
from repro.evalx.report import render_failures
from repro.evalx.result import ExperimentResult
from repro.evalx.service import manifest as mf
from repro.evalx.service.costs import CostModel, shard_cells
from repro.evalx.service.jobs import (
    TERMINAL_STATES,
    JobRecord,
    JobStatus,
    JobStore,
)
from repro.evalx.service.queue import LeaseQueue

#: Default shard count per job when the submitter does not say.
DEFAULT_SHARDS = 4


class Coordinator:
    """Drives jobs through ``submitted -> running -> done | failed``.

    Args:
        root: The shared service directory.
        cost_model: Cell-cost estimates for shard balancing; default
            uncalibrated (pure trace-length).
        n_shards: Shards per job (worker-affinity granularity).
        metrics: Optional recorder for checkpoint/lease events.
    """

    def __init__(
        self,
        root: str | Path,
        cost_model: CostModel | None = None,
        n_shards: int = DEFAULT_SHARDS,
        metrics: RunMetrics | None = None,
    ) -> None:
        self.root = Path(root)
        self.jobs = JobStore(self.root)
        self.store = CheckpointStore(self.root / "store", resume=True)
        self.queue = LeaseQueue(self.store, metrics=metrics)
        self.cost_model = cost_model or CostModel()
        self.n_shards = n_shards
        self.metrics = metrics or RunMetrics.disabled()
        self._drain = threading.Event()

    # -- one scheduling pass ------------------------------------------

    def run_once(self) -> dict[str, int]:
        """Expand and finalise whatever is ready; returns counts.

        Deadline enforcement runs first, so a job that expired while
        the coordinator was away is retired before any work is spent
        expanding or finalising it.
        """
        expired = self._expire_deadlines()
        expanded = sum(
            self._expand(record)
            for record in self.jobs.list_jobs(state="submitted")
        )
        finished = sum(
            self._finalise(record)
            for record in self.jobs.list_jobs(state="running")
        )
        open_jobs = len(self.jobs.list_jobs(state="submitted")) + len(
            self.jobs.list_jobs(state="running")
        )
        return {
            "expanded": expanded,
            "finished": finished,
            "expired": expired,
            "open": open_jobs,
        }

    def request_drain(self) -> None:
        """Ask :meth:`serve` to stop after the in-flight pass.

        Signal-safe; the CLI wires SIGTERM/SIGINT here so a drained
        coordinator finishes its current expand/finalise pass (all of
        whose writes are atomic) and exits cleanly.
        """
        self._drain.set()

    @property
    def draining(self) -> bool:
        return self._drain.is_set()

    def serve(
        self,
        poll_seconds: float = 0.5,
        exit_when_idle: bool = False,
        max_rounds: int | None = None,
    ) -> None:
        """Poll until told to stop (or, optionally, until idle).

        Startup begins with :meth:`reconcile`, so a coordinator that
        replaced one that died mid-flight repairs any torn job state
        before scheduling new work.
        """
        self.reconcile()
        rounds = 0
        while not self._drain.is_set():
            summary = self.run_once()
            rounds += 1
            if exit_when_idle and summary["open"] == 0:
                return
            if max_rounds is not None and rounds >= max_rounds:
                return
            if self._drain.wait(poll_seconds):
                return

    # -- lifecycle control --------------------------------------------

    def cancel(self, job_id: str, reason: str = "") -> JobRecord:
        """Cancel an in-flight job (terminal ``cancelled`` state).

        Raises :class:`~repro.evalx.service.jobs.JobError` for unknown
        or already-terminal jobs. Workers notice at their next poll;
        any lease they hold on the job simply expires unrenewed once
        the in-flight cell resolves.
        """
        record = self.jobs.cancel(job_id, reason=reason)
        self.metrics.job_event(
            job_id, "cancelled", reason=record.error
        )
        return record

    def _expire_deadlines(self) -> int:
        """Retire every non-terminal job past its submission deadline."""
        expired = 0
        for record in self.jobs.list_jobs():
            if record.state in TERMINAL_STATES:
                continue
            limit = record.spec.timeout_seconds
            if limit is None or limit <= 0:
                continue
            if time.time() - record.submitted_ts < limit:
                continue
            reason = (
                f"deadline of {limit:g}s after submission exceeded"
            )
            self.jobs.update(record, state="expired", error=reason)
            self.metrics.job_event(
                record.job_id, "deadline_expired", reason=reason
            )
            expired += 1
        return expired

    def reconcile(self) -> dict[str, int]:
        """Repair job records a dead coordinator left inconsistent.

        Two torn states are possible (every individual write is
        atomic, so only *pairs* of writes can be interrupted):

        * ``running`` with no readable manifest — the manifest was
          lost or damaged after the record moved; demote to
          ``submitted`` so the next pass re-expands (deterministically,
          to the same fingerprints — completed cells are kept).
        * ``done`` with a missing/unreadable result pickle — demote to
          ``running`` so the next pass re-finalises from the checkpoint
          records, which re-publishes a byte-identical result.

        Returns ``{"requeued": ..., "rebuilt": ...}`` counts.
        """
        requeued = 0
        rebuilt = 0
        for record in self.jobs.list_jobs():
            if record.state == "running":
                try:
                    mf.read_manifest(self.root, record.job_id)
                except mf.ManifestError:
                    self.jobs.update(
                        record,
                        state="submitted",
                        cells_total=0,
                        shards=0,
                        estimated_cost=0.0,
                    )
                    self.metrics.job_event(
                        record.job_id,
                        "requeued",
                        reason="running job has no readable manifest",
                    )
                    requeued += 1
            elif record.state == "done":
                if self._result_ok(record.job_id):
                    continue
                self.jobs.update(record, state="running")
                self.metrics.job_event(
                    record.job_id,
                    "refinalise",
                    reason="done job result missing or unreadable",
                )
                rebuilt += 1
        return {"requeued": requeued, "rebuilt": rebuilt}

    def _result_ok(self, job_id: str) -> bool:
        """Whether the published result pickle loads as a result."""
        try:
            with open(self.jobs.result_path(job_id), "rb") as handle:
                return isinstance(pickle.load(handle), ExperimentResult)
        except Exception:
            # Damaged pickles raise essentially anything (EOFError,
            # UnpicklingError, AttributeError...); any of it means the
            # result must be rebuilt from the checkpoint records.
            return False

    # -- status -------------------------------------------------------

    def status(self, job_id: str) -> JobStatus:
        """Live cell-level progress for one job."""
        record = self.jobs.get(job_id)
        done = failed = leased = 0
        if record.state in ("running", "done"):
            try:
                manifest = mf.read_manifest(self.root, job_id)
            except mf.ManifestError:
                manifest = None
            if manifest is not None:
                records = self.store.fingerprints()
                fails = mf.failed_fingerprints(self.root, job_id)
                live_leases = self.store.leases()
                for entry in manifest.cells:
                    if entry.fingerprint in records:
                        done += 1
                    elif entry.fingerprint in fails:
                        failed += 1
                    elif entry.fingerprint in live_leases:
                        leased += 1
        return JobStatus(
            job_id=record.job_id,
            state=record.state,
            tenant=record.spec.tenant,
            experiment=record.spec.experiment,
            cells_total=record.cells_total,
            cells_done=done,
            cells_failed=failed,
            cells_leased=leased,
            shards=record.shards,
            error=record.error,
        )

    # -- expansion ----------------------------------------------------

    def _expand(self, record: JobRecord) -> bool:
        """Expand one submitted job (idempotent across crashes).

        If a previous coordinator died between publishing the manifest
        and moving the record to ``running``, the manifest on disk is
        adopted as-is — re-expansion would produce the same cells (the
        grid is deterministic), but adopting keeps the pass cheap and
        the manifest bytes identical.
        """
        spec = record.spec
        if self._adopt_manifest(record):
            return True
        try:
            module = importlib.import_module(
                f"repro.evalx.experiments.{spec.experiment}"
            )
            cells = module.cells(
                n_tasks=spec.n_tasks, quick=spec.quick, **spec.params
            )
        except Exception as exc:
            self.jobs.update(
                record,
                state="failed",
                error=f"cannot expand sweep: {exc!r}",
            )
            return False
        fingerprints = []
        try:
            for cell in cells:
                fingerprints.append(
                    cell_fingerprint(spec.experiment, cell)
                )
        except CheckpointKeyError as exc:
            self.jobs.update(
                record,
                state="failed",
                error=(
                    "sweep has unfingerprintable cells and cannot be "
                    f"distributed: {exc}"
                ),
            )
            return False
        costs = [
            self.cost_model.estimate(spec.experiment, cell)
            for cell in cells
        ]
        shards, total = shard_cells(
            cells, self.n_shards, spec.experiment, self.cost_model
        )
        mf.write_manifest(
            self.root,
            record.job_id,
            spec.experiment,
            cells,
            fingerprints,
            costs,
            shards,
        )
        # Chaos stage hook: the manifest is durable but the record is
        # still `submitted` — the exact crash window _adopt_manifest
        # repairs on the next coordinator's pass.
        faults.fire(f"expand:{record.job_id}", 1)
        self.jobs.update(
            record,
            state="running",
            cells_total=len(cells),
            shards=len(shards),
            estimated_cost=total,
        )
        return True

    def _adopt_manifest(self, record: JobRecord) -> bool:
        """Promote a submitted job whose manifest already exists.

        The leftover of a coordinator killed mid-expand: manifest
        durable, record not yet ``running``. Adopting re-derives the
        bookkeeping from the manifest and moves the record on, without
        rewriting the manifest (workers may already be serving it).
        """
        try:
            manifest = mf.read_manifest(self.root, record.job_id)
        except mf.ManifestError:
            return False
        if manifest.experiment != record.spec.experiment:
            return False
        self.jobs.update(
            record,
            state="running",
            cells_total=len(manifest.cells),
            shards=len(manifest.shards),
            estimated_cost=sum(
                shard.estimated_cost for shard in manifest.shards
            ),
        )
        return True

    # -- finalisation -------------------------------------------------

    def _finalise(self, record: JobRecord) -> bool:
        job_id = record.job_id
        try:
            manifest = mf.read_manifest(self.root, job_id)
        except mf.ManifestError as exc:
            self.jobs.update(record, state="failed", error=str(exc))
            return False
        done = self.store.fingerprints()
        fails = mf.failed_fingerprints(self.root, job_id)
        if any(
            entry.fingerprint not in done
            and entry.fingerprint not in fails
            for entry in manifest.cells
        ):
            return False  # still in flight
        results: list = []
        for entry in manifest.cells:
            if entry.fingerprint in done:
                loaded = self.store.load(entry.fingerprint, entry.label)
                if loaded is None or isinstance(
                    loaded, CheckpointCorrupt
                ):
                    # The bad record was discarded; the cell is open
                    # again and a worker will redo it. Finalise later.
                    if isinstance(loaded, CheckpointCorrupt):
                        self.metrics.checkpoint_event(
                            entry.label,
                            "corrupt",
                            entry.fingerprint,
                            loaded.reason,
                        )
                    return False
                results.append(loaded.payload)
                continue
            failure = mf.read_fail(self.root, job_id, entry.fingerprint)
            if failure is None:  # marker vanished between the scans
                return False
            if not record.spec.keep_going:
                self.jobs.update(
                    record,
                    state="failed",
                    error=(
                        f"cell {failure.label!r} failed "
                        f"({failure.kind} after {failure.attempts} "
                        f"attempt(s)): {failure.error}"
                    ),
                )
                return False
            results.append(failure)
        spec = record.spec
        cells = [entry.cell for entry in manifest.cells]
        try:
            result = manifest_combine(
                spec.experiment,
                cells,
                results,
                spec.n_tasks,
                spec.quick,
                params=spec.params,
            )
        except Exception as exc:
            self.jobs.update(
                record, state="failed", error=f"combine failed: {exc!r}"
            )
            return False
        self.jobs.save_result(job_id, result)
        # Chaos stage hook: the result is durable but the record still
        # says `running` — the crash window reconcile()'s done-result
        # check and a plain re-finalise both repair.
        faults.fire(f"finalise:{job_id}", 1)
        self.jobs.update(record, state="done")
        return True


def manifest_combine(
    experiment: str,
    cells: list,
    results: list,
    n_tasks: int | None,
    quick: bool,
    params: dict | None = None,
):
    """Assemble a distributed job exactly as ``run_sharded`` would.

    Same ``combine`` call, same failure appendix, same
    ``data["_failed_cells"]`` bookkeeping — this is what makes a fetched
    job result byte-identical to a local serial run of the same sweep.
    ``params`` carries the job spec's extra driver keyword arguments,
    which ``combine`` needs exactly as ``cells`` did.
    """
    module = importlib.import_module(
        f"repro.evalx.experiments.{experiment}"
    )
    result = module.combine(
        cells, results, n_tasks=n_tasks, quick=quick, **(params or {})
    )
    failures = tuple(r for r in results if is_failure(r))
    if failures:
        result = replace(
            result,
            failures=failures,
            text=result.text + "\n\n" + render_failures(failures),
        )
        result.data["_failed_cells"] = [f.label for f in failures]
    return result


# Re-exported for the worker's fail markers.
__all__ = ["Coordinator", "manifest_combine", "CellFailure"]
