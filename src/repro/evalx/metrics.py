"""Run observability: JSONL metrics, live progress, and run manifests.

:class:`RunMetrics` is the recorder the experiment scheduler threads
through every cell execution. It serves three audiences at once:

* **machines** — one JSON object per line appended to ``--metrics PATH``
  (schema below), so dashboards and CI can parse where wall-clock time
  went without scraping logs;
* **humans watching** — a single live progress line on stderr (only when
  stderr is a terminal, so logs stay clean);
* **humans later** — a run manifest (git sha, config, jobs, per-profile
  seeds) written next to the metrics file, enough to re-run the exact
  sweep.

Metrics JSONL schema (one record per line, ``event`` discriminates):

``experiment_start``
    ``{"event", "ts", "experiment", "cells", "jobs"}``
``cell``
    ``{"event", "ts", "experiment", "cell", "status", "attempt",
    "final", "wall_seconds", "worker_pid", "cache", "error"}`` —
    one record per *attempt*; ``status`` is ``ok`` / ``error`` /
    ``timeout`` / ``crash``; ``final`` is false when a retry follows;
    ``cache`` holds the :func:`repro.synth.workloads.cache_counters`
    deltas observed by that attempt (trace/program hits and builds).
``checkpoint``
    ``{"event", "ts", "experiment", "cell", "action", "fingerprint",
    "reason"}`` — one record per checkpoint-store interaction;
    ``action`` is ``resume`` (verified record served, cell skipped),
    ``saved`` (completed cell persisted), ``save-failed``, ``corrupt``
    (record failed verification and was discarded; ``reason`` says
    why), or ``unfingerprintable`` (kwargs not canonicalizable — cell
    runs but is never checkpointed).
``fault``
    ``{"event", "ts", "experiment", "cell", "action", "attempt",
    "phase"}`` — injected-fault bookkeeping; ``phase`` is ``armed``
    (the plan targets this cell in this experiment) or ``fired``
    (parent-side store corruption applied). Worker-side faults show up
    as ordinary ``cell`` failure records.
``lease``
    ``{"event", "ts", "experiment", "cell", "action", "fingerprint",
    "worker", "job"}`` — one record per sweep-service lease
    interaction (:mod:`repro.evalx.service.queue`); ``action`` is
    ``leased`` (fresh claim), ``steal`` (an expired lease was taken
    over), ``heartbeat`` (renewal), ``released``, ``completed`` (the
    lease resolved into a checkpoint record), ``failed`` (the cell's
    failure became final and a fail marker was written), ``abandoned``
    (the worker lost lease ownership mid-cell and published nothing),
    or ``quarantined`` (the lease attempt counter hit the poison-cell
    threshold and the cell was finalised as failed instead of
    re-leased).
``job``
    ``{"event", "ts", "experiment", "job", "action", "reason"}`` — one
    record per job-lifecycle transition the coordinator drives outside
    the normal expand/finalise flow; ``action`` is ``cancelled`` (an
    operator cancelled the job), ``deadline_expired`` (the job outlived
    its ``timeout_seconds``), ``requeued`` (startup reconciliation
    demoted a manifest-less ``running`` job to ``submitted``), or
    ``refinalise`` (reconciliation found a ``done`` job with an
    unreadable result and demoted it to ``running`` for a rebuild).
``drain``
    ``{"event", "ts", "experiment", "role", "signal", "served"}`` — a
    sweep-service worker or coordinator caught SIGTERM/SIGINT, finished
    (or abandoned) its in-flight work, released leases, and is about to
    exit cleanly; ``served`` counts cells completed before the drain.
``interrupt``
    ``{"event", "ts", "experiment", "signal"}`` — the run caught
    SIGINT/SIGTERM, flushed, and is about to re-raise; everything
    recorded before this line is resumable state.
``experiment``
    ``{"event", "ts", "experiment", "cells", "resumed", "failed",
    "retries", "wall_seconds"}`` — the per-experiment total.

Everything here is observability only: recorders never influence cell
scheduling or payloads, so results stay bit-identical with or without
``--metrics``.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, TextIO


class RunMetrics:
    """Append-only JSONL recorder plus a live stderr progress line.

    Args:
        path: File to append JSONL records to; ``None`` records nothing.
        progress: Force the stderr progress line on/off; ``None`` (the
            default) enables it only when stderr is a terminal.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        progress: bool | None = None,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self._handle: TextIO | None = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        if progress is None:
            progress = bool(getattr(sys.stderr, "isatty", lambda: False)())
        self._progress = progress
        self._experiment = "?"
        self._total = 0
        self._done = 0
        self._failed = 0
        self._retries = 0
        self._resumed = 0
        self._started = 0.0

    @classmethod
    def disabled(cls) -> RunMetrics:
        """A recorder that records nothing (the scheduler's default)."""
        return cls(path=None, progress=False)

    # -- lifecycle ----------------------------------------------------

    def begin_experiment(
        self, experiment_id: str, n_cells: int, jobs: int
    ) -> None:
        """Mark the start of one experiment's cell grid."""
        self._experiment = experiment_id
        self._total = n_cells
        self._done = 0
        self._failed = 0
        self._retries = 0
        self._resumed = 0
        self._started = time.perf_counter()
        self._emit(
            {
                "event": "experiment_start",
                "ts": time.time(),
                "experiment": experiment_id,
                "cells": n_cells,
                "jobs": jobs,
            }
        )
        self._draw_progress()

    def cell_attempt(
        self,
        label: str,
        status: str,
        attempt: int,
        wall_seconds: float,
        final: bool = True,
        worker_pid: int | None = None,
        cache: dict[str, int] | None = None,
        error: str | None = None,
    ) -> None:
        """Record one attempt of one cell (``status``: ok/error/timeout/crash)."""
        record: dict[str, Any] = {
            "event": "cell",
            "ts": time.time(),
            "experiment": self._experiment,
            "cell": label,
            "status": status,
            "attempt": attempt,
            "final": final,
            "wall_seconds": round(wall_seconds, 6),
        }
        if worker_pid is not None:
            record["worker_pid"] = worker_pid
        if cache:
            record["cache"] = cache
        if error is not None:
            record["error"] = error
        self._emit(record)
        if final:
            self._done += 1
            if status != "ok":
                self._failed += 1
        else:
            self._retries += 1
        self._draw_progress()

    def checkpoint_event(
        self,
        label: str,
        action: str,
        fingerprint: str = "",
        reason: str | None = None,
    ) -> None:
        """Record one checkpoint-store interaction for one cell.

        ``action``: ``resume`` / ``saved`` / ``save-failed`` /
        ``corrupt`` / ``unfingerprintable``. A ``resume`` also advances
        the progress line — the cell's slot is filled without running.
        """
        record: dict[str, Any] = {
            "event": "checkpoint",
            "ts": time.time(),
            "experiment": self._experiment,
            "cell": label,
            "action": action,
        }
        if fingerprint:
            record["fingerprint"] = fingerprint
        if reason is not None:
            record["reason"] = reason
        self._emit(record)
        if action == "resume":
            self._done += 1
            self._resumed += 1
            self._draw_progress()

    def lease_event(
        self,
        label: str,
        action: str,
        fingerprint: str = "",
        worker: str = "",
        job: str = "",
    ) -> None:
        """Record one sweep-service lease interaction for one cell.

        ``action``: ``leased`` / ``steal`` / ``heartbeat`` /
        ``released`` / ``completed`` / ``failed`` / ``abandoned`` /
        ``quarantined``.
        """
        record: dict[str, Any] = {
            "event": "lease",
            "ts": time.time(),
            "experiment": self._experiment,
            "cell": label,
            "action": action,
        }
        if fingerprint:
            record["fingerprint"] = fingerprint
        if worker:
            record["worker"] = worker
        if job:
            record["job"] = job
        self._emit(record)

    def job_event(
        self, job_id: str, action: str, reason: str = ""
    ) -> None:
        """Record one job-lifecycle transition (sweep service).

        ``action``: ``cancelled`` / ``deadline_expired`` /
        ``requeued`` / ``refinalise`` — the coordinator-driven
        transitions that happen outside the normal expand/finalise
        flow, so operators can audit why a job left the queue.
        """
        record: dict[str, Any] = {
            "event": "job",
            "ts": time.time(),
            "experiment": self._experiment,
            "job": job_id,
            "action": action,
        }
        if reason:
            record["reason"] = reason
        self._emit(record)

    def drain_event(
        self, role: str, signal_name: str, served: int | None = None
    ) -> None:
        """Record a graceful sweep-service drain and flush.

        Emitted by the worker/coordinator CLIs after a SIGTERM/SIGINT
        drained the loop: in-flight work finished or was abandoned,
        leases were released, and the process is about to exit cleanly.
        """
        record: dict[str, Any] = {
            "event": "drain",
            "ts": time.time(),
            "experiment": self._experiment,
            "role": role,
            "signal": signal_name,
        }
        if served is not None:
            record["served"] = served
        self._emit(record)
        if self._progress:
            sys.stderr.write(
                f"\n[{role} drained after {signal_name}]\n"
            )
            sys.stderr.flush()

    def fault_event(
        self, label: str, action: str, attempt: int, phase: str
    ) -> None:
        """Record an injected fault (``phase``: armed / fired)."""
        self._emit(
            {
                "event": "fault",
                "ts": time.time(),
                "experiment": self._experiment,
                "cell": label,
                "action": action,
                "attempt": attempt,
                "phase": phase,
            }
        )

    def interrupted(self, signal_name: str) -> None:
        """Record a graceful interrupt (SIGINT/SIGTERM) and flush.

        Emitted after the pool is shut down and before the interrupt
        re-raises; every record before this line is durable, so a
        ``--resume`` of the same checkpoint dir picks up exactly here.
        """
        self._emit(
            {
                "event": "interrupt",
                "ts": time.time(),
                "experiment": self._experiment,
                "signal": signal_name,
            }
        )
        if self._progress:
            sys.stderr.write(f"\n[interrupted by {signal_name}]\n")
            sys.stderr.flush()

    def end_experiment(self) -> None:
        """Record the experiment total and finish the progress line."""
        self._emit(
            {
                "event": "experiment",
                "ts": time.time(),
                "experiment": self._experiment,
                "cells": self._total,
                "resumed": self._resumed,
                "failed": self._failed,
                "retries": self._retries,
                "wall_seconds": round(
                    time.perf_counter() - self._started, 6
                ),
            }
        )
        if self._progress:
            self._draw_progress()
            sys.stderr.write("\n")
            sys.stderr.flush()

    def close(self) -> None:
        """Flush and close the JSONL file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> RunMetrics:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals ----------------------------------------------------

    def _emit(self, record: dict[str, Any]) -> None:
        if self._handle is not None:
            self._handle.write(json.dumps(record, default=str) + "\n")
            self._handle.flush()

    def _draw_progress(self) -> None:
        if not self._progress:
            return
        elapsed = time.perf_counter() - self._started
        line = (
            f"\r[{self._experiment}] {self._done}/{self._total} cells"
            f", {self._failed} failed, {self._retries} retried"
            f", {elapsed:.1f}s"
        )
        sys.stderr.write(line.ljust(60))
        sys.stderr.flush()


def git_sha(repo_dir: Path | None = None) -> str:
    """Best-effort git revision of the source tree ("unknown" offline)."""
    if repo_dir is None:
        repo_dir = Path(__file__).resolve().parent
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_dir,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


def write_manifest(
    path: str | Path,
    experiments: list[str] | tuple[str, ...],
    config: dict[str, Any],
) -> Path:
    """Write the run manifest JSON next to the results.

    Captures everything needed to reproduce the run: git sha, CLI
    config (tasks/quick/jobs/retry knobs), and each benchmark profile's
    seed. Returns the path written.
    """
    from repro.synth.profiles import BENCHMARK_NAMES, get_profile

    manifest = {
        "created_ts": time.time(),
        "git_sha": git_sha(),
        "python": sys.version.split()[0],
        "experiments": list(experiments),
        "config": config,
        "seeds": {
            name: get_profile(name).seed for name in BENCHMARK_NAMES
        },
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(manifest, indent=2, default=str) + "\n",
        encoding="utf-8",
    )
    return path
