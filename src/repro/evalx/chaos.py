"""``repro-chaos``: deterministic chaos campaigns for the sweep service.

The service's robustness claims — lease steal, poison-cell quarantine,
coordinator crash recovery, typed terminal states, zombie-publication
guards — are each backed by unit tests, but unit tests exercise one
seam at a time with hand-built fixtures. This module drives the *real*
service (real coordinator and worker processes over a real service
tree) through a seeded scenario matrix and machine-verifies the
system-level invariants the robustness work promises:

* **no lost jobs** — every submitted job reaches a terminal state;
* **no double publication** — at most one worker completes each cell,
  and a zombie never overwrites what a thief published;
* **quarantine within N attempts** — a poison cell burns exactly
  ``max_lease_attempts`` lease generations before it is finalised as a
  typed ``quarantined`` gap, never a fourth;
* **byte-identity** — every surviving job's fetched result equals an
  in-process serial run of the same sweep (``.text``/``.data``
  equality, the repo's byte-identity criterion).

Each scenario runs in its own service directory, so campaigns compose
without cross-contamination. Faults are injected only through the
CLI's explicit ``--inject-faults`` opt-in (subprocess victims) or
:func:`repro.evalx.faults.corrupt_file` (disk damage) — the campaign
process itself never arms the injector, so in-process reference runs
and "clean" recovery actors behave exactly as production code.

Determinism: the same ``--seed`` yields the same fault plans
(:meth:`~repro.evalx.faults.FaultPlan.compile` is seeded) and hence the
same pass/fail outcome per invariant. The JSON report separates that
stable core (``outcomes``: scenario -> ordered ``[name, ok]`` pairs)
from free-form diagnostic detail, so two runs with one seed can be
compared exactly.

Scenarios (``--scenarios all`` runs the lot, in this order)::

    kill-worker-mid-lease      worker SIGKILLed holding a live lease
    kill-coordinator-mid-expand    crash between manifest + record
    kill-coordinator-mid-finalise  crash between result + record
    hang-steal-zombie          frozen worker loses its lease, wakes up
    corrupt-lease              damaged claim must be stolen, not wedge
    corrupt-job-record         one bad record must not sink the rest
    corrupt-result             damaged pickle is rebuilt byte-identical
    poison-cell                3 kills then quarantine, never a 4th
    deadline-expiry            job past its deadline retires, typed
    cancel-mid-flight          cancelled job stops work, typed
    two-tenant-interference    tenant A's poison never bleeds into B
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

import repro
from repro.evalx import faults
from repro.evalx.checkpoint import CheckpointStore
from repro.evalx.metrics import RunMetrics
from repro.evalx.registry import run_experiment
from repro.evalx.service import manifest as mf
from repro.evalx.service.coordinator import Coordinator
from repro.evalx.service.jobs import JobError, JobSpec, JobStore
from repro.evalx.service.queue import LeaseQueue
from repro.evalx.service.worker import Worker

#: Default trace length per cell — small enough that the in-process
#: reference runs stay cheap, long enough to be a real sweep.
DEFAULT_TASKS = 3_000

#: Hard cap on any single condition wait. Scenario *outcomes* never
#: depend on timing — waits poll for durable on-disk conditions — so a
#: generous cap only bounds how long a genuinely broken build can hang.
WAIT_SECONDS = 120.0


@dataclass
class Check:
    """One verified invariant: a stable name plus free-form detail."""

    name: str
    ok: bool
    detail: str = ""


@dataclass
class Scenario:
    """One scenario's working state: a private service tree + checks."""

    name: str
    dir: Path
    seed: int
    tasks: int
    checks: list[Check] = field(default_factory=list)

    def check(self, name: str, ok: bool, detail: str = "") -> bool:
        self.checks.append(Check(name=name, ok=bool(ok), detail=detail))
        status = "ok  " if ok else "FAIL"
        suffix = f" ({detail})" if detail and not ok else ""
        print(f"  {status} {name}{suffix}", flush=True)
        return bool(ok)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)


class Campaign:
    """A seeded scenario matrix over per-scenario service trees."""

    def __init__(self, root: str | Path, seed: int, tasks: int) -> None:
        self.root = Path(root)
        self.seed = seed
        self.tasks = tasks
        self._references: dict[tuple, object] = {}

    def reference(self, experiment: str, **kwargs):
        """The serial in-process result every service run must equal.

        Cached per (experiment, kwargs) so a campaign pays for each
        sweep's ground truth once.
        """
        key = (experiment, json.dumps(kwargs, sort_keys=True))
        if key not in self._references:
            self._references[key] = run_experiment(
                experiment, n_tasks=self.tasks, quick=True, **kwargs
            )
        return self._references[key]

    def run(self, names: list[str]) -> dict:
        """Run the named scenarios; returns the JSON-ready report."""
        scenarios = []
        for name in names:
            print(f"=== scenario {name} ===", flush=True)
            scenario = Scenario(
                name=name,
                dir=self.root / name,
                seed=self.seed,
                tasks=self.tasks,
            )
            scenario.dir.mkdir(parents=True, exist_ok=True)
            try:
                SCENARIOS[name](self, scenario)
            except Exception as exc:  # harness bug ≠ silent pass
                scenario.check(
                    "scenario ran without harness error",
                    False,
                    repr(exc),
                )
            scenarios.append(scenario)
        return self.report(scenarios)

    def report(self, scenarios: list[Scenario]) -> dict:
        return {
            "seed": self.seed,
            "tasks": self.tasks,
            "ok": all(s.ok for s in scenarios),
            # The deterministic core: same seed -> identical outcomes.
            "outcomes": {
                s.name: [[c.name, c.ok] for c in s.checks]
                for s in scenarios
            },
            # Free-form diagnostics (may mention pids, timings, paths).
            "details": {
                s.name: [
                    {"name": c.name, "ok": c.ok, "detail": c.detail}
                    for c in s.checks
                ]
                for s in scenarios
            },
        }


# -- subprocess plumbing ----------------------------------------------


def _subprocess_env() -> dict[str, str]:
    """A child env with the repo importable and the injector disarmed.

    Victims opt into faults via ``--inject-faults`` on their own
    command line; inheriting a stale ``REPRO_FAULTS`` from the campaign
    environment would arm the wrong process.
    """
    env = dict(os.environ)
    env.pop(faults.ENV_VAR, None)
    src = str(Path(repro.__file__).resolve().parents[1])
    extra = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not extra else src + os.pathsep + extra
    return env


def _service_cmd(*args: str) -> list[str]:
    return [sys.executable, "-m", "repro.evalx.service", *args]


def _run_service(*args: str, timeout: float = 300.0):
    return subprocess.run(
        _service_cmd(*args),
        env=_subprocess_env(),
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def _wait(condition, timeout: float = WAIT_SECONDS) -> bool:
    """Poll a durable on-disk condition until true (or the cap)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return True
        time.sleep(0.02)
    return bool(condition())


def _store(scenario: Scenario) -> CheckpointStore:
    return CheckpointStore(scenario.dir / "store", resume=True)


def _queue(scenario: Scenario, ttl: float = 30.0) -> LeaseQueue:
    return LeaseQueue(_store(scenario), ttl_seconds=ttl)


def _leases_stealable(scenario: Scenario) -> bool:
    """Whether every surviving lease has expired (or vanished)."""
    store = _store(scenario)
    queue = LeaseQueue(store)
    for fingerprint in store.leases():
        lease = queue.read(fingerprint)
        if lease is not None and not lease.expired():
            return False
    return True


def _lease_events(path: Path) -> list[dict]:
    events = []
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError:
        return events
    for line in lines:
        try:
            event = json.loads(line)
        except ValueError:
            continue
        if event.get("event") == "lease":
            events.append(event)
    return events


def _submit(
    scenario: Scenario, experiment: str = "table2", **spec
) -> str:
    return JobStore(scenario.dir).submit(
        JobSpec(
            experiment=experiment,
            n_tasks=scenario.tasks,
            quick=True,
            **spec,
        )
    )


def _serve_clean(
    scenario: Scenario,
    worker_id: str,
    metrics_path: Path | None = None,
    max_lease_attempts: int = 3,
) -> int:
    """A fault-free in-process worker draining the scenario's queue."""
    with RunMetrics(path=metrics_path) as metrics:
        return Worker(
            scenario.dir,
            worker_id=worker_id,
            metrics=metrics,
            max_lease_attempts=max_lease_attempts,
        ).serve(poll_seconds=0.05, idle_rounds=3)


def _check_identical(
    campaign: Campaign,
    scenario: Scenario,
    job_id: str,
    experiment: str = "table2",
    **kwargs,
) -> None:
    """Fetch a done job and compare it to the serial ground truth."""
    jobs = JobStore(scenario.dir)
    record = jobs.get(job_id)
    if not scenario.check(
        "job reached the done state", record.state == "done",
        f"state={record.state} error={record.error}",
    ):
        return
    result = jobs.fetch(job_id)
    reference = campaign.reference(experiment, **kwargs)
    scenario.check(
        "result byte-identical to a serial run",
        result.text == reference.text and result.data == reference.data,
    )


# -- scenarios --------------------------------------------------------


def scenario_kill_worker_mid_lease(
    campaign: Campaign, scenario: Scenario
) -> None:
    """A worker dies holding a live lease; survivors finish the job."""
    job_id = _submit(scenario)
    Coordinator(scenario.dir).run_once()
    victim = _run_service(
        "worker", "--dir", str(scenario.dir),
        "--worker-id", "victim", "--ttl", "0.5", "--poll", "0.05",
        "--inject-faults", "kill-worker@gcc",
        "--fault-seed", str(scenario.seed),
    )
    scenario.check(
        "victim worker hard-killed mid-lease",
        victim.returncode == faults.KILL_EXIT_STATUS,
        f"exit={victim.returncode} stderr={victim.stderr[-500:]}",
    )
    scenario.check(
        "victim left an orphaned lease behind",
        bool(_store(scenario).leases()),
    )
    scenario.check(
        "orphaned lease expired", _wait(lambda: _leases_stealable(scenario))
    )
    survivor_metrics = scenario.dir / "survivor.jsonl"
    _serve_clean(scenario, "survivor", survivor_metrics)
    Coordinator(scenario.dir).run_once()
    _check_identical(campaign, scenario, job_id)
    completions: dict[str, int] = {}
    for event in _lease_events(survivor_metrics):
        if event.get("action") == "completed":
            fingerprint = event.get("fingerprint", "?")
            completions[fingerprint] = completions.get(fingerprint, 0) + 1
    scenario.check(
        "no cell published twice",
        all(count == 1 for count in completions.values()),
        f"completions={completions}",
    )


def scenario_kill_coordinator_mid_expand(
    campaign: Campaign, scenario: Scenario
) -> None:
    """Crash after the manifest is durable, before the record moves."""
    jobs = JobStore(scenario.dir)
    job_id = _submit(scenario)
    crashed = _run_service(
        "coordinator", "--dir", str(scenario.dir),
        "--poll", "0.05", "--rounds", "2",
        "--inject-faults", f"kill@expand:{job_id}",
        "--fault-seed", str(scenario.seed),
    )
    scenario.check(
        "coordinator hard-killed mid-expand",
        crashed.returncode == faults.KILL_EXIT_STATUS,
        f"exit={crashed.returncode} stderr={crashed.stderr[-500:]}",
    )
    manifest_path = mf.manifest_path(scenario.dir, job_id)
    scenario.check(
        "manifest is durable", manifest_path.exists()
    )
    scenario.check(
        "record still submitted (the torn state)",
        jobs.get(job_id).state == "submitted",
    )
    before = manifest_path.read_bytes()
    Coordinator(scenario.dir).run_once()
    scenario.check(
        "restarted coordinator adopted the manifest",
        jobs.get(job_id).state == "running",
    )
    scenario.check(
        "adoption left the manifest bytes untouched",
        manifest_path.read_bytes() == before,
    )
    record = jobs.get(job_id)
    scenario.check(
        "adopted bookkeeping matches the manifest",
        record.cells_total == len(mf.read_manifest(
            scenario.dir, job_id
        ).cells),
    )
    _serve_clean(scenario, "w1")
    Coordinator(scenario.dir).run_once()
    _check_identical(campaign, scenario, job_id)


def scenario_kill_coordinator_mid_finalise(
    campaign: Campaign, scenario: Scenario
) -> None:
    """Crash after the result is durable, before the record moves."""
    jobs = JobStore(scenario.dir)
    job_id = _submit(scenario)
    Coordinator(scenario.dir).run_once()
    _serve_clean(scenario, "w1")
    crashed = _run_service(
        "coordinator", "--dir", str(scenario.dir),
        "--poll", "0.05", "--rounds", "2",
        "--inject-faults", f"kill@finalise:{job_id}",
        "--fault-seed", str(scenario.seed),
    )
    scenario.check(
        "coordinator hard-killed mid-finalise",
        crashed.returncode == faults.KILL_EXIT_STATUS,
        f"exit={crashed.returncode} stderr={crashed.stderr[-500:]}",
    )
    scenario.check(
        "result is durable", jobs.result_path(job_id).exists()
    )
    scenario.check(
        "record still running (the torn state)",
        jobs.get(job_id).state == "running",
    )
    Coordinator(scenario.dir).run_once()
    _check_identical(campaign, scenario, job_id)


def scenario_hang_steal_zombie(
    campaign: Campaign, scenario: Scenario
) -> None:
    """A frozen worker's lease is stolen; the zombie must not publish."""
    job_id = _submit(scenario)
    Coordinator(scenario.dir).run_once()
    manifest = mf.read_manifest(scenario.dir, job_id)
    target = next(e for e in manifest.cells if e.label == "gcc")
    queue = _queue(scenario)
    victim_metrics = scenario.dir / "zombie.jsonl"
    victim = subprocess.Popen(
        _service_cmd(
            "worker", "--dir", str(scenario.dir),
            "--worker-id", "zombie", "--ttl", "0.5", "--poll", "0.05",
            "--metrics", str(victim_metrics),
            "--inject-faults", "hang(2.0)@gcc",
            "--fault-seed", str(scenario.seed),
        ),
        env=_subprocess_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        def _zombie_holds_target() -> bool:
            lease = queue.read(target.fingerprint)
            return lease is not None and lease.worker == "zombie"

        grabbed = _wait(_zombie_holds_target)
        scenario.check("zombie leased the target cell", grabbed)
        # Freeze the whole process — heartbeat thread included — so the
        # lease genuinely expires under a still-alive owner.
        os.kill(victim.pid, signal.SIGSTOP)
        scenario.check(
            "frozen zombie's lease expired",
            _wait(
                lambda: (
                    (lease := queue.read(target.fingerprint)) is None
                    or lease.expired()
                    or lease.worker != "zombie"
                )
            ),
        )
        _serve_clean(scenario, "thief")
        record_path = _store(scenario).path_for(target.fingerprint)
        scenario.check(
            "thief completed the stolen cell", record_path.exists()
        )
        published = record_path.read_bytes()
        os.kill(victim.pid, signal.SIGCONT)
        victim.wait(timeout=WAIT_SECONDS)
    finally:
        if victim.poll() is None:
            victim.kill()
            victim.wait(timeout=30)
    scenario.check(
        "woken zombie exited cleanly (no crash, no republish)",
        victim.returncode == 0,
        f"exit={victim.returncode}",
    )
    scenario.check(
        "thief's record bytes survived the zombie",
        record_path.read_bytes() == published,
    )
    zombie_actions = [
        event.get("action")
        for event in _lease_events(victim_metrics)
        if event.get("fingerprint") == target.fingerprint
    ]
    scenario.check(
        "zombie abandoned instead of completing",
        "completed" not in zombie_actions
        and "abandoned" in zombie_actions,
        f"actions={zombie_actions}",
    )
    Coordinator(scenario.dir).run_once()
    _check_identical(campaign, scenario, job_id)


def scenario_corrupt_lease(
    campaign: Campaign, scenario: Scenario
) -> None:
    """A damaged claim reads as expired-at-epoch and is stolen."""
    job_id = _submit(scenario)
    Coordinator(scenario.dir).run_once()
    manifest = mf.read_manifest(scenario.dir, job_id)
    target = manifest.cells[0]
    # A *valid* long-lived claim would wedge the cell for its full TTL;
    # corruption must fail open (stealable), not closed.
    wedge = _queue(scenario, ttl=3600.0)
    wedge.acquire(target.fingerprint, target.label, job_id, "wedge")
    scenario.check(
        "cell wedged behind a long-lived claim",
        wedge.state(target.fingerprint) == "leased",
    )
    faults.corrupt_file(
        _store(scenario).lease_path_for(target.fingerprint)
    )
    scenario.check(
        "damaged claim reads as expired, not valid",
        wedge.state(target.fingerprint) == "expired",
    )
    worker_metrics = scenario.dir / "worker.jsonl"
    _serve_clean(scenario, "w1", worker_metrics)
    steals = [
        event for event in _lease_events(worker_metrics)
        if event.get("action") == "steal"
        and event.get("fingerprint") == target.fingerprint
    ]
    scenario.check("damaged claim was stolen", len(steals) == 1)
    Coordinator(scenario.dir).run_once()
    _check_identical(campaign, scenario, job_id)


def scenario_corrupt_job_record(
    campaign: Campaign, scenario: Scenario
) -> None:
    """One damaged job record neither sinks the fleet nor leaks raw
    exceptions."""
    from repro.evalx.service.__main__ import main as service_main

    jobs = JobStore(scenario.dir)
    job_a = _submit(scenario, tenant="alice")
    job_b = JobStore(scenario.dir).submit(
        JobSpec(
            experiment="table2",
            n_tasks=scenario.tasks + 2,
            quick=True,
            tenant="bob",
        )
    )
    faults.corrupt_file(jobs.path_for(job_b))
    try:
        jobs.get(job_b)
        scenario.check("damaged record raises a typed JobError", False,
                       "get() returned normally")
    except JobError:
        scenario.check("damaged record raises a typed JobError", True)
    except Exception as exc:
        scenario.check(
            "damaged record raises a typed JobError", False, repr(exc)
        )
    scenario.check(
        "status CLI survives the damaged record",
        service_main(["status", "--dir", str(scenario.dir)]) == 0,
    )
    Coordinator(scenario.dir).run_once()
    _serve_clean(scenario, "w1")
    Coordinator(scenario.dir).run_once()
    _check_identical(campaign, scenario, job_a)


def scenario_corrupt_result(
    campaign: Campaign, scenario: Scenario
) -> None:
    """A damaged result pickle is detected and rebuilt byte-identically."""
    jobs = JobStore(scenario.dir)
    job_id = _submit(scenario)
    Coordinator(scenario.dir).run_once()
    _serve_clean(scenario, "w1")
    Coordinator(scenario.dir).run_once()
    scenario.check(
        "job finished before the damage",
        jobs.get(job_id).state == "done",
    )
    faults.corrupt_file(jobs.result_path(job_id))
    try:
        jobs.fetch(job_id)
        scenario.check("damaged result raises a typed JobError", False,
                       "fetch() returned normally")
    except JobError:
        scenario.check("damaged result raises a typed JobError", True)
    except Exception as exc:
        scenario.check(
            "damaged result raises a typed JobError", False, repr(exc)
        )
    coordinator = Coordinator(scenario.dir)
    counts = coordinator.reconcile()
    scenario.check(
        "reconcile demoted the job for re-finalisation",
        counts["rebuilt"] == 1,
        f"counts={counts}",
    )
    coordinator.run_once()
    _check_identical(campaign, scenario, job_id)


def scenario_poison_cell(
    campaign: Campaign, scenario: Scenario
) -> None:
    """A cell that kills every worker is quarantined after exactly 3
    lease generations and surfaces as a typed keep-going gap."""
    jobs = JobStore(scenario.dir)
    job_id = _submit(scenario, keep_going=True)
    Coordinator(scenario.dir).run_once()
    manifest = mf.read_manifest(scenario.dir, job_id)
    target = next(e for e in manifest.cells if e.label == "gcc")
    queue = _queue(scenario)
    kills = 0
    for generation in (1, 2, 3):
        round_worker = _run_service(
            "worker", "--dir", str(scenario.dir),
            "--worker-id", f"doomed-{generation}",
            "--ttl", "0.4", "--poll", "0.05",
            "--max-lease-attempts", "3",
            "--inject-faults", "kill-worker@gcc~0",
            "--fault-seed", str(scenario.seed),
        )
        if round_worker.returncode == faults.KILL_EXIT_STATUS:
            kills += 1
        scenario.check(
            f"lease generation {generation} killed its worker",
            round_worker.returncode == faults.KILL_EXIT_STATUS,
            f"exit={round_worker.returncode} "
            f"stderr={round_worker.stderr[-300:]}",
        )
        lease = queue.read(target.fingerprint)
        scenario.check(
            f"poison cell's lease carries attempt {generation}",
            lease is not None and lease.attempt == generation,
            f"lease={lease}",
        )
        scenario.check(
            f"generation {generation} lease expired",
            _wait(lambda: _leases_stealable(scenario)),
        )
    clean_metrics = scenario.dir / "clean.jsonl"
    _serve_clean(scenario, "clean", clean_metrics, max_lease_attempts=3)
    failure = mf.read_fail(scenario.dir, job_id, target.fingerprint)
    scenario.check(
        "poison cell quarantined with a typed marker",
        failure is not None and failure.kind == mf.QUARANTINED,
        f"failure={failure}",
    )
    scenario.check(
        "quarantine records exactly 3 burned lease attempts",
        kills == 3
        and failure is not None
        and failure.attempts == 3,
        f"kills={kills} failure={failure}",
    )
    quarantines = [
        event for event in _lease_events(clean_metrics)
        if event.get("action") == "quarantined"
    ]
    scenario.check(
        "quarantine emitted one metrics event", len(quarantines) == 1
    )
    Coordinator(scenario.dir).run_once()
    record = jobs.get(job_id)
    scenario.check(
        "keep-going job finished around the gap",
        record.state == "done",
        f"state={record.state} error={record.error}",
    )
    if record.state == "done":
        result = jobs.fetch(job_id)
        scenario.check(
            "quarantined cell surfaced as the only gap",
            result.data.get("_failed_cells") == ["gcc"]
            and len(result.failures) == 1
            and result.failures[0].kind == mf.QUARANTINED,
        )


def scenario_deadline_expiry(
    campaign: Campaign, scenario: Scenario
) -> None:
    """A job past its submission deadline retires, typed + terminal."""
    jobs = JobStore(scenario.dir)
    job_id = JobStore(scenario.dir).submit(
        JobSpec(
            experiment="table2",
            n_tasks=scenario.tasks,
            quick=True,
            timeout_seconds=0.4,
        )
    )
    metrics_path = scenario.dir / "coordinator.jsonl"
    with RunMetrics(path=metrics_path) as metrics:
        coordinator = Coordinator(scenario.dir, metrics=metrics)
        coordinator.run_once()  # expands before the deadline passes
        time.sleep(0.5)
        summary = coordinator.run_once()
    scenario.check(
        "deadline pass retired the job",
        summary["expired"] == 1,
        f"summary={summary}",
    )
    scenario.check(
        "expired state is terminal",
        jobs.get(job_id).state == "expired",
    )
    try:
        jobs.fetch(job_id)
        scenario.check("fetch of an expired job is a typed error", False,
                       "fetch() returned normally")
    except JobError as exc:
        scenario.check(
            "fetch of an expired job is a typed error",
            "expired" in str(exc),
            str(exc),
        )
    served = Worker(scenario.dir, worker_id="late").serve(
        poll_seconds=0.02, idle_rounds=2
    )
    scenario.check(
        "no worker serves an expired job", served == 0,
        f"served={served}",
    )
    events = [
        json.loads(line)
        for line in metrics_path.read_text(encoding="utf-8").splitlines()
    ]
    scenario.check(
        "deadline_expired metrics event recorded",
        any(
            event.get("event") == "job"
            and event.get("action") == "deadline_expired"
            for event in events
        ),
    )


def scenario_cancel_mid_flight(
    campaign: Campaign, scenario: Scenario
) -> None:
    """Cancelling a running job stops work and releases in-flight
    leases by expiry."""
    jobs = JobStore(scenario.dir)
    job_id = _submit(scenario)
    Coordinator(scenario.dir).run_once()
    manifest = mf.read_manifest(scenario.dir, job_id)
    target = manifest.cells[0]
    # A worker is mid-cell when the operator cancels.
    inflight = _queue(scenario, ttl=0.3)
    inflight.acquire(
        target.fingerprint, target.label, job_id, "inflight"
    )
    metrics_path = scenario.dir / "cancel.jsonl"
    with RunMetrics(path=metrics_path) as metrics:
        record = Coordinator(scenario.dir, metrics=metrics).cancel(
            job_id, reason="operator request"
        )
    scenario.check(
        "cancel moved the job to the terminal state",
        record.state == "cancelled"
        and jobs.get(job_id).state == "cancelled",
    )
    try:
        jobs.fetch(job_id)
        scenario.check("fetch of a cancelled job is a typed error",
                       False, "fetch() returned normally")
    except JobError as exc:
        scenario.check(
            "fetch of a cancelled job is a typed error",
            "cancelled" in str(exc),
            str(exc),
        )
    served = Worker(scenario.dir, worker_id="post-cancel").serve(
        poll_seconds=0.02, idle_rounds=2
    )
    scenario.check(
        "no worker serves a cancelled job", served == 0,
        f"served={served}",
    )
    scenario.check(
        "in-flight lease expires unrenewed",
        _wait(
            lambda: (
                (lease := inflight.read(target.fingerprint)) is None
                or lease.expired()
            )
        ),
    )
    try:
        Coordinator(scenario.dir).cancel(job_id)
        scenario.check("double cancel is a typed error", False,
                       "cancel() returned normally")
    except JobError:
        scenario.check("double cancel is a typed error", True)
    events = [
        json.loads(line)
        for line in metrics_path.read_text(encoding="utf-8").splitlines()
    ]
    scenario.check(
        "cancelled metrics event recorded",
        any(
            event.get("event") == "job"
            and event.get("action") == "cancelled"
            for event in events
        ),
    )


def scenario_two_tenant_interference(
    campaign: Campaign, scenario: Scenario
) -> None:
    """Tenant A's poison cell must not perturb tenant B's job at all."""
    jobs = JobStore(scenario.dir)
    job_a = _submit(scenario, keep_going=True, tenant="alice")
    # Tenant B sweeps figure7, whose labels are "name:scheme" — the
    # exact-match glob "gcc" in the poison spec can only ever hit
    # tenant A's bare "gcc" cell.
    job_b = JobStore(scenario.dir).submit(
        JobSpec(
            experiment="figure7",
            n_tasks=scenario.tasks,
            quick=True,
            tenant="bob",
            params={"benchmarks": ["gcc"]},
        )
    )
    Coordinator(scenario.dir).run_once()
    for generation in (1, 2):
        round_worker = _run_service(
            "worker", "--dir", str(scenario.dir),
            "--worker-id", f"doomed-{generation}",
            "--ttl", "0.4", "--poll", "0.05",
            "--max-lease-attempts", "2",
            "--inject-faults", "kill-worker@gcc~0",
            "--fault-seed", str(scenario.seed),
        )
        scenario.check(
            f"lease generation {generation} killed its worker",
            round_worker.returncode == faults.KILL_EXIT_STATUS,
            f"exit={round_worker.returncode}",
        )
        scenario.check(
            f"generation {generation} lease expired",
            _wait(lambda: _leases_stealable(scenario)),
        )
    _serve_clean(scenario, "clean", max_lease_attempts=2)
    Coordinator(scenario.dir).run_once()
    record_a = jobs.get(job_a)
    scenario.check(
        "tenant A finished around its quarantined cell",
        record_a.state == "done",
        f"state={record_a.state} error={record_a.error}",
    )
    if record_a.state == "done":
        result_a = jobs.fetch(job_a)
        scenario.check(
            "tenant A's only gap is the poison cell",
            result_a.data.get("_failed_cells") == ["gcc"],
        )
    _check_identical(
        campaign,
        scenario,
        job_b,
        experiment="figure7",
        benchmarks=["gcc"],
    )


#: Scenario registry, in campaign order. Names are the CLI vocabulary.
SCENARIOS = {
    "kill-worker-mid-lease": scenario_kill_worker_mid_lease,
    "kill-coordinator-mid-expand": scenario_kill_coordinator_mid_expand,
    "kill-coordinator-mid-finalise": (
        scenario_kill_coordinator_mid_finalise
    ),
    "hang-steal-zombie": scenario_hang_steal_zombie,
    "corrupt-lease": scenario_corrupt_lease,
    "corrupt-job-record": scenario_corrupt_job_record,
    "corrupt-result": scenario_corrupt_result,
    "poison-cell": scenario_poison_cell,
    "deadline-expiry": scenario_deadline_expiry,
    "cancel-mid-flight": scenario_cancel_mid_flight,
    "two-tenant-interference": scenario_two_tenant_interference,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description=(
            "Run a deterministic chaos campaign against the sweep "
            "service and machine-verify its robustness invariants."
        ),
    )
    parser.add_argument(
        "--scenarios", default="all",
        help="'all' or a comma-separated subset of: "
        + ", ".join(SCENARIOS),
    )
    parser.add_argument(
        "--seed", type=int, default=1302,
        help="fault-plan seed; one seed -> one outcome (default 1302)",
    )
    parser.add_argument(
        "--dir", default="chaos-campaign", metavar="DIR",
        help="campaign root; each scenario gets a subdirectory",
    )
    parser.add_argument(
        "--tasks", type=int, default=DEFAULT_TASKS,
        help=f"trace length per cell (default {DEFAULT_TASKS})",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="JSON report path (default <dir>/chaos-report.json)",
    )
    args = parser.parse_args(argv)
    if args.scenarios == "all":
        names = list(SCENARIOS)
    else:
        names = [
            name.strip()
            for name in args.scenarios.split(",")
            if name.strip()
        ]
        unknown = [name for name in names if name not in SCENARIOS]
        if unknown:
            print(
                f"error: unknown scenario(s) {unknown}; known: "
                f"{', '.join(SCENARIOS)}",
                file=sys.stderr,
            )
            return 2
    campaign = Campaign(args.dir, seed=args.seed, tasks=args.tasks)
    report = campaign.run(names)
    out = Path(args.out or (Path(args.dir) / "chaos-report.json"))
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    total = sum(len(checks) for checks in report["outcomes"].values())
    failed = sum(
        1
        for checks in report["outcomes"].values()
        for _, ok in checks
        if not ok
    )
    print(
        f"[chaos] {len(names)} scenario(s), {total} invariant(s), "
        f"{failed} failure(s); report: {out}"
    )
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
