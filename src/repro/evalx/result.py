"""The result record every experiment driver returns."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ExperimentResult:
    """One reproduced table or figure.

    Attributes:
        experiment_id: Registry id, e.g. ``"figure7"``.
        title: Human-readable description matching the paper's caption.
        text: Rendered report — the same rows/series the paper presents.
        data: Raw numbers keyed by experiment-specific names; the test
            suite asserts shape properties (orderings, crossovers) on these.
        failures: :class:`~repro.evalx.parallel.CellFailure` records for
            cells that failed under ``--keep-going``; empty on a clean
            run. The report text renders these as gaps.
    """

    experiment_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)
    failures: tuple = ()

    def __str__(self) -> str:
        return f"== {self.experiment_id}: {self.title} ==\n{self.text}"
