"""Deterministic fault injection (chaos) for the experiment engine.

The scheduler's repair paths — retry/backoff, per-cell timeout, worker
crash recovery, keep-going gaps, and checkpoint resume — are worth
nothing if they are only exercised by hand-built unit fixtures. This
module makes them drivable end to end against the real scheduler: a
seeded :class:`FaultPlan` decides up front exactly which cell attempts
misbehave and how, and the plan travels to subprocess workers through an
environment variable so pooled runs misbehave identically to serial
ones.

**Inert by default.** Nothing here fires unless a plan was explicitly
installed — via ``--inject-faults SPEC --fault-seed N`` on the CLI or
by exporting ``REPRO_FAULTS`` directly. The worker-side hook
(:func:`fire`) returns immediately when the environment variable is
unset, and the CKP002 analysis rule flags any code path that installs a
plan outside the CLI opt-in.

Spec grammar — comma-separated clauses::

    SPEC    := CLAUSE ("," CLAUSE)*
    CLAUSE  := ACTION ["(" SECONDS ")"] ["@" GLOB] ["#" COUNT] ["~" ATTEMPT]
    ACTION  := "raise" | "hang" | "kill" | "kill-worker"
             | "corrupt-checkpoint" | "corrupt-trace"

``GLOB`` is an fnmatch pattern over cell labels (default ``*``);
``COUNT`` is how many matching cells the clause hits (default 1) —
when fewer than the matches, victims are chosen by a deterministic
seeded draw over the *sorted* labels, so the same spec + seed + grid
always picks the same cells regardless of scheduling order; ``ATTEMPT``
is the 1-based attempt the fault fires on (default 1, so retries
succeed), and ``~0`` is the any-attempt wildcard — the fault fires on
*every* attempt, which is how a chaos campaign models a poison cell
that kills each worker that ever leases it (``kill-worker@gcc~0``).
``SECONDS`` is required for ``hang`` and ignored elsewhere.

Examples::

    kill@gcc:*                    # hard-kill the worker running one gcc cell
    raise@*#2                     # two cells (seeded choice) raise once
    hang(30)@espresso:*           # one espresso cell sleeps past its timeout
    raise@*~2,corrupt-checkpoint@compress

Worker-side actions (``raise``, ``hang``, ``kill``) fire inside
:func:`fire` at the top of the cell runner; store-side actions
(``corrupt-checkpoint``, ``corrupt-trace``) are applied by the parent
scheduler, which corrupts the matching record on disk so checksum
detection and regeneration run for real. The sweep service adds
``kill-worker``, fired from :func:`fire_worker` in the remote worker
loop just after the victim cell is leased — it hard-kills the whole
worker process so the lease-expiry/steal recovery path is exercised.
"""

from __future__ import annotations

import fnmatch
import json
import os
import random
import re
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ReproError

#: A JSON-encoded :class:`FaultPlan` in this variable arms the injector;
#: subprocess pool workers inherit it from the parent's environment.
ENV_VAR = "REPRO_FAULTS"

#: Actions executed inside the worker, at the top of the cell runner.
WORKER_ACTIONS = frozenset({"raise", "hang", "kill"})

#: Actions the parent applies to on-disk records before execution.
STORE_ACTIONS = frozenset({"corrupt-checkpoint", "corrupt-trace"})

#: Actions fired by the sweep-service worker loop (not the cell
#: runner): ``kill-worker`` hard-kills the whole remote worker process
#: right after it leases the matching cell — mid-lease, before any
#: result exists — so the lease-expiry/steal recovery path runs for
#: real (see :func:`fire_worker` and :mod:`repro.evalx.service.worker`).
SERVICE_ACTIONS = frozenset({"kill-worker"})

#: Exit status of a ``kill``-faulted worker (distinctive in waitpid logs).
KILL_EXIT_STATUS = 41


class FaultSpecError(ReproError):
    """An ``--inject-faults`` spec does not parse."""


class InjectedFault(ReproError):
    """The error a ``raise``-faulted cell attempt throws."""


_CLAUSE_RE = re.compile(
    r"^(?P<action>[a-z][a-z-]*)"
    r"(?:\((?P<seconds>[0-9]*\.?[0-9]+)\))?"
    r"(?:@(?P<glob>[^#~]+))?"
    r"(?:#(?P<count>[0-9]+))?"
    r"(?:~(?P<attempt>[0-9]+))?$"
)


@dataclass(frozen=True)
class FaultClause:
    """One parsed clause of a fault spec."""

    action: str
    glob: str = "*"
    count: int = 1
    attempt: int = 1
    seconds: float = 0.0


def parse_spec(spec: str) -> tuple[FaultClause, ...]:
    """Parse a fault spec into clauses, validating the grammar."""
    clauses = []
    for raw in spec.split(","):
        text = raw.strip()
        if not text:
            continue
        match = _CLAUSE_RE.match(text)
        if match is None:
            raise FaultSpecError(
                f"bad fault clause {text!r}; expected "
                "ACTION[(SECONDS)][@GLOB][#COUNT][~ATTEMPT]"
            )
        action = match.group("action")
        known = WORKER_ACTIONS | STORE_ACTIONS | SERVICE_ACTIONS
        if action not in known:
            raise FaultSpecError(
                f"unknown fault action {action!r}; known: {sorted(known)}"
            )
        seconds = match.group("seconds")
        if action == "hang" and seconds is None:
            raise FaultSpecError(
                "hang needs an explicit duration, e.g. hang(30)"
            )
        clauses.append(
            FaultClause(
                action=action,
                glob=match.group("glob") or "*",
                count=int(match.group("count") or 1),
                attempt=int(match.group("attempt") or 1),
                seconds=float(seconds) if seconds else 0.0,
            )
        )
    if not clauses:
        raise FaultSpecError("empty fault spec")
    return tuple(clauses)


@dataclass(frozen=True)
class FaultTrigger:
    """One armed fault: a concrete (cell label, attempt, action)."""

    label: str
    attempt: int
    action: str
    seconds: float = 0.0


@dataclass(frozen=True)
class FaultPlan:
    """The full set of armed triggers for one run.

    Built once, parent-side, from the spec + seed + the grid's cell
    labels (:meth:`compile`); serialized into ``REPRO_FAULTS`` so every
    worker sees the identical plan.
    """

    triggers: tuple[FaultTrigger, ...]
    seed: int = 0
    spec: str = ""

    @classmethod
    def compile(
        cls, spec: str, seed: int, labels: list[str] | tuple[str, ...]
    ) -> FaultPlan:
        """Resolve a spec against concrete cell labels, deterministically.

        Victim choice depends only on (spec, seed, sorted labels) —
        never on scheduling or completion order — so a chaos run is
        exactly reproducible.
        """
        distinct = sorted(set(labels))
        triggers: list[FaultTrigger] = []
        for index, clause in enumerate(parse_spec(spec)):
            matches = fnmatch.filter(distinct, clause.glob)
            if len(matches) > clause.count:
                rng = random.Random(f"{seed}:{index}:{clause.action}")
                matches = sorted(rng.sample(matches, clause.count))
            triggers.extend(
                FaultTrigger(
                    label=label,
                    attempt=clause.attempt,
                    action=clause.action,
                    seconds=clause.seconds,
                )
                for label in matches
            )
        return cls(triggers=tuple(triggers), seed=seed, spec=spec)

    def to_json(self) -> str:
        """Env-var wire form."""
        return json.dumps(
            {
                "seed": self.seed,
                "spec": self.spec,
                "triggers": [
                    {
                        "label": t.label,
                        "attempt": t.attempt,
                        "action": t.action,
                        "seconds": t.seconds,
                    }
                    for t in self.triggers
                ],
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, raw: str) -> FaultPlan:
        data = json.loads(raw)
        return cls(
            triggers=tuple(
                FaultTrigger(
                    label=t["label"],
                    attempt=int(t["attempt"]),
                    action=t["action"],
                    seconds=float(t.get("seconds", 0.0)),
                )
                for t in data.get("triggers", ())
            ),
            seed=int(data.get("seed", 0)),
            spec=str(data.get("spec", "")),
        )

    def store_triggers(self) -> tuple[FaultTrigger, ...]:
        """The parent-side (record-corrupting) triggers."""
        return tuple(
            t for t in self.triggers if t.action in STORE_ACTIONS
        )


def install(plan: FaultPlan) -> None:
    """Arm the injector process-wide (and for future pool workers).

    The only in-tree callers are the ``--inject-faults`` CLI path and
    tests: installing a plan anywhere else defeats the explicit opt-in
    and is flagged by the CKP002 analysis rule.
    """
    os.environ[ENV_VAR] = plan.to_json()


def uninstall() -> None:
    """Disarm the injector (idempotent)."""
    os.environ.pop(ENV_VAR, None)


_plan_cache: tuple[str, FaultPlan] | None = None


def active_plan() -> FaultPlan | None:
    """The installed plan, or None when the injector is inert."""
    global _plan_cache
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    if _plan_cache is None or _plan_cache[0] != raw:
        try:
            _plan_cache = (raw, FaultPlan.from_json(raw))
        except (ValueError, KeyError, TypeError) as exc:
            raise FaultSpecError(f"unparseable {ENV_VAR} value: {exc}")
    return _plan_cache[1]


def fire(label: str, attempt: int) -> None:
    """Worker-side hook: misbehave if this attempt is a planned victim.

    Called at the top of every cell attempt. Inert (one env lookup)
    unless a plan is installed. Store-side actions are not fired here —
    the parent applies those to the records it owns.
    """
    if not os.environ.get(ENV_VAR):
        return
    plan = active_plan()
    if plan is None:
        return
    for trigger in plan.triggers:
        if (
            trigger.label == label
            and trigger.attempt in (0, attempt)
            and trigger.action in WORKER_ACTIONS
        ):
            if trigger.action == "raise":
                raise InjectedFault(
                    f"injected fault: cell {label!r} attempt {attempt}"
                )
            if trigger.action == "hang":
                time.sleep(trigger.seconds)
                return
            if trigger.action == "kill":
                os._exit(KILL_EXIT_STATUS)


def fire_worker(label: str, attempt: int = 1) -> None:
    """Sweep-service hook: kill this worker if the cell is a victim.

    Called by the service worker loop right after it leases a cell and
    before the cell runs — the distributed analogue of a remote host
    dying mid-task. The worker's lease stays on disk, expires, and is
    stolen by a surviving worker, which is exactly the recovery path the
    chaos harness needs to drive. ``attempt`` is the lease generation
    (the cross-steal attempt counter), so ``~N`` targets the Nth worker
    to lease the cell and ``~0`` targets every one — a poison cell.
    Inert unless a plan is installed.
    """
    if not os.environ.get(ENV_VAR):
        return
    plan = active_plan()
    if plan is None:
        return
    for trigger in plan.triggers:
        if (
            trigger.label == label
            and trigger.attempt in (0, attempt)
            and trigger.action == "kill-worker"
        ):
            os._exit(KILL_EXIT_STATUS)


def corrupt_file(path: str | Path, flip_bytes: int = 16) -> bool:
    """Deliberately damage an on-disk record (chaos store action).

    Inverts ``flip_bytes`` bytes in the middle of the file — enough to
    defeat any checksum while keeping the length plausible, which is
    exactly the damage a torn write or bad sector produces. Returns
    whether the file existed and was corrupted.
    """
    path = Path(path)
    try:
        data = bytearray(path.read_bytes())
    except OSError:
        return False
    if not data:
        return False
    start = len(data) // 2
    for offset in range(start, min(start + flip_bytes, len(data))):
        data[offset] ^= 0xFF
    try:
        path.write_bytes(bytes(data))
    except OSError:
        return False
    return True
