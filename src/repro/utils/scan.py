"""Segmented finite-state-machine scans over grouped trace columns.

The realistic predictors keep their state in tables of small automata —
LE/LEH entries in a PHT, resetting confidence counters — and the scalar
simulators advance that state one trace record at a time. When an
automaton's reachable state space is small, its whole per-entry history
can instead be replayed as a *function-composition scan*: each trace step
is a state-transition function ``f_i(s) = T[s, input_i]``, and the state
an entry is in just before step ``i`` is the composition of every earlier
``f`` of the same entry applied to the initial state.

Representing each function as a length-``S`` lookup vector makes
composition a gather (``(g ∘ f)[s] = g[f[s]]``). A segment start is a
*constant* function pinning the state to its group's initial value, so
compositions may cross segment boundaries freely — which lets the whole
sorted trace be evaluated by a chunked three-pass scan (compose ``K``
functions per chunk columnwise across all chunks, propagate chunk-entry
states sequentially, re-run values inside chunks) in ``O(n · S)`` numpy
work with ``O(K + n/K)`` Python iterations — no log factor and no
per-step Python.

The scan is *exact*: transition tables are enumerated by driving a real
automaton object through every reachable state
(:func:`repro.predictors.automata.tabulate_automaton`), so the kernel is
bit-identical to the object-at-a-time reference by construction.
"""

from __future__ import annotations

import numpy as np

#: State-space ceiling for tabulation; above this a scan's memory traffic
#: (an ``(n, S)`` composition array) outweighs the Python loop it replaces.
MAX_SCAN_STATES = 64


def stable_argsort(keys: np.ndarray) -> np.ndarray:
    """Stable argsort, radix-friendly: narrow nonnegative keys to 16 bits.

    Radix sort cost scales with key width; table indices almost always
    fit 16 bits, which sorts ~5x faster than the same keys as int64.
    """
    keys = np.asarray(keys)
    if keys.size and 0 <= int(keys.min()) and int(keys.max()) < (1 << 16):
        keys = keys.astype(np.uint16)
    return np.argsort(keys, kind="stable")


def segmented_fsm_scan(
    group_ids: np.ndarray,
    inputs: np.ndarray,
    transitions: np.ndarray,
    initial_states: np.ndarray | None = None,
) -> np.ndarray:
    """Pre-update automaton state at every step of a grouped trace.

    ``group_ids[i]`` names the table entry step ``i`` touches (dense ids,
    ``0..G-1``); ``inputs[i]`` is the training input the step applies to
    that entry; ``transitions[s, x]`` is the automaton's next state from
    state ``s`` on input ``x``. Returns ``states`` where ``states[i]`` is
    the entry's state *before* step ``i``'s update — i.e. the state its
    prediction is read from — with every entry starting in
    ``initial_states[group]`` (state 0 when omitted).

    Equivalent to, but much faster than::

        table = defaultdict(int)
        for i in range(n):
            states[i] = table[group_ids[i]]
            table[group_ids[i]] = transitions[states[i], inputs[i]]
    """
    n = len(group_ids)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    n_states = transitions.shape[0]
    order = stable_argsort(group_ids)
    grouped = group_ids[order]
    starts = np.empty(n, dtype=bool)
    starts[0] = True
    starts[1:] = grouped[1:] != grouped[:-1]

    # Chunk geometry: the Python-iteration count is 2K + n/K, but each
    # pass-1/3 iteration also moves O(n/K) data, so the optimum sits
    # well below sqrt(n).
    chunk = max(int((n / 8) ** 0.5), 1)
    n_chunks = -(-n // chunk)
    padded = n_chunks * chunk

    # Per-step functions in sorted order: funcs[k] maps the state before
    # step k-1's update to the state before step k's update. A segment
    # start is a constant function (the group's initial state), so a
    # composition never leaks state across segments; pads are identity.
    funcs = np.empty((padded, n_states), dtype=np.int8)
    inp = inputs[order]
    if n > 1:
        funcs[1:n] = transitions[:, inp[:-1]].T
    start_rows = np.flatnonzero(starts)
    if initial_states is None:
        funcs[start_rows] = 0
    else:
        init_col = initial_states[grouped].astype(np.int8)
        funcs[start_rows] = init_col[start_rows][:, None]
    funcs[n:] = np.arange(n_states, dtype=np.int8)

    # Gathers below address funcs flat: element (m, k, s) lives at
    # (m * chunk + k) * n_states + s.
    flat = funcs.reshape(-1)
    base = np.arange(n_chunks, dtype=np.int64) * (chunk * n_states)

    # Pass 1: compose each chunk's functions, columnwise across chunks.
    composed = funcs.reshape(n_chunks, chunk, n_states)[:, 0, :].astype(
        np.int64
    )
    for k in range(1, chunk):
        composed = flat.take((base + k * n_states)[:, None] + composed)

    # Pass 2: propagate the entry state of each chunk sequentially (the
    # first chunk opens with a constant function, so 0 is a safe seed).
    entries = np.empty(n_chunks, dtype=np.int64)
    state = 0
    for index, row in enumerate(composed.tolist()):
        entries[index] = state
        state = row[state]

    # Pass 3: re-run the per-step functions on values inside every chunk
    # at once to recover each step's pre-update state.
    current = entries
    states_sorted = np.empty((n_chunks, chunk), dtype=np.int64)
    for k in range(chunk):
        current = flat.take(base + k * n_states + current)
        states_sorted[:, k] = current

    states = np.empty(n, dtype=np.int64)
    states[order] = states_sorted.reshape(-1)[:n]
    return states


def final_fsm_states(
    group_ids: np.ndarray,
    inputs: np.ndarray,
    transitions: np.ndarray,
    pre_states: np.ndarray,
    n_groups: int,
    initial_states: np.ndarray | None = None,
) -> np.ndarray:
    """State of every entry after the last step of a scanned trace.

    Complements :func:`segmented_fsm_scan` for chunked (checkpoint /
    resume) replays: the returned vector feeds the next chunk's
    ``initial_states``. Entries never touched keep their initial state.
    """
    if initial_states is None:
        finals = np.zeros(n_groups, dtype=np.int64)
    else:
        finals = initial_states.astype(np.int64).copy()
    if len(group_ids):
        # Trace order + numpy's documented repeated-index rule (the last
        # assignment wins) leave each entry at its final post-update state.
        post = transitions[pre_states, inputs].astype(np.int64)
        finals[group_ids] = post
    return finals


def running_max_with_drift(
    values: np.ndarray, drift: int
) -> np.ndarray:
    """``out[i] = max_{j <= i}(values[j] + (i - j) * drift)``.

    The max-plus prefix scan behind FIFO-commit chains: rewriting the
    recurrence ``c_i = max(v_i, c_{i-1} + drift)`` as a prefix maximum of
    ``values[j] - j * drift`` plus ``i * drift`` turns it into one
    ``np.maximum.accumulate`` — no Python loop.
    """
    offsets = np.arange(len(values), dtype=np.int64) * np.int64(drift)
    return np.maximum.accumulate(values - offsets) + offsets
