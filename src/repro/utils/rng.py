"""Deterministic random-number streams.

Every stochastic component of the library (workload generation, random
tie-breaking in voting counters) draws from a :class:`DeterministicRng` so
that experiments are exactly reproducible from a seed. The class is a thin,
explicit wrapper over :class:`random.Random` — we intentionally avoid global
RNG state.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from typing import TypeVar

from repro.utils.hashing import stable_hash

T = TypeVar("T")


class DeterministicRng:
    """A seeded random stream with the handful of draws the library needs."""

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        """The seed this stream was created with."""
        return self._seed

    def fork(self, label: str) -> "DeterministicRng":
        """Return an independent stream derived from this seed and ``label``.

        Forking lets subsystems own private streams so that adding draws in
        one subsystem does not perturb another. The derivation uses a
        process-independent hash, so forked streams are reproducible across
        runs (Python's built-in ``hash`` is salted per process).
        """
        derived = stable_hash(f"{self._seed}:{label}")
        return DeterministicRng(derived)

    def uniform(self) -> float:
        """Return a float in [0, 1)."""
        return self._random.random()

    def randint(self, lo: int, hi: int) -> int:
        """Return an integer in [lo, hi] inclusive."""
        return self._random.randint(lo, hi)

    def choice(self, items: Sequence[T]) -> T:
        """Return a uniformly random element of ``items``."""
        return self._random.choice(items)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Return an element of ``items`` drawn with the given weights."""
        return self._random.choices(items, weights=weights, k=1)[0]

    def shuffle(self, items: list[T]) -> None:
        """Shuffle ``items`` in place."""
        self._random.shuffle(items)

    def sample_geometric(self, p: float, cap: int) -> int:
        """Return a geometric draw >= 1 capped at ``cap``.

        Used for loop trip counts and call fan-out in the workload generator.
        """
        count = 1
        while count < cap and self._random.random() >= p:
            count += 1
        return count
