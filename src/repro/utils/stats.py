"""Small statistics helpers shared by simulators and experiments."""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable, Iterable
from dataclasses import dataclass, field


@dataclass
class RateCounter:
    """Counts trials and hits; reports a hit rate and a miss rate.

    Used throughout the simulators for prediction accuracy bookkeeping.
    """

    trials: int = 0
    hits: int = 0

    def record(self, hit: bool) -> None:
        """Record one trial with the given outcome."""
        self.trials += 1
        if hit:
            self.hits += 1

    @property
    def misses(self) -> int:
        """Number of recorded misses."""
        return self.trials - self.hits

    @property
    def hit_rate(self) -> float:
        """Fraction of trials that hit; 0.0 when no trials were recorded."""
        return self.hits / self.trials if self.trials else 0.0

    @property
    def miss_rate(self) -> float:
        """Fraction of trials that missed; 0.0 when no trials were recorded."""
        return 1.0 - self.hit_rate if self.trials else 0.0

    def merge(self, other: "RateCounter") -> None:
        """Fold another counter's trials into this one."""
        self.trials += other.trials
        self.hits += other.hits


@dataclass
class CategoryTally:
    """Counts occurrences per category and reports distributions.

    Backs the exit-arity and exit-type breakdowns of Figures 3 and 4.
    """

    counts: Counter = field(default_factory=Counter)

    def record(self, category: Hashable, weight: int = 1) -> None:
        """Add ``weight`` occurrences of ``category``."""
        self.counts[category] += weight

    def record_all(self, categories: Iterable[Hashable]) -> None:
        """Record one occurrence of each category in ``categories``."""
        for category in categories:
            self.counts[category] += 1

    @property
    def total(self) -> int:
        """Total occurrences across all categories."""
        return sum(self.counts.values())

    def fraction(self, category: Hashable) -> float:
        """Fraction of occurrences in ``category``; 0.0 if nothing recorded."""
        total = self.total
        return self.counts[category] / total if total else 0.0

    def distribution(self) -> dict[Hashable, float]:
        """Return {category: fraction}, sorted by category."""
        total = self.total
        if not total:
            return {}
        return {
            category: count / total
            for category, count in sorted(self.counts.items(), key=lambda kv: str(kv[0]))
        }
