"""Bit-manipulation primitives used by header encoding and index folding.

The predictors in this library follow the paper's hardware-oriented index
construction: concatenate address bits into an *intermediate index*, then
XOR-fold it down to the width of the physical table (paper §6.1, Figure 9).
These helpers implement the pieces of that pipeline.
"""

from __future__ import annotations

from repro.errors import EncodingError


def bit_mask(width: int) -> int:
    """Return a mask with the low ``width`` bits set.

    >>> bit_mask(4)
    15
    """
    if width < 0:
        raise EncodingError(f"mask width must be >= 0, got {width}")
    return (1 << width) - 1


def low_bits(value: int, width: int) -> int:
    """Return the low ``width`` bits of ``value``.

    >>> low_bits(0b101101, 3)
    5
    """
    return value & bit_mask(width)


def extract_bits(value: int, lo: int, width: int) -> int:
    """Return ``width`` bits of ``value`` starting at bit ``lo`` (LSB = 0).

    >>> extract_bits(0b110100, 2, 3)
    5
    """
    if lo < 0:
        raise EncodingError(f"bit offset must be >= 0, got {lo}")
    return (value >> lo) & bit_mask(width)


def fold_xor(value: int, total_width: int, folds: int) -> int:
    """XOR-fold ``value`` of ``total_width`` bits into ``total_width / folds`` bits.

    The value is split into ``folds`` equal sub-fields which are XORed
    together, exactly as the paper folds the intermediate index into the PHT
    index (§6.1). ``total_width`` must be a multiple of ``folds``.

    >>> fold_xor(0b1010_0110, 8, 2)  # 0b1010 ^ 0b0110
    12
    """
    if folds < 1:
        raise EncodingError(f"fold count must be >= 1, got {folds}")
    if total_width < 0:
        raise EncodingError(f"total width must be >= 0, got {total_width}")
    if total_width % folds != 0:
        raise EncodingError(
            f"intermediate index width {total_width} is not divisible by "
            f"fold count {folds}"
        )
    field_width = total_width // folds
    mask = bit_mask(field_width)
    folded = 0
    for i in range(folds):
        folded ^= (value >> (i * field_width)) & mask
    return folded


def required_bits(n_values: int) -> int:
    """Return the number of bits needed to represent ``n_values`` distinct values.

    >>> required_bits(4)
    2
    >>> required_bits(5)
    3
    """
    if n_values < 1:
        raise EncodingError(f"need at least one value, got {n_values}")
    return max(1, (n_values - 1).bit_length())
