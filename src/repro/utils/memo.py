"""Identity-keyed memoisation for columns derived from trace arrays.

A Table 4 sweep runs many predictor schemes over the *same* workload
traces, and every batched run re-derives columns that depend only on the
trace and static program facts — path-index columns, header tables,
return-address timelines. Those inputs are ndarrays (unhashable) and
programs (alive for the whole sweep), so the cache keys on the *object
identities* of its anchor inputs and holds only weak references to them:
when a trace or program is garbage-collected its derived columns go too,
and a recycled ``id`` can never alias a dead anchor because the stored
weak references are revalidated on every hit.

Cached values are shared between callers and must be treated as
immutable; callers that need a private copy must copy explicitly.
"""

from __future__ import annotations

import weakref
from typing import Any, Callable, Hashable

import numpy as np

#: Entry count that triggers a sweep of dead-anchor entries.
_PRUNE_THRESHOLD = 256


class DerivedColumnCache:
    """Memoise ``build()`` results keyed by anchor identity + a tag.

    ``anchors`` are the objects the derived value is a pure function of
    (trace columns, programs); ``tag`` carries any hashable non-object
    parameters (specs, depths, config tuples). Anchors that cannot be
    weak-referenced simply bypass the cache.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple, tuple[tuple, Any]] = {}

    def get(
        self,
        anchors: tuple,
        tag: Hashable,
        build: Callable[[], Any],
    ) -> Any:
        key = (tuple(id(anchor) for anchor in anchors), tag)
        entry = self._entries.get(key)
        if entry is not None:
            refs, value = entry
            if all(
                ref() is anchor for ref, anchor in zip(refs, anchors)
            ):
                return value
        value = build()
        try:
            refs = tuple(weakref.ref(anchor) for anchor in anchors)
        except TypeError:
            return value
        if len(self._entries) >= _PRUNE_THRESHOLD:
            self._entries = {
                k: (rs, v)
                for k, (rs, v) in self._entries.items()
                if all(r() is not None for r in rs)
            }
        self._entries[key] = (refs, value)
        return value


_INT64_CACHE = DerivedColumnCache()


def int64_column(values: Any) -> np.ndarray:
    """``np.asarray(values, dtype=int64)`` with a canonical result.

    Trace columns are stored at their natural narrow widths (uint8 /
    uint16 / uint32), so a plain ``asarray`` widens to a *new* object on
    every call — which would defeat every identity-keyed cache anchored
    on the widened column. This helper returns the *same* int64 array for
    the same source object, making widened columns usable as cache
    anchors. The result is shared: treat it as read-only.
    """
    arr = np.asarray(values)
    if arr.dtype == np.int64:
        return arr
    return _INT64_CACHE.get(
        (values,), "int64", lambda: arr.astype(np.int64)
    )
