"""Identity-keyed memoisation for columns derived from trace arrays.

A Table 4 sweep runs many predictor schemes over the *same* workload
traces, and every batched run re-derives columns that depend only on the
trace and static program facts — path-index columns, header tables,
return-address timelines. Those inputs are ndarrays (unhashable) and
programs (alive for the whole sweep), so the cache keys on the *object
identities* of its anchor inputs and holds only weak references to them:
entries are evicted least-recently-used first once the cache fills (a
dead anchor's entry simply ages out), and a recycled ``id`` can never
alias a dead anchor because the stored weak references are revalidated
on every hit.

Cached values are shared between callers and must be treated as
immutable; callers that need a private copy must copy explicitly.
"""

from __future__ import annotations

import weakref
from typing import Any, Callable, Hashable

import numpy as np

#: Entry-count bound: an insert at this size evicts the LRU entry.
_PRUNE_THRESHOLD = 256


class DerivedColumnCache:
    """Memoise ``build()`` results keyed by anchor identity + a tag.

    ``anchors`` are the objects the derived value is a pure function of
    (trace columns, programs); ``tag`` carries any hashable non-object
    parameters (specs, depths, config tuples). Anchors that cannot be
    weak-referenced simply bypass the cache.

    The cache is bounded: an insert that would exceed
    ``_PRUNE_THRESHOLD`` entries evicts the least recently used entry
    first (O(1) per insert). An evicted value is simply rebuilt on the
    next request.
    """

    def __init__(self) -> None:
        # Insertion/refresh order doubles as recency order: a hit moves
        # its key to the end, so the front is always the LRU candidate.
        self._entries: dict[tuple, tuple[tuple, Any]] = {}

    def get(
        self,
        anchors: tuple,
        tag: Hashable,
        build: Callable[[], Any],
    ) -> Any:
        key = (tuple(id(anchor) for anchor in anchors), tag)
        entry = self._entries.get(key)
        if entry is not None:
            refs, value = entry
            if all(
                ref() is anchor for ref, anchor in zip(refs, anchors)
            ):
                self._entries[key] = self._entries.pop(key)
                return value
        value = build()
        try:
            refs = tuple(weakref.ref(anchor) for anchor in anchors)
        except TypeError:
            return value
        if len(self._entries) >= _PRUNE_THRESHOLD:
            self._evict()
        self._entries[key] = (refs, value)
        return value

    def _evict(self) -> None:
        """Make room by dropping least-recently-used entries.

        Popping from the front is O(1) per insert, unlike the previous
        dead-anchor-only rebuild, which re-scanned the whole dict on
        every insert once ≥ ``_PRUNE_THRESHOLD`` entries were *live* —
        and never shrank it. Dead-anchor entries need no special sweep:
        they are never refreshed, so they age to the front and fall out
        here (and their weakrefs never kept the anchors alive anyway).
        """
        while len(self._entries) >= _PRUNE_THRESHOLD:
            self._entries.pop(next(iter(self._entries)))


_INT64_CACHE = DerivedColumnCache()


def int64_column(values: Any) -> np.ndarray:
    """``np.asarray(values, dtype=int64)`` with a canonical result.

    Trace columns are stored at their natural narrow widths (uint8 /
    uint16 / uint32), so a plain ``asarray`` widens to a *new* object on
    every call — which would defeat every identity-keyed cache anchored
    on the widened column. This helper returns the *same* int64 array for
    the same source object, making widened columns usable as cache
    anchors. The result is shared: treat it as read-only.
    """
    arr = np.asarray(values)
    if arr.dtype == np.int64:
        return arr
    return _INT64_CACHE.get(
        (values,), "int64", lambda: arr.astype(np.int64)
    )
