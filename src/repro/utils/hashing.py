"""Stable (process-independent) hashing.

Python's built-in ``hash`` on strings is salted per process, so it must never
feed anything that has to be reproducible across runs. All label hashing in
the library goes through :func:`stable_hash` (FNV-1a, 64-bit) instead.
"""

from __future__ import annotations

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def stable_hash(text: str) -> int:
    """Return a deterministic 63-bit hash of ``text`` (FNV-1a)."""
    value = _FNV_OFFSET
    for byte in text.encode("utf-8"):
        value = ((value ^ byte) * _FNV_PRIME) & _MASK64
    return value >> 1  # keep it non-negative in signed contexts


def mix_hash(a: int, b: int) -> int:
    """Combine two hash values into one, order-sensitively."""
    return ((a * 0x9E3779B97F4A7C15) ^ b) & _MASK64
