"""Durable file writes for the tmp+``os.replace`` publication idiom.

``os.replace`` makes a publication *atomic* (readers see the old file
or the new one, never a mix), but not *durable*: after a crash plus
power loss the rename can survive while the temp's data blocks never
hit the platter, leaving a zero-length or partial file under a
committed name. Durability-critical records — checkpoint records, job
records and results, queue manifests, fail markers — must therefore
flush and ``os.fsync`` the temp before renaming it.

These helpers are byte-for-byte equivalent to ``Path.write_text`` /
``Path.write_bytes`` plus the fsync; callers keep their own
pid-unique sibling-temp naming and ``os.replace`` so the publication
idiom stays visible (and checkable) at the call site. The FS002
analysis rule recognises them through its call summaries.
"""

from __future__ import annotations

import os
from pathlib import Path


def fsync_write_text(
    path: Path, text: str, encoding: str = "utf-8"
) -> None:
    """Write ``text`` to ``path`` and fsync before returning."""
    with open(path, "w", encoding=encoding) as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())


def fsync_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` and fsync before returning."""
    with open(path, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
