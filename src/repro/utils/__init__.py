"""Shared low-level utilities: bit manipulation, deterministic RNG, statistics."""

from repro.utils.bits import (
    bit_mask,
    extract_bits,
    fold_xor,
    low_bits,
    required_bits,
)
from repro.utils.rng import DeterministicRng
from repro.utils.stats import CategoryTally, RateCounter

__all__ = [
    "bit_mask",
    "extract_bits",
    "fold_xor",
    "low_bits",
    "required_bits",
    "DeterministicRng",
    "CategoryTally",
    "RateCounter",
]
