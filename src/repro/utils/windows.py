"""Vectorized history grouping for the batched simulators.

The ideal (alias-free) predictors key their tables by tuples of recent
history — the last ``D`` exit indices, the last ``D`` task addresses, or
the last ``D`` exits *of the current task*. The batched simulation
kernels need those keys for every trace step at once, as dense integer
ids usable as flat-array indices.

The pipeline, chosen for speed on hundreds of thousands of steps:

1. **Factorize** each value domain once (:func:`factorize`): one sort of
   the base sequence maps arbitrary addresses to dense codes.
2. Build **trailing-window columns** of shifted codes. Codes are offset
   by one so 0 can mean "no history yet": a row recorded before ``D``
   outcomes exist is left-padded with zeros, which keeps short histories
   distinct from full-depth ones exactly the way tuples of different
   lengths are distinct dictionary keys.
3. **Bit-pack** the columns into as few int64 words as possible
   (:func:`group_columns`): with dense codes, a depth-7 exit history plus
   the task address usually fits one word, so grouping costs a single
   argsort instead of a lexicographic sort over eight columns.
"""

from __future__ import annotations

import numpy as np


def factorize(values: np.ndarray) -> tuple[np.ndarray, int]:
    """Map a 1-D sequence to dense codes ``0..K-1``; returns ``(codes, K)``.

    Equal values share a code. Codes are assigned in sorted-value order,
    but callers should treat them as opaque group labels.
    """
    values = np.asarray(values)
    n = len(values)
    if n == 0:
        return np.empty(0, dtype=np.int64), 0
    order = np.argsort(values, kind="stable")
    ranked = values[order]
    change = np.empty(n, dtype=bool)
    change[0] = True
    change[1:] = ranked[1:] != ranked[:-1]
    ranked_codes = np.cumsum(change, dtype=np.int64) - 1
    codes = np.empty(n, dtype=np.int64)
    codes[order] = ranked_codes
    return codes, int(ranked_codes[-1]) + 1


def _field_bits(cardinality: int) -> int:
    """Bits needed to store one field with ``cardinality`` distinct values."""
    return max(1, int(cardinality - 1).bit_length())


def group_columns(
    columns: list[tuple[np.ndarray, int]],
) -> tuple[np.ndarray, int]:
    """Dense row ids over parallel code columns.

    ``columns`` is a list of ``(codes, cardinality)`` pairs where every
    code lies in ``range(cardinality)``. Rows (one per index, reading one
    code from each column) get equal ids iff they are equal in every
    column. Columns are bit-packed into 62-bit words first, so the common
    case costs a single sort.
    """
    if not columns:
        raise ValueError("group_columns needs at least one column")
    packed: list[np.ndarray] = []
    word: np.ndarray | None = None
    used_bits = 0
    for codes, cardinality in columns:
        bits = _field_bits(cardinality)
        if word is None or used_bits + bits > 62:
            if word is not None:
                packed.append(word)
            word = np.asarray(codes, dtype=np.int64).copy()
            used_bits = bits
        else:
            word = (word << bits) | codes
            used_bits += bits
    packed.append(word)
    if len(packed) == 1:
        return factorize(packed[0])
    matrix = np.column_stack(packed)
    n = len(matrix)
    if n == 0:
        return np.empty(0, dtype=np.int64), 0
    order = np.lexsort(matrix.T[::-1])
    ranked = matrix[order]
    change = np.empty(n, dtype=bool)
    change[0] = True
    change[1:] = (ranked[1:] != ranked[:-1]).any(axis=1)
    ranked_ids = np.cumsum(change, dtype=np.int64) - 1
    ids = np.empty(n, dtype=np.int64)
    ids[order] = ranked_ids
    return ids, int(ranked_ids[-1]) + 1


def _window_columns(
    codes: np.ndarray, cardinality: int, depth: int
) -> list[tuple[np.ndarray, int]]:
    """Trailing-window columns of a code sequence, one per history lag.

    Column ``lag`` holds ``codes[i - lag] + 1`` at row ``i`` (0 where the
    sequence hasn't produced that many items yet) — the vectorized
    equivalent of a ``deque(maxlen=depth)`` snapshot taken before step
    ``i`` is appended.
    """
    n = len(codes)
    columns = []
    for lag in range(1, depth + 1):
        column = np.zeros(n, dtype=np.int64)
        if lag < n:
            column[lag:] = codes[: n - lag] + 1
        columns.append((column, cardinality + 1))
    return columns


def _per_key_window_columns(
    key_codes: np.ndarray,
    codes: np.ndarray,
    cardinality: int,
    depth: int,
) -> list[tuple[np.ndarray, int]]:
    """Trailing-window columns of each key's own code subsequence.

    Like :func:`_window_columns`, but row ``i``'s window reads only
    earlier steps with the same ``key_codes[i]`` — the vectorized
    equivalent of one ``deque(maxlen=depth)`` per distinct key. Used by
    the PER (per-task history) predictor.
    """
    n = len(codes)
    if n == 0 or depth == 0:
        return [
            (np.zeros(n, dtype=np.int64), cardinality + 1)
        ] * depth
    order = np.argsort(key_codes, kind="stable")
    sorted_keys = key_codes[order]
    sorted_codes = codes[order]
    # Occurrence index of each step within its key's subsequence. The
    # stable sort keeps each key's steps contiguous and in trace order.
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    new_group[1:] = sorted_keys[1:] != sorted_keys[:-1]
    group_start = np.maximum.accumulate(
        np.where(new_group, np.arange(n), 0)
    )
    occurrence = np.arange(n) - group_start
    columns = []
    for lag in range(1, depth + 1):
        column = np.zeros(n, dtype=np.int64)
        if lag < n:
            column[lag:] = sorted_codes[: n - lag] + 1
        # A lag crossing into the previous key's segment is history that
        # doesn't exist for this key yet.
        column[occurrence < lag] = 0
        unsorted = np.empty(n, dtype=np.int64)
        unsorted[order] = column
        columns.append((unsorted, cardinality + 1))
    return columns


def _combine_windows(
    ids: np.ndarray, cardinality: int, lag: int
) -> tuple[np.ndarray, int]:
    """Ids of window pairs ``(window ending at i - lag, window at i)``.

    A step whose left window would start before the sequence gets a
    distinct "absent" marker, preserving the short-history distinctions.
    """
    n = len(ids)
    shifted = np.full(n, -1, dtype=np.int64)
    if lag < n:
        shifted[lag:] = ids[: n - lag]
    return factorize((shifted + 1) * cardinality + ids)


def group_by_path(addrs: np.ndarray, depth: int) -> np.ndarray:
    """Dense ids of ``(addr_i, last depth addresses before step i)``.

    The key is a contiguous trailing window of length ``depth + 1``, so
    it's built by recursive doubling: window ids double in length each
    round by pairing a window with a (possibly overlapping) earlier one.
    Address cardinality is too high for the bit-packing of
    :func:`group_columns`, and ~log2(depth) factorize passes over small-
    cardinality ids beat a lexicographic sort over depth + 1 columns.
    """
    codes, cardinality = factorize(np.asarray(addrs))
    length = 1
    while length < depth + 1:
        step = min(length, depth + 1 - length)
        codes, cardinality = _combine_windows(codes, cardinality, step)
        length += step
    return codes


def group_by_global_history(
    addrs: np.ndarray, outcomes: np.ndarray, depth: int
) -> np.ndarray:
    """Dense ids of ``(addr_i, last depth outcomes before step i)``."""
    addr_codes, addr_card = factorize(addrs)
    outcome_codes, outcome_card = factorize(outcomes)
    columns = [(addr_codes, addr_card)]
    columns += _window_columns(outcome_codes, outcome_card, depth)
    ids, _ = group_columns(columns)
    return ids


def group_by_per_key_history(
    addrs: np.ndarray, outcomes: np.ndarray, depth: int
) -> np.ndarray:
    """Dense ids of ``(addr_i, last depth outcomes of addr_i before i)``."""
    addr_codes, addr_card = factorize(addrs)
    outcome_codes, outcome_card = factorize(outcomes)
    columns = [(addr_codes, addr_card)]
    columns += _per_key_window_columns(
        addr_codes, outcome_codes, outcome_card, depth
    )
    ids, _ = group_columns(columns)
    return ids
