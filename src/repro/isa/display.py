"""Human-readable dumps of Multiscalar executables.

A "task disassembler": renders headers, tasks, and TFG neighbourhoods the
way a binutils-style tool would, for debugging generated programs and for
documentation. All functions return strings; nothing prints.
"""

from __future__ import annotations

from repro.isa.controlflow import ControlFlowType
from repro.isa.encoding import header_size_bits
from repro.isa.program import MultiscalarProgram
from repro.isa.task import StaticTask, TaskExit

_TYPE_MNEMONICS = {
    ControlFlowType.BRANCH: "br",
    ControlFlowType.CALL: "call",
    ControlFlowType.RETURN: "ret",
    ControlFlowType.INDIRECT_BRANCH: "ibr",
    ControlFlowType.INDIRECT_CALL: "icall",
}


def format_exit(task_exit: TaskExit) -> str:
    """One exit as e.g. ``call -> 0x2000 (ret 0x1010)`` or ``ibr -> ?``."""
    mnemonic = _TYPE_MNEMONICS[task_exit.cf_type]
    target = (
        f"{task_exit.target:#x}" if task_exit.target is not None else "?"
    )
    text = f"{mnemonic} -> {target}"
    if task_exit.return_address is not None:
        text += f" (ret {task_exit.return_address:#x})"
    return text


def format_task(task: StaticTask) -> str:
    """A task as a multi-line header dump."""
    lines = [
        f"task {task.address:#x}"
        + (f"  <{task.name}>" if task.name else ""),
        f"  insns={task.instruction_count}"
        f"  internal_branches={task.internal_branch_count}"
        f"  header={header_size_bits(task.header)}b"
        f"  create_mask={task.header.create_mask:#06x}",
    ]
    for index, task_exit in enumerate(task.header.exits):
        lines.append(f"  exit {index}: {format_exit(task_exit)}")
    return "\n".join(lines)


def format_program_summary(program: MultiscalarProgram) -> str:
    """A one-screen overview of an executable."""
    histogram = program.exit_arity_histogram()
    arity = ", ".join(
        f"{count}x{n_exits}-exit" for n_exits, count in histogram.items()
    )
    return "\n".join(
        [
            f"program {program.name!r}: "
            f"{program.static_task_count} tasks, entry {program.entry:#x}",
            f"  exit arity: {arity}",
            f"  total header bits: {program.total_header_bits()} "
            f"({program.total_header_bits() // 8} bytes)",
        ]
    )


def format_task_neighbourhood(
    program: MultiscalarProgram, address: int
) -> str:
    """A task plus its known successors — a TFG close-up."""
    task = program.task(address)
    lines = [format_task(task)]
    successors = sorted(program.tfg.successors(address))
    if successors:
        lines.append("  known successors:")
        for successor in successors:
            name = program.task(successor).name if successor in program \
                else "?"
            lines.append(f"    {successor:#x}  <{name}>")
    return "\n".join(lines)
