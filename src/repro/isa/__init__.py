"""Multiscalar ISA model: tasks, headers, exits, and the task flow graph.

This package models the executable format described in §2.1 of the paper:
a Multiscalar executable is a set of *tasks* — encapsulated groups of
instructions with arbitrary internal control flow — each carrying a *task
header* that lists up to four exits. Every exit names its control-flow type
(Table 1 of the paper), an optional compiler-known target address, and an
optional return address for call-type exits.
"""

from repro.isa.controlflow import (
    ControlFlowType,
    MAX_EXITS_PER_TASK,
    is_call_type,
    is_indirect_type,
    target_known_at_compile_time,
)
from repro.isa.encoding import (
    EXIT_SPECIFIER_BITS,
    decode_header,
    encode_header,
    header_size_bits,
)
from repro.isa.image import load_program, save_program
from repro.isa.program import MultiscalarProgram
from repro.isa.task import StaticTask, TaskExit, TaskHeader
from repro.isa.tfg import TaskFlowGraph

__all__ = [
    "ControlFlowType",
    "MAX_EXITS_PER_TASK",
    "is_call_type",
    "is_indirect_type",
    "target_known_at_compile_time",
    "EXIT_SPECIFIER_BITS",
    "encode_header",
    "decode_header",
    "header_size_bits",
    "StaticTask",
    "TaskExit",
    "TaskHeader",
    "TaskFlowGraph",
    "MultiscalarProgram",
    "save_program",
    "load_program",
]
