"""The Multiscalar program container: a TFG plus an entry point and metadata."""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import TaskFormatError
from repro.isa.encoding import header_size_bits
from repro.isa.task import StaticTask
from repro.isa.tfg import TaskFlowGraph


class MultiscalarProgram:
    """A complete Multiscalar executable.

    Attributes:
        name: Program label (benchmark name for synthetic workloads).
        entry: Start address of the first task executed.
    """

    def __init__(
        self,
        name: str,
        tasks: Iterable[StaticTask],
        entry: int,
    ) -> None:
        self.name = name
        self.tfg = TaskFlowGraph(tasks)
        if entry not in self.tfg:
            raise TaskFormatError(
                f"entry address {entry:#x} is not a task start address"
            )
        self.entry = entry

    @property
    def static_task_count(self) -> int:
        """Number of static tasks in the executable (Table 2, 'Static Tasks')."""
        return len(self.tfg)

    def task(self, address: int) -> StaticTask:
        """Return the static task starting at ``address``."""
        return self.tfg.task(address)

    def __contains__(self, address: int) -> bool:
        return address in self.tfg

    def total_header_bits(self) -> int:
        """Total encoded size of all task headers, in bits.

        Quantifies the header overhead that the CTTB-only scheme of §5.4
        eliminates.
        """
        return sum(header_size_bits(task.header) for task in self.tfg)

    def exit_arity_histogram(self) -> dict[int, int]:
        """Static histogram {n_exits: task count} (Figure 3, 'static' bars)."""
        histogram: dict[int, int] = {}
        for task in self.tfg:
            histogram[task.n_exits] = histogram.get(task.n_exits, 0) + 1
        return dict(sorted(histogram.items()))
