"""The task flow graph (TFG) — tasks at nodes, inter-task control flow on arcs.

"At a high level, program execution may be viewed as traversing a task flow
graph. [...] A TFG is analogous to a control flow graph built from a scalar
executable" (paper §2.1, Figure 1). Arcs for BRANCH/CALL exits are known
statically from headers; RETURN and INDIRECT_* arcs are discovered
dynamically, so the TFG supports adding observed arcs after construction.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator

from repro.errors import TaskFormatError
from repro.isa.task import StaticTask


class TaskFlowGraph:
    """A directed graph over static tasks, keyed by task start address."""

    def __init__(self, tasks: Iterable[StaticTask] = ()) -> None:
        self._tasks: dict[int, StaticTask] = {}
        self._static_arcs: dict[int, set[int]] = defaultdict(set)
        self._dynamic_arcs: dict[int, set[int]] = defaultdict(set)
        for task in tasks:
            self.add_task(task)

    def add_task(self, task: StaticTask) -> None:
        """Add a static task; its header's known targets become static arcs."""
        if task.address in self._tasks:
            raise TaskFormatError(
                f"duplicate task at address {task.address:#x}"
            )
        self._tasks[task.address] = task
        for target in task.static_targets():
            self._static_arcs[task.address].add(target)

    def __contains__(self, address: int) -> bool:
        return address in self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[StaticTask]:
        return iter(self._tasks.values())

    def task(self, address: int) -> StaticTask:
        """Return the task starting at ``address``."""
        try:
            return self._tasks[address]
        except KeyError:
            raise TaskFormatError(f"no task at address {address:#x}") from None

    def addresses(self) -> list[int]:
        """All task start addresses, sorted."""
        return sorted(self._tasks)

    def record_dynamic_arc(self, source: int, target: int) -> None:
        """Record an observed inter-task transfer (return/indirect arcs)."""
        if source not in self._tasks:
            raise TaskFormatError(f"arc source {source:#x} is not a task")
        self._dynamic_arcs[source].add(target)

    def successors(self, address: int) -> set[int]:
        """All known successors of a task: static arcs plus observed arcs."""
        if address not in self._tasks:
            raise TaskFormatError(f"no task at address {address:#x}")
        return self._static_arcs[address] | self._dynamic_arcs[address]

    def static_successors(self, address: int) -> set[int]:
        """Successors known from the header alone."""
        if address not in self._tasks:
            raise TaskFormatError(f"no task at address {address:#x}")
        return set(self._static_arcs[address])

    def validate(self) -> None:
        """Check that every static arc points at a known task.

        Dynamic arcs may legitimately point outside the graph while it is
        still being discovered, so only static arcs are checked.
        """
        for source, targets in self._static_arcs.items():
            for target in targets:
                if target not in self._tasks:
                    raise TaskFormatError(
                        f"task {source:#x} header targets {target:#x}, "
                        "which is not a task start address"
                    )
