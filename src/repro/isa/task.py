"""Static tasks, task exits, and task headers (paper §2.1).

A :class:`StaticTask` is one node of the task flow graph: a start address,
a header describing up to four exits, a create mask (which registers the task
may write), and an instruction count used by the timing simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TaskFormatError
from repro.isa.controlflow import (
    MAX_EXITS_PER_TASK,
    ControlFlowType,
    is_call_type,
    target_known_at_compile_time,
)

#: Addresses are 32 bits in the paper's environment.
ADDRESS_BITS = 32
ADDRESS_MASK = (1 << ADDRESS_BITS) - 1


@dataclass(frozen=True)
class TaskExit:
    """One exit of a task header.

    Attributes:
        cf_type: The inter-task control-flow type terminating this exit.
        target: Target address if the compiler knows it (BRANCH/CALL),
            otherwise ``None`` — the field is "left null by the compiler".
        return_address: Address executed after a called routine returns;
            only present for CALL / INDIRECT_CALL exits. The hardware pushes
            it onto the return address stack.
    """

    cf_type: ControlFlowType
    target: int | None = None
    return_address: int | None = None

    def __post_init__(self) -> None:
        if target_known_at_compile_time(self.cf_type):
            if self.target is None:
                raise TaskFormatError(
                    f"{self.cf_type} exit must carry a compile-time target"
                )
        elif self.target is not None:
            raise TaskFormatError(
                f"{self.cf_type} exit cannot carry a compile-time target"
            )
        if is_call_type(self.cf_type):
            if self.return_address is None:
                raise TaskFormatError(
                    f"{self.cf_type} exit must carry a return address"
                )
        elif self.return_address is not None:
            raise TaskFormatError(
                f"{self.cf_type} exit cannot carry a return address"
            )
        for name, address in (("target", self.target),
                              ("return_address", self.return_address)):
            if address is not None and not 0 <= address <= ADDRESS_MASK:
                raise TaskFormatError(
                    f"{name} {address:#x} does not fit in {ADDRESS_BITS} bits"
                )


@dataclass(frozen=True)
class TaskHeader:
    """The task header loaded by the task-start instruction.

    Contains the create mask (a bit mask of registers the task may write) and
    the exit list. A legal header has between one and four exits.
    """

    exits: tuple[TaskExit, ...]
    create_mask: int = 0

    def __post_init__(self) -> None:
        if not 1 <= len(self.exits) <= MAX_EXITS_PER_TASK:
            raise TaskFormatError(
                f"a task header must have 1..{MAX_EXITS_PER_TASK} exits, "
                f"got {len(self.exits)}"
            )
        if self.create_mask < 0:
            raise TaskFormatError("create mask must be non-negative")

    @property
    def n_exits(self) -> int:
        """Number of exits declared in this header."""
        return len(self.exits)

    def exit_types(self) -> tuple[ControlFlowType, ...]:
        """The control-flow type of each exit, in header order."""
        return tuple(e.cf_type for e in self.exits)


@dataclass
class StaticTask:
    """A static task: one node of the program's task flow graph.

    Attributes:
        address: Start address of the task (address of its task-start
            instruction); this is the task's identity.
        header: The task header.
        instruction_count: Nominal number of dynamic instructions a single
            execution of this task retires; used by the timing simulator.
        internal_branch_count: Number of intra-task conditional branches a
            single execution resolves; used for intra-task speculation
            modelling.
        use_mask: Bit mask of registers the task may read before writing
            them (live-ins). The header's create mask covers writes; the
            use mask is microarchitectural metadata the dependence-aware
            timing model consumes (it is not part of the header).
        name: Optional human-readable label (function/region), for debugging.
    """

    address: int
    header: TaskHeader
    instruction_count: int = 16
    internal_branch_count: int = 2
    use_mask: int = 0
    name: str = ""
    _successor_cache: tuple[int, ...] | None = field(
        default=None, init=False, repr=False
    )

    def __post_init__(self) -> None:
        if not 0 <= self.address <= ADDRESS_MASK:
            raise TaskFormatError(
                f"task address {self.address:#x} does not fit in "
                f"{ADDRESS_BITS} bits"
            )
        if self.instruction_count < 1:
            raise TaskFormatError("a task executes at least one instruction")
        if self.internal_branch_count < 0:
            raise TaskFormatError("internal branch count must be >= 0")
        if self.use_mask < 0:
            raise TaskFormatError("use mask must be non-negative")

    @property
    def n_exits(self) -> int:
        """Number of exits in this task's header."""
        return self.header.n_exits

    def exit(self, index: int) -> TaskExit:
        """Return the exit at ``index`` (0-based header position)."""
        try:
            return self.header.exits[index]
        except IndexError:
            raise TaskFormatError(
                f"task {self.address:#x} has {self.n_exits} exits; "
                f"exit {index} does not exist"
            ) from None

    def static_targets(self) -> tuple[int, ...]:
        """Targets the compiler recorded in the header (BRANCH/CALL exits)."""
        if self._successor_cache is None:
            self._successor_cache = tuple(
                e.target for e in self.header.exits if e.target is not None
            )
        return self._successor_cache
