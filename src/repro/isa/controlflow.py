"""Inter-task control-flow types (Table 1 of the paper).

A task must end in a control-transfer instruction. The paper classifies the
instruction terminating each task exit into five types, which differ in
whether the compiler can place the target address in the task header and in
how many dynamic targets the exit may have:

=================  =========================  ==============  ===========
Type               Scalar analogue            Target in hdr?  # targets
=================  =========================  ==============  ===========
BRANCH             (un)conditional branch     yes             1
CALL               PC-relative call           yes             1
RETURN             return                     no              unlimited
INDIRECT_BRANCH    indirect branch            no              unlimited
INDIRECT_CALL      indirect call              no              unlimited
=================  =========================  ==============  ===========
"""

from __future__ import annotations

import enum

#: The Multiscalar implementation in the paper limits headers to four exits.
MAX_EXITS_PER_TASK = 4


class ControlFlowType(enum.Enum):
    """The five inter-task control-flow types of Table 1."""

    BRANCH = "branch"
    CALL = "call"
    RETURN = "return"
    INDIRECT_BRANCH = "indirect_branch"
    INDIRECT_CALL = "indirect_call"

    def __str__(self) -> str:
        return self.value


def target_known_at_compile_time(cf_type: ControlFlowType) -> bool:
    """True if the compiler can write this exit's target into the header.

    BRANCH and CALL targets are PC-relative and known statically; returns and
    indirect transfers are not (paper §2.1, §5.3).
    """
    return cf_type in (ControlFlowType.BRANCH, ControlFlowType.CALL)


def is_call_type(cf_type: ControlFlowType) -> bool:
    """True for exits that push a return address (CALL, INDIRECT_CALL)."""
    return cf_type in (ControlFlowType.CALL, ControlFlowType.INDIRECT_CALL)


def is_indirect_type(cf_type: ControlFlowType) -> bool:
    """True for exits whose target must be predicted by a target buffer."""
    return cf_type in (
        ControlFlowType.INDIRECT_BRANCH,
        ControlFlowType.INDIRECT_CALL,
    )
