"""Bit-level encoding of task headers.

The paper's header stores, per exit, a 5-bit *exit specifier* (control-flow
type plus flags), a 32-bit target-address field (null when the compiler does
not know the target), and a 32-bit return-address field for call exits
(§2.1). This module packs headers into integers so that the CTTB-only
comparison of §5.4 ("the header makes up the majority of the [static task
annotation]") can account for real sizes, and so tests can verify lossless
round-trips.

Layout (LSB first):
    [2 bits]  exit count - 1
    [16 bits] create mask
    per exit:
        [5 bits]  exit specifier (3 bits type, 1 bit has-target,
                  1 bit has-return-address)
        [32 bits] target address, if has-target
        [32 bits] return address, if has-return-address
"""

from __future__ import annotations

from repro.errors import EncodingError
from repro.isa.controlflow import ControlFlowType
from repro.isa.task import TaskExit, TaskHeader
from repro.utils.bits import bit_mask

#: Width of the per-exit specifier field, as in the paper ("encoded in 5 bits").
EXIT_SPECIFIER_BITS = 5

_CREATE_MASK_BITS = 16
_COUNT_BITS = 2
_ADDRESS_BITS = 32

_TYPE_CODES: dict[ControlFlowType, int] = {
    ControlFlowType.BRANCH: 0,
    ControlFlowType.CALL: 1,
    ControlFlowType.RETURN: 2,
    ControlFlowType.INDIRECT_BRANCH: 3,
    ControlFlowType.INDIRECT_CALL: 4,
}
_CODE_TYPES = {code: cf for cf, code in _TYPE_CODES.items()}


class _BitWriter:
    """Accumulates fields LSB-first into a single integer."""

    def __init__(self) -> None:
        self.value = 0
        self.width = 0

    def write(self, field: int, width: int) -> None:
        if not 0 <= field <= bit_mask(width):
            raise EncodingError(f"field {field} does not fit in {width} bits")
        self.value |= field << self.width
        self.width += width


class _BitReader:
    """Reads fields LSB-first from a single integer."""

    def __init__(self, value: int, width: int) -> None:
        self._value = value
        self._width = width
        self._cursor = 0

    def read(self, width: int) -> int:
        if self._cursor + width > self._width:
            raise EncodingError("header bitstream exhausted")
        field = (self._value >> self._cursor) & bit_mask(width)
        self._cursor += width
        return field


def header_size_bits(header: TaskHeader) -> int:
    """Return the encoded size of ``header`` in bits."""
    size = _COUNT_BITS + _CREATE_MASK_BITS
    for task_exit in header.exits:
        size += EXIT_SPECIFIER_BITS
        if task_exit.target is not None:
            size += _ADDRESS_BITS
        if task_exit.return_address is not None:
            size += _ADDRESS_BITS
    return size


def encode_header(header: TaskHeader) -> tuple[int, int]:
    """Pack ``header`` into ``(value, width_in_bits)``."""
    writer = _BitWriter()
    writer.write(header.n_exits - 1, _COUNT_BITS)
    if header.create_mask > bit_mask(_CREATE_MASK_BITS):
        raise EncodingError(
            f"create mask {header.create_mask:#x} exceeds "
            f"{_CREATE_MASK_BITS} bits"
        )
    writer.write(header.create_mask, _CREATE_MASK_BITS)
    for task_exit in header.exits:
        specifier = _TYPE_CODES[task_exit.cf_type]
        specifier |= (1 << 3) if task_exit.target is not None else 0
        specifier |= (1 << 4) if task_exit.return_address is not None else 0
        writer.write(specifier, EXIT_SPECIFIER_BITS)
        if task_exit.target is not None:
            writer.write(task_exit.target, _ADDRESS_BITS)
        if task_exit.return_address is not None:
            writer.write(task_exit.return_address, _ADDRESS_BITS)
    return writer.value, writer.width


def decode_header(value: int, width: int) -> TaskHeader:
    """Unpack a header previously produced by :func:`encode_header`."""
    reader = _BitReader(value, width)
    n_exits = reader.read(_COUNT_BITS) + 1
    create_mask = reader.read(_CREATE_MASK_BITS)
    exits = []
    for _ in range(n_exits):
        specifier = reader.read(EXIT_SPECIFIER_BITS)
        type_code = specifier & 0b111
        if type_code not in _CODE_TYPES:
            raise EncodingError(f"unknown control-flow type code {type_code}")
        has_target = bool(specifier & (1 << 3))
        has_return = bool(specifier & (1 << 4))
        target = reader.read(_ADDRESS_BITS) if has_target else None
        return_address = reader.read(_ADDRESS_BITS) if has_return else None
        exits.append(
            TaskExit(
                cf_type=_CODE_TYPES[type_code],
                target=target,
                return_address=return_address,
            )
        )
    return TaskHeader(exits=tuple(exits), create_mask=create_mask)
