"""Binary program images: save/load Multiscalar executables.

A small container format (magic, version, entry point, task table) whose
per-task payload is the *actual header encoding* of
:mod:`repro.isa.encoding` — so an image's size reflects real header
overhead, and a program round-trips bit-exactly through a file.

Layout (little-endian):

```
u32 magic 'MSCX'   u16 version   u32 entry   u32 task_count
per task:
    u32 address    u32 instruction_count    u16 internal_branches
    u16 use_mask   u16 name_length          name bytes (utf-8)
    u16 header_bits                         header payload bytes
```
"""

from __future__ import annotations

import struct
from pathlib import Path

from repro.errors import EncodingError
from repro.isa.encoding import decode_header, encode_header
from repro.isa.program import MultiscalarProgram
from repro.isa.task import StaticTask

_MAGIC = 0x4D534358  # 'MSCX'
_VERSION = 1
_FILE_HEADER = struct.Struct("<IHII")
_TASK_HEADER = struct.Struct("<IIHHH")
_BITS_FIELD = struct.Struct("<H")


def save_program(program: MultiscalarProgram, path: Path | str) -> int:
    """Write ``program`` to a binary image; returns bytes written."""
    chunks = [
        _FILE_HEADER.pack(
            _MAGIC, _VERSION, program.entry, program.static_task_count
        )
    ]
    for address in program.tfg.addresses():
        task = program.task(address)
        name_bytes = task.name.encode("utf-8")
        if len(name_bytes) > 0xFFFF:
            raise EncodingError(f"task name too long: {task.name[:40]}...")
        chunks.append(
            _TASK_HEADER.pack(
                task.address,
                task.instruction_count,
                task.internal_branch_count,
                task.use_mask,
                len(name_bytes),
            )
        )
        chunks.append(name_bytes)
        value, width = encode_header(task.header)
        chunks.append(_BITS_FIELD.pack(width))
        chunks.append(value.to_bytes((width + 7) // 8, "little"))
    blob = b"".join(chunks)
    Path(path).write_bytes(blob)
    return len(blob)


def load_program(path: Path | str, name: str = "") -> MultiscalarProgram:
    """Read a binary image written by :func:`save_program`."""
    blob = Path(path).read_bytes()
    if len(blob) < _FILE_HEADER.size:
        raise EncodingError("image truncated: no file header")
    magic, version, entry, task_count = _FILE_HEADER.unpack_from(blob, 0)
    if magic != _MAGIC:
        raise EncodingError(f"bad magic {magic:#x}; not a program image")
    if version != _VERSION:
        raise EncodingError(f"unsupported image version {version}")
    cursor = _FILE_HEADER.size
    tasks: list[StaticTask] = []
    for _ in range(task_count):
        try:
            (
                address, instruction_count, internal_branches,
                use_mask, name_length,
            ) = _TASK_HEADER.unpack_from(blob, cursor)
            cursor += _TASK_HEADER.size
            task_name = blob[cursor:cursor + name_length].decode(
                "utf-8", errors="replace"
            )
            cursor += name_length
            (width,) = _BITS_FIELD.unpack_from(blob, cursor)
            cursor += _BITS_FIELD.size
            n_bytes = (width + 7) // 8
            value = int.from_bytes(
                blob[cursor:cursor + n_bytes], "little"
            )
            cursor += n_bytes
        except struct.error as error:
            raise EncodingError(f"image truncated: {error}") from None
        tasks.append(
            StaticTask(
                address=address,
                header=decode_header(value, width),
                instruction_count=instruction_count,
                internal_branch_count=internal_branches,
                use_mask=use_mask,
                name=task_name,
            )
        )
    if cursor != len(blob):
        raise EncodingError(
            f"{len(blob) - cursor} trailing bytes after the task table"
        )
    return MultiscalarProgram(
        name=name or str(path), tasks=tasks, entry=entry
    )
